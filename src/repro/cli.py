"""Command-line interface: run any reproduced experiment from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli run E2            # full-size experiment
    python -m repro.cli run E5 --quick    # scaled-down version
    python -m repro.cli run all --quick
    python -m repro.cli run E2 --quick --engine tuplespace

Each run prints the experiment's table and/or an ASCII rendering of its
figure, mirroring what the benchmark harness archives under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Tuple

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.report import render_series_table, render_table
from repro.experiments.common import METRICS_SCHEMA, ExperimentResult, metrics_document
from repro.flowspace.batch import set_columnar
from repro.obs.sketch import set_sketch_mode
from repro.flowspace.engine import ENGINE_CHOICES, set_default_engine
from repro.obs import fresh_run_context
from repro.parallel.cache import DEFAULT_CACHE_DIR, configure_artifact_cache

__all__ = ["main"]


def _load_metrics_document(path: str):
    """Read and validate a metrics JSON file for report / obs diff.

    Returns the decoded document, or ``None`` after printing a one-line
    diagnostic to stderr — missing files, unreadable JSON and foreign
    schemas are user errors (exit code 2), not tracebacks.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as error:
        print(f"error: cannot read metrics document {path!r}: "
              f"{error.strerror or error}", file=sys.stderr)
        return None
    except json.JSONDecodeError as error:
        print(f"error: {path!r} is not valid JSON ({error})", file=sys.stderr)
        return None
    if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
        found = document.get("schema") if isinstance(document, dict) else type(document).__name__
        print(f"error: {path!r} is not a {METRICS_SCHEMA} document "
              f"(schema: {found!r})", file=sys.stderr)
        return None
    return document


def _e1(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.partitioning import default_policies
    from repro.experiments.policies import run_policy_table
    return run_policy_table(default_policies(scale=1 if quick else 2))


def _e2(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.throughput import run_throughput
    rates = [25e3, 200e3, 1.2e6] if quick else None
    return run_throughput(rates=rates, flows_per_point=400 if quick else 1500)


def _e3(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.scaling import run_scaling
    return run_scaling(
        authority_counts=[1, 2] if quick else [1, 2, 3, 4],
        flows_per_point=500 if quick else 1200,
        jobs=jobs,
    )


def _e4(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.delay import run_delay
    return run_delay(flows=60 if quick else 300, jobs=jobs)


def _e5(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.partitioning import default_policies, run_partition_tcam
    return run_partition_tcam(
        partition_counts=[1, 4, 16] if quick else None,
        policies=default_policies(scale=1 if quick else 2),
    )


def _e6(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.partitioning import default_policies, run_partition_overhead
    return run_partition_overhead(
        partition_counts=[1, 4, 16] if quick else None,
        policies=default_policies(scale=1 if quick else 2),
    )


def _e7(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.caching import run_cache_miss
    if quick:
        return run_cache_miss(cache_sizes=[10, 50, 200], n_flows=500,
                              n_packets=5000, jobs=jobs)
    return run_cache_miss(jobs=jobs)


def _e8(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.stretch import run_stretch
    return run_stretch(
        switch_count=16 if quick else 32, flows=200 if quick else 800
    )


def _e8c(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.cachingablation import run_caching_ablation
    if quick:
        return run_caching_ablation(jobs=jobs)
    return run_caching_ablation(
        capacities=(8, 16, 32, 64),
        hosts=4096,
        edge_switches=4,
        epochs=48,
        burst_size=64,
        jobs=jobs,
    )


def _e9(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.dynamics import run_dynamics
    return run_dynamics(
        churn_steps=15 if quick else 60, warm_flows=60 if quick else 200
    )


def _e9q(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.qos import run_qos_slo
    if quick:
        return run_qos_slo(jobs=jobs)
    return run_qos_slo(
        hosts=4096,
        edge_switches=4,
        epochs=72,
        burst_size=64,
        jobs=jobs,
    )


def _e10(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.partitioning import run_cut_ablation
    return run_cut_ablation(partition_counts=[4, 16] if quick else None)


#: Chaos-soak knobs settable from the command line (see ``run`` flags).
CHAOS_OPTIONS: Dict[str, float] = {}


def _c1(quick: bool, jobs=None) -> ExperimentResult:
    # One soak is a single simulation — nothing to fan out; replicate
    # sweeps go through ``run_chaos_replicates`` (which does take jobs).
    from repro.experiments.chaos import run_chaos_soak
    kwargs = dict(CHAOS_OPTIONS)
    if quick:
        kwargs.setdefault("rate", 2000.0)
        kwargs.setdefault("duration", 0.5)
    return run_chaos_soak(**kwargs)


def _c2_kwargs(quick: bool) -> Dict[str, float]:
    # C2 shares C1's CLI knobs where they apply; its campus fabric is
    # lossless by construction, so the --loss knob stays C1-only.
    kwargs = {k: v for k, v in CHAOS_OPTIONS.items() if k != "loss"}
    if quick:
        kwargs.setdefault("rate", 2000.0)
        kwargs.setdefault("duration", 0.5)
    return kwargs


def _c2(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.chaos import run_rebalance_soak
    return run_rebalance_soak(rebalance=True, **_c2_kwargs(quick))


def _c2_static(quick: bool, jobs=None) -> ExperimentResult:
    from repro.experiments.chaos import run_rebalance_soak
    return run_rebalance_soak(rebalance=False, **_c2_kwargs(quick))


def _m1(quick: bool, jobs=None) -> ExperimentResult:
    # Like C1, one soak is a single simulation — nothing to fan out; the
    # --jobs determinism requirement is therefore structural, and the CI
    # job pinning jobs=2 == jobs=1 documents exactly that.
    from repro.experiments.streaming import run_streaming_soak
    if quick:
        return run_streaming_soak(
            hosts=50_000, epochs=120, burst_size=256, jobs=jobs
        )
    return run_streaming_soak(jobs=jobs)


EXPERIMENTS: Dict[str, Tuple[str, Callable[..., ExperimentResult]]] = {
    "E1": ("Table 1: evaluated policies", _e1),
    "E2": ("Fig: setup throughput, DIFANE vs NOX", _e2),
    "E3": ("Fig: throughput scaling with authority switches", _e3),
    "E4": ("Fig: first-packet delay", _e4),
    "E5": ("Fig: TCAM per authority switch vs #partitions", _e5),
    "E6": ("Fig: rule-split overhead vs #partitions", _e6),
    "E7": ("Fig: cache miss rate vs cache size", _e7),
    "E8": ("Fig: stretch by authority placement", _e8),
    "E8C": ("Ablation: cache eviction policy × capacity, streaming traffic", _e8c),
    "E9": ("Table: cost of network dynamics", _e9),
    "E9Q": ("Ablation: per-class QoS SLO protection under flash crowds", _e9q),
    "E10": ("Ablation: cut-selection heuristic", _e10),
    "C1": ("Chaos soak: faults, detection, degradation", _c1),
    "C2": ("Self-healing soak: sharded control plane, migration", _c2),
    "C2-STATIC": ("C2 baseline: heartbeat-only failover, no shards", _c2_static),
    "M1": ("Soak: million-host streaming workload, sketch metrics", _m1),
}


def _print_result(result: ExperimentResult, plot: bool) -> None:
    print(f"\n=== {result.name}: {result.title} ===")
    if result.table_rows:
        print(render_table(result.table_headers, result.table_rows))
    if result.series:
        if not result.table_rows:
            print(render_series_table(result.series))
        if plot:
            print()
            log_x = max(max(s.x) for s in result.series if len(s)) > 50 * min(
                min(s.x) for s in result.series if len(s)
            )
            print(ascii_plot(result.series, log_x=log_x))
    if result.notes:
        interesting = {k: v for k, v in result.notes.items() if not k.startswith("_")}
        if interesting:
            print(f"\nnotes: {interesting}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Run DIFANE reproduction experiments."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (E1..E10) or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="scaled-down parameters (seconds, not minutes)")
    run.add_argument("--no-plot", action="store_true",
                     help="skip the ASCII figure rendering")
    run.add_argument("--engine", choices=ENGINE_CHOICES, default=None,
                     help="match-engine backend for every classifier "
                          "(default: linear)")
    run.add_argument("--columnar", action="store_true", default=False,
                     help="enable the columnar (struct-of-arrays) burst "
                          "fast path; observable output is identical to "
                          "the scalar default")
    run.add_argument("--no-columnar", dest="columnar", action="store_false",
                     help="force the scalar per-packet oracle path "
                          "(the default)")
    run.add_argument("--sketch", action="store_true", default=False,
                     help="memory-bounded observability: stream delivery "
                          "outcomes into fixed-size sketches (quantiles, "
                          "top-k) instead of per-packet records; required "
                          "for the full-scale M1 soak to run in bounded "
                          "RAM")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="fan sweep points out over N worker processes "
                          "(0 = all cores); output is identical to a "
                          "serial run")
    run.add_argument("--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR,
                     default=None, metavar="DIR",
                     help="cache generated workload artifacts on disk "
                          f"(default dir when flag given bare: "
                          f"{DEFAULT_CACHE_DIR})")
    run.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                     help="C1: seed for the randomized fault schedule")
    run.add_argument("--loss", type=float, default=None, metavar="P",
                     help="C1: baseline per-link drop probability")
    run.add_argument("--heartbeat-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="C1: authority heartbeat period")
    run.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the run's canonical metrics JSON here "
                          "(one document per experiment; a mapping keyed "
                          "by experiment id when several run)")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="enable packet-lifecycle tracing and write the "
                          "events as JSON Lines here")
    run.add_argument("--profile", action="store_true",
                     help="record wall-time histograms around scheduler "
                          "callbacks, engine lookups and channel sends "
                          "(profile_* metrics; excluded from metrics JSON)")
    run.add_argument("--telemetry", nargs="?", const=True, default=None,
                     type=float, metavar="INTERVAL",
                     help="sample per-window time series on a simulated-time "
                          "cadence (bare flag: default interval; value: "
                          "seconds per window); adds a difane-telemetry/1 "
                          "section to the metrics document")
    run.add_argument("--telemetry-out", metavar="PATH", default=None,
                     help="write the telemetry windows (and findings) as "
                          "JSON Lines here; implies --telemetry")
    run.add_argument("--prom-out", metavar="PATH", default=None,
                     help="write the run's metrics in Prometheus text "
                          "exposition format (single experiment only)")

    report = commands.add_parser(
        "report", help="render a saved metrics document as ASCII dashboards"
    )
    report.add_argument("document", help="path to a difane-metrics/1 JSON file")
    report.add_argument("--width", type=int, default=64)
    report.add_argument("--height", type=int, default=12)

    obs = commands.add_parser("obs", help="observability tooling")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_commands.add_parser(
        "diff", help="compare two metrics documents and summarize regressions"
    )
    obs_diff.add_argument("baseline", help="baseline metrics JSON (e.g. a golden)")
    obs_diff.add_argument("candidate", help="candidate metrics JSON (a fresh run)")
    obs_diff.add_argument("--rel-tolerance", type=float, default=0.0,
                          metavar="FRACTION",
                          help="relative tolerance for numeric comparisons "
                               "(default: exact)")

    args = parser.parse_args(argv)

    if args.command == "list":
        for key, (description, _) in EXPERIMENTS.items():
            print(f"{key:5s} {description}")
        return 0

    if args.command == "report":
        from repro.analysis.dashboard import render_report

        document = _load_metrics_document(args.document)
        if document is None:
            return 2
        print(render_report(document, width=args.width, height=args.height),
              end="")
        return 0

    if args.command == "obs":
        from repro.analysis.obsdiff import diff_documents, render_diff

        baseline = _load_metrics_document(args.baseline)
        candidate = _load_metrics_document(args.candidate)
        if baseline is None or candidate is None:
            return 2
        diff = diff_documents(
            baseline, candidate, rel_tolerance=args.rel_tolerance
        )
        print(render_diff(diff), end="")
        return 0 if diff["identical"] else 1

    wanted = list(EXPERIMENTS) if args.experiment.lower() == "all" else [
        args.experiment.upper()
    ]
    unknown = [key for key in wanted if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    if args.engine is not None:
        # Process-wide default: every classifier the experiments build —
        # pipelines, policy tables, cache simulators — resolves to this.
        set_default_engine(args.engine)
    # Columnar and sketch modes are process-wide like the engine default;
    # workers inherit them through the sweep runner's initializer.
    set_columnar(args.columnar)
    set_sketch_mode(args.sketch)

    if args.chaos_seed is not None:
        CHAOS_OPTIONS["seed"] = args.chaos_seed
    if args.loss is not None:
        CHAOS_OPTIONS["loss"] = args.loss
    if args.heartbeat_interval is not None:
        CHAOS_OPTIONS["heartbeat_interval_s"] = args.heartbeat_interval

    if args.cache_dir is not None:
        configure_artifact_cache(args.cache_dir)
    telemetry = args.telemetry
    if telemetry is None and args.telemetry_out:
        telemetry = True
    if (args.prom_out or args.telemetry_out) and len(wanted) > 1:
        print("--prom-out/--telemetry-out support a single experiment, "
              "not 'all'", file=sys.stderr)
        return 2
    if args.trace_out and args.jobs and args.jobs != 1:
        # Trace events live in the run context's ring buffer, which does
        # not cross the worker-pool boundary; the sweep runner would fall
        # back to serial anyway, so say so rather than silently ignoring.
        print("note: --trace-out forces serial execution; ignoring --jobs",
              file=sys.stderr)

    documents: Dict[str, dict] = {}
    trace_handle = open(args.trace_out, "w") if args.trace_out else None
    try:
        for key in wanted:
            _, runner = EXPERIMENTS[key]
            # One fresh observability context per experiment: every
            # network/component built by the runner binds into it, so
            # the emitted document is exactly this experiment's run.
            context = fresh_run_context(
                trace=trace_handle is not None, profile=args.profile,
                telemetry=telemetry,
            )
            started = time.time()
            result = runner(args.quick, args.jobs)
            _print_result(result, plot=not args.no_plot)
            print(f"({key} took {time.time() - started:.1f}s)")
            if args.metrics_out:
                documents[key] = metrics_document(result, context=context)
            if trace_handle is not None:
                context.tracer.write_jsonl(trace_handle, extra={"experiment": key})
            if args.telemetry_out:
                from repro.obs.export import write_telemetry_jsonl
                from repro.obs.telemetry import telemetry_section

                lines = write_telemetry_jsonl(
                    args.telemetry_out, telemetry_section(context.telemetry)
                )
                print(f"telemetry ({lines} lines) written to "
                      f"{args.telemetry_out}")
            if args.prom_out:
                from repro.obs.export import prometheus_text

                with open(args.prom_out, "w") as handle:
                    handle.write(prometheus_text(context.metrics.snapshot(
                        exclude_prefixes=("profile_", "artifact_cache_")
                    )))
                print(f"prometheus metrics written to {args.prom_out}")
    finally:
        if trace_handle is not None:
            trace_handle.close()

    if args.metrics_out:
        payload = documents[wanted[0]] if len(wanted) == 1 else documents
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
