"""Packet trace record / save / replay.

The paper replays a two-day traffic trace against its prototype.  We keep
traces as columnar numpy arrays — times, packed headers, sizes — so
multi-hundred-thousand-packet traces load and replay quickly, and persist
them as ``.npz`` for reuse across benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet

__all__ = ["Trace"]


@dataclass
class Trace:
    """A timed packet-header trace.

    Header bits are stored as decimal strings in object arrays when wider
    than 64 bits (numpy cannot hold 104-bit ints natively); accessors
    always return Python ints.
    """

    times: np.ndarray            # float64 seconds, non-decreasing
    headers: List[int]           # packed header bits
    sizes: np.ndarray            # int32 bytes
    layout_width: int

    def __post_init__(self):
        if not (len(self.times) == len(self.headers) == len(self.sizes)):
            raise ValueError("trace columns must have equal length")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            raise ValueError("trace times must be non-decreasing")

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Sequence[Tuple[float, int, int]],
        layout_width: int,
    ) -> "Trace":
        """Build from ``(time, header_bits, size_bytes)`` tuples (sorted)."""
        ordered = sorted(events, key=lambda e: e[0])
        return cls(
            times=np.array([e[0] for e in ordered], dtype=np.float64),
            headers=[int(e[1]) for e in ordered],
            sizes=np.array([e[2] for e in ordered], dtype=np.int32),
            layout_width=layout_width,
        )

    @classmethod
    def from_headers(
        cls,
        headers: Sequence[int],
        rate: float,
        layout_width: int,
        size_bytes: int = 64,
    ) -> "Trace":
        """Evenly spaced trace of ``headers`` at ``rate`` packets/second."""
        n = len(headers)
        return cls(
            times=np.arange(n, dtype=np.float64) / rate,
            headers=[int(h) for h in headers],
            sizes=np.full(n, size_bytes, dtype=np.int32),
            layout_width=layout_width,
        )

    # -- persistence ---------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist to an ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            times=self.times,
            headers=np.array([str(h) for h in self.headers], dtype=object),
            sizes=self.sizes,
            layout_width=np.array([self.layout_width]),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace saved by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=True)
        return cls(
            times=data["times"],
            headers=[int(h) for h in data["headers"]],
            sizes=data["sizes"],
            layout_width=int(data["layout_width"][0]),
        )

    # -- replay -----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.headers)

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        for index in range(len(self.headers)):
            yield (float(self.times[index]), self.headers[index], int(self.sizes[index]))

    def header_sequence(self) -> List[int]:
        """Just the headers, in time order (for the cache simulators)."""
        return list(self.headers)

    def duration(self) -> float:
        """Trace span in seconds."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def replay(
        self,
        layout: HeaderLayout,
        send: Callable[[float, Packet], None],
        time_offset: float = 0.0,
        limit: Optional[int] = None,
    ) -> int:
        """Invoke ``send(time, packet)`` for each trace record.

        ``send`` typically wraps ``network.scheduler.schedule_at`` plus an
        injection; returns the number of packets replayed.
        """
        if layout.width != self.layout_width:
            raise ValueError(
                f"layout width {layout.width} != trace width {self.layout_width}"
            )
        count = 0
        for time, header, size in self:
            if limit is not None and count >= limit:
                break
            packet = Packet(layout, header, flow_id=None, size_bytes=size)
            send(time + time_offset, packet)
            count += 1
        return count
