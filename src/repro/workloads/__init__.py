"""Workload generation: rule sets and traffic.

The paper evaluates on artifacts we cannot access (a campus network's
policy, an ISP VPN configuration, ClassBench with its released seeds, and
two-day packet traces).  This subpackage provides statistical equivalents
— see DESIGN.md §4 for the substitution rationale:

* :mod:`repro.workloads.classbench` — synthetic 5-tuple classifiers with
  ClassBench-style structure (prefix nesting, port classes, protocol mix)
  in ACL / firewall / IPC flavours.
* :mod:`repro.workloads.policies` — campus and VPN-provider policy
  synthesizers, plus topology-aligned routing policies for the simulator.
* :mod:`repro.workloads.traffic` — Zipf flow popularity, packet sequences
  and timed single-packet flow arrivals.
* :mod:`repro.workloads.zipf` — the Zipf sampler (cached CDF).
* :mod:`repro.workloads.streaming` — seed-closed streaming generators for
  million-host populations (diurnal load, flash crowds, mobility churn)
  yielding bursts lazily in bounded memory.
* :mod:`repro.workloads.trace` — record / save / replay packet traces.
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.classbench import ClassBenchProfile, generate_classbench
from repro.workloads.policies import (
    campus_policy,
    vpn_policy,
    routing_policy_for_topology,
)
from repro.workloads.traffic import (
    TimedPacket,
    flow_headers_for_policy,
    packet_sequence,
    poisson_arrivals,
    host_pair_packets,
)
from repro.workloads.batches import (
    TimedBatch,
    host_pair_batches,
    stream_host_pair_batches,
)
from repro.workloads.streaming import (
    StreamSpec,
    epoch_bursts,
    host_addresses,
    stream_bursts,
    streaming_policy,
    streaming_topology,
)
from repro.workloads.trace import Trace

__all__ = [
    "ZipfSampler",
    "ClassBenchProfile",
    "generate_classbench",
    "campus_policy",
    "vpn_policy",
    "routing_policy_for_topology",
    "TimedPacket",
    "flow_headers_for_policy",
    "packet_sequence",
    "poisson_arrivals",
    "host_pair_packets",
    "TimedBatch",
    "host_pair_batches",
    "stream_host_pair_batches",
    "StreamSpec",
    "epoch_bursts",
    "host_addresses",
    "stream_bursts",
    "streaming_policy",
    "streaming_topology",
    "Trace",
]
