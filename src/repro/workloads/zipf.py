"""Zipf popularity sampling.

Internet flow popularity is famously heavy-tailed: a few flows (and a few
rules) carry most packets.  The cache-miss experiments rely on this, so
the sampler is exact (inverse-CDF over the normalized Zipf weights) and
deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

__all__ = ["ZipfSampler", "zipf_cdf"]


def _build_cdf(n: int, alpha: float) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def zipf_cdf(n: int, alpha: float) -> np.ndarray:
    """The normalized Zipf CDF for ``(n, alpha)``, cached across samplers.

    Constructing the CDF is O(n) and was re-run by every sampler — at
    streaming scale (n ≈ 10^6 hosts, one sampler per epoch) that
    re-derivation dominated generation.  The artifact cache memoizes it
    by content address; the returned array is shared and read-only.
    """
    from repro.parallel.cache import artifact_cache

    cdf = artifact_cache().get(
        "zipf-cdf", {"n": n, "alpha": float(alpha)}, lambda: _build_cdf(n, alpha)
    )
    # Re-assert on every hit: a disk-tier pickle round-trip restores
    # writability, and samplers must never mutate the shared array.
    cdf.setflags(write=False)
    return cdf


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to ``1/(r+1)^alpha``.

    Parameters
    ----------
    n:
        Number of distinct items.
    alpha:
        Skew; 0 = uniform, ≈1 = classic Zipf, >1 = very heavy head.
    seed:
        RNG seed (numpy Generator).
    shuffle:
        When True, ranks are randomly permuted so popularity is not
        correlated with item index (rule priority); default False keeps
        rank 0 the most popular.
    """

    def __init__(self, n: int, alpha: float = 1.0, seed: int = 0, shuffle: bool = False):
        if n < 1:
            raise ValueError(f"need at least one item, got n={n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._cdf = zipf_cdf(n, alpha)
        self._rng = np.random.default_rng(seed)
        if shuffle:
            permutation = self._rng.permutation(n)
        else:
            permutation = np.arange(n)
        self._permutation = permutation

    def probability(self, rank: int) -> float:
        """The sampling probability of popularity rank ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        low = self._cdf[rank - 1] if rank else 0.0
        return float(self._cdf[rank] - low)

    def sample(self) -> int:
        """One item index."""
        return int(self._permutation[np.searchsorted(self._cdf, self._rng.random())])

    def sample_many(self, count: int) -> List[int]:
        """``count`` item indices (vectorized)."""
        draws = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, draws)
        return [int(i) for i in self._permutation[ranks]]

    def head_mass(self, k: int) -> float:
        """Total probability of the ``k`` most popular items."""
        k = min(k, self.n)
        return float(self._cdf[k - 1]) if k else 0.0
