"""Synthetic network policies matching the paper's evaluation inputs.

The DIFANE evaluation used operator policies we cannot redistribute: a
campus network's routing + ACL configuration and an ISP's VPN
configuration.  These synthesizers produce policies with the same
*structure* at configurable scale:

* :func:`campus_policy` — departments with subnets, inter-department
  service ACLs, per-subnet routing, default deny: destination-heavy with
  moderate overlap depth.
* :func:`vpn_policy` — per-customer (source prefix, destination prefix)
  allow pairs over a shared default-deny backbone: very many narrow rules
  with shallow overlap — the shape that partitions almost perfectly.
* :func:`routing_policy_for_topology` — a policy aligned with a simulated
  topology: every host gets an address and a routing rule, with optional
  ACL denies layered on top; used by the end-to-end delay/throughput
  experiments so that policy actions name real hosts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.flowspace.action import Drop, Forward
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT, HeaderLayout, parse_ip
from repro.flowspace.rule import Match, Rule
from repro.flowspace.ternary import Ternary

__all__ = ["campus_policy", "vpn_policy", "routing_policy_for_topology"]


def campus_policy(
    departments: int = 16,
    subnets_per_department: int = 8,
    acl_rules_per_department: int = 12,
    layout: HeaderLayout = FIVE_TUPLE_LAYOUT,
    seed: int = 0,
) -> List[Rule]:
    """A campus-style policy: service ACLs above routing above default deny.

    Structure (top priority first):

    1. per-department service ACLs — deny/permit specific (src subnet,
       dst subnet, dst port) triples across departments;
    2. routing — one rule per subnet forwarding to that department's
       egress;
    3. default deny.

    Size ≈ ``departments * (acl_rules_per_department + subnets_per_department) + 1``.
    """
    rng = random.Random(seed)
    rules: List[Rule] = []
    base = parse_ip("10.0.0.0")

    def department_net(d: int) -> Ternary:
        """Department ``d``'s /16 aggregate."""
        return Ternary.from_prefix(base | (d << 16), 16, 32)

    def subnet(d: int, s: int) -> Ternary:
        """Subnet ``s`` (/24) of department ``d``."""
        return Ternary.from_prefix(base | (d << 16) | (s << 8), 24, 32)

    priority = departments * (acl_rules_per_department + subnets_per_department) + 10

    # 1. Service ACLs between departments.
    services = [22, 80, 443, 445, 3306, 8080, 53, 25]
    for d in range(departments):
        for _ in range(acl_rules_per_department):
            other = rng.randrange(departments)
            service = rng.choice(services)
            action = Drop() if rng.random() < 0.6 else Forward(f"dept{other}")
            match = Match(
                layout,
                layout.pack_match(
                    nw_src=department_net(d),
                    nw_dst=subnet(other, rng.randrange(subnets_per_department)),
                    nw_proto=Ternary.exact(6, 8),
                    tp_dst=Ternary.exact(service, 16),
                ),
            )
            rules.append(Rule(match, priority, action))
            priority -= 1

    # 2. Routing per subnet.
    for d in range(departments):
        for s in range(subnets_per_department):
            match = Match(layout, layout.pack_match(nw_dst=subnet(d, s)))
            rules.append(Rule(match, priority, Forward(f"dept{d}")))
            priority -= 1

    # 3. Default deny.
    rules.append(Rule(Match.any(layout), 0, Drop()))
    return rules


def vpn_policy(
    customers: int = 100,
    sites_per_customer: int = 4,
    layout: HeaderLayout = FIVE_TUPLE_LAYOUT,
    seed: int = 0,
) -> List[Rule]:
    """A VPN-provider policy: per-customer site-pair allows, default deny.

    Every customer owns ``sites_per_customer`` /24 site prefixes; traffic
    is permitted between that customer's own sites (full mesh of ordered
    pairs) and denied otherwise.  Size ≈ ``customers * sites² + 1`` narrow
    rules — the near-disjoint shape that partitions with almost no splits.
    """
    rng = random.Random(seed)
    rules: List[Rule] = []
    priority = customers * sites_per_customer * sites_per_customer + 1

    for customer in range(customers):
        sites = []
        for site in range(sites_per_customer):
            address = (
                (10 << 24)
                | ((customer >> 8) << 22)
                | ((customer & 0xFF) << 10)
                | (site << 8)
            )
            sites.append(Ternary.from_prefix(address, 24, 32))
        egress = f"vpn{customer}"
        for src_site in sites:
            for dst_site in sites:
                match = Match(
                    layout, layout.pack_match(nw_src=src_site, nw_dst=dst_site)
                )
                rules.append(Rule(match, priority, Forward(egress)))
                priority -= 1
    rules.append(Rule(Match.any(layout), 0, Drop()))
    return rules


def routing_policy_for_topology(
    topology,
    layout: HeaderLayout = FIVE_TUPLE_LAYOUT,
    acl_rules: int = 0,
    seed: int = 0,
) -> Tuple[List[Rule], Dict[str, int]]:
    """A runnable policy for a simulated topology.

    Assigns each host an IPv4 address (10.0.x.y), emits one routing rule
    per host (``nw_dst == host ip`` → ``Forward(host)``), optionally tops
    it with ``acl_rules`` random TCP service denies between host subnets,
    and closes with a default drop.

    Returns ``(rules, host_ips)`` where ``host_ips`` maps host name →
    address, which the traffic generators use to build matching packets.
    """
    rng = random.Random(seed)
    hosts = topology.hosts()
    if not hosts:
        raise ValueError("topology has no hosts")
    host_ips: Dict[str, int] = {}
    for index, host in enumerate(hosts):
        host_ips[host] = parse_ip("10.0.0.0") | ((index + 1) & 0xFFFF)

    rules: List[Rule] = []
    priority = acl_rules + len(hosts) + 1

    services = [22, 445, 3306, 23, 161]
    for _ in range(acl_rules):
        victim = rng.choice(hosts)
        match = Match(
            layout,
            layout.pack_match(
                nw_dst=Ternary.exact(host_ips[victim], 32),
                nw_proto=Ternary.exact(6, 8),
                tp_dst=Ternary.exact(rng.choice(services), 16),
            ),
        )
        rules.append(Rule(match, priority, Drop()))
        priority -= 1

    for host in hosts:
        match = Match(
            layout, layout.pack_match(nw_dst=Ternary.exact(host_ips[host], 32))
        )
        rules.append(Rule(match, priority, Forward(host)))
        priority -= 1

    rules.append(Rule(Match.any(layout), 0, Drop()))
    return rules, host_ips
