"""Batch-native traffic generation — bursts born columnar.

The throughput experiments inject *bursts*: many same-instant packets at
one ingress switch.  The scalar generators build one :class:`Packet` (and
one :class:`TimedPacket`) per packet; this module builds the burst
directly as a :class:`~repro.flowspace.batch.PacketBatch`, one numpy
column per header field, so the columnar fast path never materializes
per-packet objects on the generation side either.

The scalar representation stays reachable as a *compatibility view*:
:meth:`TimedBatch.timed_packets` materializes the exact per-packet
schedule (same packet ids, same headers, same instants), which is what
the equivalence property test feeds the oracle path.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

import numpy as np

from repro.flowspace.batch import PacketBatch
from repro.flowspace.fields import HeaderLayout
from repro.workloads.traffic import TimedPacket
from repro.workloads.zipf import ZipfSampler

__all__ = ["TimedBatch", "host_pair_batches", "stream_host_pair_batches"]


class TimedBatch:
    """One scheduled same-instant burst at an ingress switch."""

    __slots__ = ("time", "switch", "batch")

    def __init__(self, time: float, switch: str, batch: PacketBatch):
        self.time = time
        self.switch = switch
        self.batch = batch

    def timed_packets(self) -> List[TimedPacket]:
        """The scalar compatibility view of this burst.

        One :class:`TimedPacket` per packet, all at this burst's instant;
        ``source_host`` is the ingress switch because batches are injected
        switch-side (:meth:`SimNetwork.inject_batch_at_switch`), skipping
        the host hop like :meth:`inject_burst_at_switch` workloads do.
        """
        return [
            TimedPacket(self.time, self.switch, packet)
            for packet in self.batch.packets()
        ]

    def __len__(self) -> int:
        return len(self.batch)

    def __repr__(self) -> str:
        return f"<TimedBatch t={self.time} switch={self.switch} n={len(self.batch)}>"


def stream_host_pair_batches(
    topology,
    host_ips: Dict[str, int],
    layout: HeaderLayout,
    bursts: int,
    burst_size: int,
    interval_s: float = 1e-3,
    hot_flows: int = 64,
    alpha: float = 1.0,
    seed: int = 0,
    size_bytes: int = 64,
    start_time: float = 0.0,
) -> Iterator[TimedBatch]:
    """Zipf-popular host-pair bursts, built columnar and yielded lazily.

    Draws ``hot_flows`` distinct host-pair microflows (random source /
    destination hosts, random ephemeral source port, TCP to port 80 — the
    same shape as :func:`host_pair_packets`), then emits ``bursts`` bursts
    of ``burst_size`` packets, ``interval_s`` apart, with per-packet flows
    sampled Zipf(``alpha``) from the hot set.  Each burst is grouped by
    the source host's attachment switch into one :class:`TimedBatch` per
    (instant, ingress switch) — header columns are assembled with numpy
    fancy indexing over the flow definition arrays, no per-packet Python
    objects.

    Deterministic for a given ``seed`` regardless of columnar mode or
    consumption pace: the flow pool, the Zipf draws and the packet-id
    reservation order are all fixed by the schedule, not by how (or when)
    the batches are later executed — ``list(...)`` of this generator is
    exactly :func:`host_pair_batches`.
    """
    if bursts < 0:
        raise ValueError(f"bursts must be non-negative, got {bursts}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be positive, got {burst_size}")
    if hot_flows < 1:
        raise ValueError(f"hot_flows must be positive, got {hot_flows}")
    hosts = list(host_ips)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    rng = random.Random(seed)
    flow_sources: List[str] = []
    nw_src = np.empty(hot_flows, dtype=np.int64)
    nw_dst = np.empty(hot_flows, dtype=np.int64)
    tp_src = np.empty(hot_flows, dtype=np.int64)
    for flow_id in range(hot_flows):
        src, dst = rng.sample(hosts, 2)
        flow_sources.append(src)
        nw_src[flow_id] = host_ips[src]
        nw_dst[flow_id] = host_ips[dst]
        tp_src[flow_id] = rng.randint(1024, 65535)
    attachment = {host: topology.host_attachment(host) for host in hosts}
    flow_switches = [attachment[source] for source in flow_sources]
    sampler = ZipfSampler(hot_flows, alpha=alpha, seed=seed + 1)
    for burst in range(bursts):
        time = start_time + burst * interval_s
        flows = np.array(sampler.sample_many(burst_size), dtype=np.int64)
        by_switch: Dict[str, List[int]] = {}
        for position, flow in enumerate(flows):
            by_switch.setdefault(flow_switches[flow], []).append(position)
        for switch, positions in by_switch.items():
            selected = flows[positions]
            batch = PacketBatch.from_fields(
                layout,
                len(positions),
                flow_ids=[int(flow) for flow in selected],
                size_bytes=size_bytes,
                nw_src=nw_src[selected],
                nw_dst=nw_dst[selected],
                nw_proto=6,
                tp_src=tp_src[selected],
                tp_dst=80,
            )
            yield TimedBatch(time, switch, batch)


def host_pair_batches(
    topology,
    host_ips: Dict[str, int],
    layout: HeaderLayout,
    bursts: int,
    burst_size: int,
    interval_s: float = 1e-3,
    hot_flows: int = 64,
    alpha: float = 1.0,
    seed: int = 0,
    size_bytes: int = 64,
    start_time: float = 0.0,
) -> List[TimedBatch]:
    """The materialized view of :func:`stream_host_pair_batches`."""
    return list(
        stream_host_pair_batches(
            topology,
            host_ips,
            layout,
            bursts,
            burst_size,
            interval_s=interval_s,
            hot_flows=hot_flows,
            alpha=alpha,
            seed=seed,
            size_bytes=size_bytes,
            start_time=start_time,
        )
    )
