"""ClassBench-style synthetic 5-tuple classifiers.

ClassBench (Taylor & Turner, 2007) generates classifiers whose statistics
mimic real filter sets.  The released tool and seeds are not available
offline, so this module reimplements the *statistical model* that matters
for DIFANE's algorithms:

* **prefix nesting** — source/destination IP prefixes are drawn from a
  synthetic prefix tree with reuse, so shorter prefixes contain longer
  ones and rules form the overlap/dependency chains that make wildcard
  caching and partitioning non-trivial;
* **prefix-length distributions** — per profile (ACL: specific
  destinations, often wildcard sources; FW: both sides constrained,
  heavier port usage; IPC: near-exact 5-tuples);
* **port classes** — wildcard / well-known exact / ephemeral range /
  arbitrary aligned range, with range→prefix expansion into multiple TCAM
  entries (capped, like real rule compilers);
* **protocol mix** — TCP / UDP / any (ICMP folds into "any" since ports
  are wildcarded there).

Each generated entry is a :class:`~repro.flowspace.rule.Rule` in priority
order (first = highest), with a configurable deny fraction and a final
catch-all rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.flowspace.action import Drop, Forward
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT, HeaderLayout
from repro.flowspace.ranges import range_to_ternaries
from repro.flowspace.rule import Match, Rule
from repro.flowspace.ternary import Ternary

__all__ = ["ClassBenchProfile", "generate_classbench", "ACL_PROFILE", "FW_PROFILE", "IPC_PROFILE"]

#: Well-known destination ports with rough real-world popularity.
_POPULAR_PORTS = [80, 443, 53, 25, 22, 21, 23, 110, 143, 161, 389, 445, 3306, 8080]


@dataclass(frozen=True)
class ClassBenchProfile:
    """The tunable statistics of one classifier flavour.

    ``*_prefix_lengths`` are ``(length_range, weight)`` mixtures: a length
    is drawn uniformly from the chosen range.  ``port_classes`` weights the
    four port-match shapes: ``wildcard``, ``exact``, ``ephemeral`` (the
    classic [1024, 65535]) and ``range`` (random aligned block).
    """

    name: str
    src_prefix_lengths: Tuple[Tuple[Tuple[int, int], float], ...]
    dst_prefix_lengths: Tuple[Tuple[Tuple[int, int], float], ...]
    port_classes: Tuple[Tuple[str, float], ...]
    protocol_mix: Tuple[Tuple[Optional[int], float], ...]
    deny_fraction: float
    #: Probability that a sampled prefix extends one already generated
    #: (this is what creates nesting and long dependency chains).
    prefix_reuse: float


ACL_PROFILE = ClassBenchProfile(
    name="acl",
    src_prefix_lengths=((((0, 0)), 0.45), (((8, 24)), 0.25), (((24, 32)), 0.30)),
    dst_prefix_lengths=((((0, 0)), 0.05), (((8, 24)), 0.35), (((24, 32)), 0.60)),
    port_classes=(("wildcard", 0.35), ("exact", 0.45), ("ephemeral", 0.15), ("range", 0.05)),
    protocol_mix=((6, 0.65), (17, 0.25), (None, 0.10)),
    deny_fraction=0.35,
    prefix_reuse=0.55,
)

FW_PROFILE = ClassBenchProfile(
    name="fw",
    src_prefix_lengths=((((0, 0)), 0.15), (((8, 24)), 0.40), (((24, 32)), 0.45)),
    dst_prefix_lengths=((((0, 0)), 0.10), (((8, 24)), 0.40), (((24, 32)), 0.50)),
    port_classes=(("wildcard", 0.20), ("exact", 0.35), ("ephemeral", 0.25), ("range", 0.20)),
    protocol_mix=((6, 0.55), (17, 0.35), (None, 0.10)),
    deny_fraction=0.50,
    prefix_reuse=0.60,
)

IPC_PROFILE = ClassBenchProfile(
    name="ipc",
    src_prefix_lengths=((((0, 0)), 0.05), (((16, 28)), 0.25), (((28, 32)), 0.70)),
    dst_prefix_lengths=((((0, 0)), 0.05), (((16, 28)), 0.25), (((28, 32)), 0.70)),
    port_classes=(("wildcard", 0.15), ("exact", 0.70), ("ephemeral", 0.10), ("range", 0.05)),
    protocol_mix=((6, 0.70), (17, 0.25), (None, 0.05)),
    deny_fraction=0.20,
    prefix_reuse=0.45,
)

_PROFILES: Dict[str, ClassBenchProfile] = {
    "acl": ACL_PROFILE,
    "fw": FW_PROFILE,
    "ipc": IPC_PROFILE,
}


class _PrefixPool:
    """Sample IPv4 prefixes with nesting, per the profile's reuse knob."""

    def __init__(self, rng: random.Random, reuse: float):
        self._rng = rng
        self._reuse = reuse
        self._pool: List[Tuple[int, int]] = []  # (value, length)

    def sample(self, length: int) -> Ternary:
        """Draw a prefix of ``length`` bits, reusing pool prefixes for nesting."""
        if length == 0:
            return Ternary.wildcard(32)
        value: Optional[int] = None
        if self._pool and self._rng.random() < self._reuse:
            base_value, base_length = self._rng.choice(self._pool)
            if base_length <= length:
                # Extend an existing prefix: guaranteed nesting.
                extension_bits = length - base_length
                extension = self._rng.getrandbits(extension_bits) if extension_bits else 0
                value = (base_value >> (32 - base_length) << extension_bits | extension) << (
                    32 - length
                )
        if value is None:
            value = self._rng.getrandbits(length) << (32 - length) if length else 0
        self._pool.append((value, length))
        return Ternary.from_prefix(value, length, 32)


def _weighted_choice(rng: random.Random, options: Sequence[Tuple[object, float]]):
    total = sum(weight for _, weight in options)
    point = rng.random() * total
    cumulative = 0.0
    for choice, weight in options:
        cumulative += weight
        if point <= cumulative:
            return choice
    return options[-1][0]


def _sample_port(rng: random.Random, profile: ClassBenchProfile) -> List[Ternary]:
    """Return the TCAM ternaries for one port match (possibly several)."""
    port_class = _weighted_choice(rng, profile.port_classes)
    if port_class == "wildcard":
        return [Ternary.wildcard(16)]
    if port_class == "exact":
        return [Ternary.exact(rng.choice(_POPULAR_PORTS), 16)]
    if port_class == "ephemeral":
        return range_to_ternaries(1024, 65535, 16)
    # Arbitrary aligned range: a power-of-two block, 1 TCAM entry.
    block_bits = rng.randint(2, 10)
    base = rng.getrandbits(16 - block_bits) << block_bits
    return [Ternary.from_prefix(base, 16 - block_bits, 16)]


def _sample_prefix_length(rng: random.Random, mixture) -> int:
    length_range = _weighted_choice(rng, mixture)
    low, high = length_range
    return rng.randint(low, high)


def generate_classbench(
    profile: str = "acl",
    count: int = 1000,
    seed: int = 0,
    layout: HeaderLayout = FIVE_TUPLE_LAYOUT,
    egress_ports: Sequence[str] = ("e0", "e1", "e2", "e3"),
    max_expansion: int = 8,
    include_default: bool = True,
) -> List[Rule]:
    """Generate a synthetic classifier of ≈``count`` TCAM entries.

    Classifier-level rules whose port ranges expand into several ternaries
    produce several :class:`Rule` entries sharing a priority level (as a
    TCAM compiler would emit), capped at ``max_expansion`` entries.  The
    list ends with a catch-all rule (accept for ACL-style deny lists,
    drop otherwise) when ``include_default`` is set.

    Deterministic for a given ``(profile, count, seed)``.
    """
    spec = _PROFILES.get(profile)
    if spec is None:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")

    rng = random.Random(seed)
    src_pool = _PrefixPool(rng, spec.prefix_reuse)
    dst_pool = _PrefixPool(rng, spec.prefix_reuse)
    rules: List[Rule] = []
    priority = count + 1  # descending; leaves room for the default at 0

    while len(rules) < (count - 1 if include_default else count):
        src = src_pool.sample(_sample_prefix_length(rng, spec.src_prefix_lengths))
        dst = dst_pool.sample(_sample_prefix_length(rng, spec.dst_prefix_lengths))
        protocol = _weighted_choice(rng, spec.protocol_mix)
        proto_ternary = (
            Ternary.wildcard(8) if protocol is None else Ternary.exact(protocol, 8)
        )
        sport_options = _sample_port(rng, spec)
        dport_options = _sample_port(rng, spec)
        action = (
            Drop()
            if rng.random() < spec.deny_fraction
            else Forward(rng.choice(list(egress_ports)))
        )
        expanded = 0
        for sport in sport_options:
            for dport in dport_options:
                if expanded >= max_expansion:
                    break
                match = Match(
                    layout,
                    layout.pack_match(
                        nw_src=src,
                        nw_dst=dst,
                        nw_proto=proto_ternary,
                        tp_src=sport,
                        tp_dst=dport,
                    ),
                )
                rules.append(Rule(match, priority, action))
                expanded += 1
            if expanded >= max_expansion:
                break
        priority -= 1
        if priority <= 0:
            break

    rules = rules[: count - 1 if include_default else count]
    if include_default:
        default_action = Forward(egress_ports[0]) if spec.deny_fraction >= 0.5 else Drop()
        rules.append(Rule(Match.any(layout), 0, default_action))
    return rules
