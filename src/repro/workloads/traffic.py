"""Traffic generation: flows, packet sequences and timed arrivals.

Three levels, matching what each experiment needs:

* **flow headers** — concrete 5-tuples drawn to hit a given policy
  (weighted by each rule's flow-space share, like the paper's synthetic
  weight assignment, or uniformly);
* **packet sequences** — an ordered stream of headers with Zipf flow
  popularity, for the trace-driven cache simulators;
* **timed arrivals** — Poisson or deterministic arrival processes of
  single-packet flows, for the event-driven throughput and delay
  experiments (the paper's stress test is exactly "one packet per flow at
  rate R").
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "TimedPacket",
    "flow_headers_for_policy",
    "packet_sequence",
    "poisson_arrivals",
    "host_pair_packets",
    "zipf_host_pair_packets",
]


class TimedPacket:
    """One scheduled packet injection.

    Workload generators build one of these per packet, so it is a
    ``__slots__`` class (no per-instance dict) rather than a dataclass.
    """

    __slots__ = ("time", "source_host", "packet")

    def __init__(self, time: float, source_host: str, packet: Packet):
        self.time = time
        self.source_host = source_host
        self.packet = packet

    def __repr__(self) -> str:
        return (
            f"TimedPacket(time={self.time!r}, "
            f"source_host={self.source_host!r}, packet={self.packet!r})"
        )


def flow_headers_for_policy(
    rules: Sequence[Rule],
    count: int,
    seed: int = 0,
    weight_by_size: bool = True,
    skip_terminal_default: bool = True,
) -> List[int]:
    """Draw ``count`` distinct-ish flow headers that exercise ``rules``.

    Each flow picks a rule (weighted by the rule match's flow-space size
    when ``weight_by_size`` — the paper's weighting — else uniformly) and
    samples a concrete header inside the match.  Headers may actually hit
    a higher-priority overlapping rule; that is realistic and harmless.
    The catch-all default rule is excluded by default so traffic
    concentrates on the interesting part of the policy.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    candidates = list(rules)
    if skip_terminal_default and len(candidates) > 1 and candidates[-1].match.ternary.is_wildcard():
        candidates = candidates[:-1]
    if not candidates:
        raise ValueError("no rules to draw traffic from")
    if weight_by_size:
        # Weight by flow-space share, rescaled relative to the widest rule
        # so the ratios stay in float range (headers are >100 bits wide).
        max_free = max(rule.match.ternary.wildcard_bits() for rule in candidates)
        weights = [
            max(2.0 ** (rule.match.ternary.wildcard_bits() - max_free), 1e-12)
            for rule in candidates
        ]
    else:
        weights = [1.0] * len(candidates)
    headers = []
    for _ in range(count):
        rule = rng.choices(candidates, weights=weights, k=1)[0]
        headers.append(rule.match.ternary.sample(rng))
    return headers


def packet_sequence(
    flow_headers: Sequence[int],
    length: int,
    alpha: float = 1.0,
    seed: int = 0,
) -> List[int]:
    """A stream of ``length`` headers with Zipf(alpha) flow popularity.

    Flow popularity rank is decoupled from the order of ``flow_headers``
    via a seeded shuffle, so popular flows are spread across the policy.
    """
    if not flow_headers:
        raise ValueError("need at least one flow header")
    sampler = ZipfSampler(len(flow_headers), alpha=alpha, seed=seed, shuffle=True)
    return [flow_headers[i] for i in sampler.sample_many(length)]


def poisson_arrivals(
    rate: float,
    duration: float,
    seed: int = 0,
) -> List[float]:
    """Arrival times of a Poisson process of ``rate``/s over ``duration`` s."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    times = []
    t = rng.expovariate(rate)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate)
    return times


def host_pair_packets(
    topology,
    host_ips: Dict[str, int],
    layout: HeaderLayout,
    count: int,
    rate: float,
    seed: int = 0,
    flow_packets: int = 1,
    deterministic_arrivals: bool = False,
) -> List[TimedPacket]:
    """Timed packets between random host pairs of ``topology``.

    Every flow is ``flow_packets`` back-to-back packets (1 µs apart) from a
    random source host to a random destination host, with the destination
    host's address in ``nw_dst`` (so the routing policy from
    :func:`routing_policy_for_topology` forwards it) and random ephemeral
    ports (so each flow is a distinct microflow — the paper's stress
    pattern).
    """
    rng = random.Random(seed)
    hosts = list(host_ips)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    if deterministic_arrivals:
        start_times = [i / rate for i in range(count)]
    else:
        # Exactly `count` Poisson arrivals: accumulate exponential gaps.
        gap_rng = random.Random(seed + 1)
        start_times = []
        t = 0.0
        for _ in range(count):
            t += gap_rng.expovariate(rate)
            start_times.append(t)
    result: List[TimedPacket] = []
    for flow_id, start in enumerate(start_times):
        src, dst = rng.sample(hosts, 2)
        header_kwargs = dict(
            nw_src=host_ips[src],
            nw_dst=host_ips[dst],
            nw_proto=6,
            tp_src=rng.randint(1024, 65535),
            tp_dst=80,
        )
        for p_index in range(flow_packets):
            packet = Packet.from_fields(layout, flow_id=flow_id, **header_kwargs)
            result.append(TimedPacket(start + p_index * 1e-6, src, packet))
    return result


def zipf_host_pair_packets(
    topology,
    host_ips: Dict[str, int],
    layout: HeaderLayout,
    count: int,
    rate: float,
    alpha: float = 1.2,
    seed: int = 0,
    flow_packets: int = 1,
    deterministic_arrivals: bool = False,
) -> List[TimedPacket]:
    """Like :func:`host_pair_packets`, but with Zipf-skewed destinations.

    Destination hosts are drawn from ``Zipf(alpha)`` over the host list
    order (the first host is the hottest), sources uniformly from the
    rest.  Because routing rules key on ``nw_dst``, the skew propagates
    straight through the policy cut into per-partition redirect load —
    the workload that trips the authority-imbalance detector and gives
    a rebalancer something real to fix.
    """
    rng = random.Random(seed)
    hosts = list(host_ips)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    sampler = ZipfSampler(len(hosts), alpha=alpha, seed=seed, shuffle=False)
    if deterministic_arrivals:
        start_times = [i / rate for i in range(count)]
    else:
        gap_rng = random.Random(seed + 1)
        start_times = []
        t = 0.0
        for _ in range(count):
            t += gap_rng.expovariate(rate)
            start_times.append(t)
    result: List[TimedPacket] = []
    for flow_id, start in enumerate(start_times):
        dst = hosts[sampler.sample()]
        src = rng.choice([host for host in hosts if host != dst])
        header_kwargs = dict(
            nw_src=host_ips[src],
            nw_dst=host_ips[dst],
            nw_proto=6,
            tp_src=rng.randint(1024, 65535),
            tp_dst=80,
        )
        for p_index in range(flow_packets):
            packet = Packet.from_fields(layout, flow_id=flow_id, **header_kwargs)
            result.append(TimedPacket(start + p_index * 1e-6, src, packet))
    return result
