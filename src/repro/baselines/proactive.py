"""The fully proactive baseline: whole policy on every ingress switch.

The reference point for TCAM accounting: with an unbounded table every
switch could simply hold the entire policy and classify locally — no
controller, no authority switches, no misses.  The paper's motivation is
that real TCAMs cannot do this; this baseline makes the comparison
concrete (its per-switch footprint is ``len(policy)``, versus DIFANE's
``len(partition rules) + per-partition share``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.flowspace.action import Drop, Forward, SetField
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule
from repro.flowspace.table import RuleTable
from repro.net.simnet import SimNetwork
from repro.net.topology import Topology
from repro.switch.switch import DataPlaneSwitch

__all__ = ["ProactiveSwitch", "ProactiveNetwork"]


class ProactiveSwitch(DataPlaneSwitch):
    """A switch holding the complete policy (unbounded table)."""

    def __init__(
        self, name: str, layout: HeaderLayout, rules: Sequence[Rule], engine=None
    ):
        super().__init__(name)
        self.layout = layout
        self.table = RuleTable(layout, [rule.derive() for rule in rules], engine=engine)
        self.policy_hits = 0
        self.policy_misses = 0

    def process(self, packet: Packet) -> None:
        """Classify locally against the full policy, then forward/drop."""
        if packet.is_encapsulated:
            if packet.encap_destination != self.name:
                self.network.forward_toward(self.name, packet.encap_destination, packet)
                return
            packet.decapsulate()
        rule = self.table.classify(packet)
        if rule is None:
            self.policy_misses += 1
            self.network.record_drop(packet, self.name, "no matching rule")
            return
        self.policy_hits += 1
        for action in rule.actions:
            if isinstance(action, SetField):
                self._apply_rewrite(packet, action)
            elif isinstance(action, Drop):
                self.network.record_drop(packet, self.name, "policy drop")
                return
            elif isinstance(action, Forward):
                packet.encapsulate(action.port)
                self.network.forward_toward(self.name, action.port, packet)
                return
        self.network.record_drop(packet, self.name, "no terminal action")

    @property
    def tcam_footprint(self) -> int:
        """Entries this switch would need in hardware."""
        return len(self.table)


class ProactiveNetwork:
    """Facade mirroring :class:`DifaneNetwork` for the proactive baseline."""

    def __init__(self, network: SimNetwork):
        self.network = network

    @classmethod
    def build(
        cls,
        topology: Topology,
        rules: Sequence[Rule],
        layout: HeaderLayout,
        engine=None,
    ) -> "ProactiveNetwork":
        """Install the full policy on every switch of ``topology``."""
        network = SimNetwork(topology)
        for name in topology.switches():
            network.register_node(ProactiveSwitch(name, layout, rules, engine=engine))
        return cls(network)

    def send(self, host: str, packet: Packet) -> None:
        """Inject ``packet`` from ``host`` now."""
        self.network.inject_from_host(host, packet)

    def send_at(self, time: float, host: str, packet: Packet) -> None:
        """Schedule injection at absolute ``time``."""
        self.network.scheduler.schedule_at(
            time, self.network.inject_from_host, host, packet
        )

    def run(self, until: Optional[float] = None) -> int:
        """Run the event loop."""
        return self.network.run(until=until)

    def switches(self) -> List[ProactiveSwitch]:
        """All switch behaviours."""
        return [self.network.node(n) for n in self.network.topology.switches()]
