"""The Ethane/NOX baseline: reactive microflow installation.

This is the architecture DIFANE replaces (paper §1, §6): a packet that
misses the switch's exact-match flow table is punted to the central
controller (PacketIn), waits in the controller's CPU queue, and — once the
controller classifies it against the operator policy — comes back as a
FlowMod (install an exact-match microflow rule) plus a PacketOut
(re-inject the waiting packet).  Every architectural cost the paper
measures is visible here:

* the controller CPU is the throughput bottleneck (a few 10⁴ setups/s,
  shared by every switch);
* first packets pay a control-channel round trip plus queueing (≈10 ms);
* under overload the CPU queue tail-drops and flows are simply lost;
* flow tables fill with per-microflow entries.

Classification happens once, at the ingress switch, after which packets
travel encapsulated to the destination — the same convention the DIFANE
switches use, so delay/throughput comparisons isolate the architecture
rather than the forwarding model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

from repro.flowspace.action import Drop, Forward, SetField
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Match, Rule, RuleKind
from repro.flowspace.table import RuleTable
from repro.flowspace.ternary import Ternary
from repro.net.simnet import SimNetwork
from repro.net.topology import Topology
from repro.obs.trace import TraceKind
from repro.openflow.controller import Controller, DEFAULT_CONTROLLER_RATE
from repro.openflow.messages import FlowMod, FlowModCommand, Message, PacketIn, PacketOut
from repro.switch.switch import DataPlaneSwitch

__all__ = ["NoxSwitch", "NoxController", "NoxNetwork"]


class NoxSwitch(DataPlaneSwitch):
    """An OpenFlow switch holding only exact-match microflow rules.

    Parameters
    ----------
    flow_table_capacity:
        Microflow entries the switch can hold; LRU-evicted beyond that.
    """

    def __init__(
        self,
        name: str,
        layout: HeaderLayout,
        flow_table_capacity: int = 65536,
        forwarding_delay_s: float = 0.0,
    ):
        super().__init__(name, forwarding_delay_s=forwarding_delay_s)
        self.layout = layout
        self.flow_table_capacity = flow_table_capacity
        #: flow key (packed header bits) -> microflow rule, in LRU order.
        self.flow_table: "OrderedDict[int, Rule]" = OrderedDict()
        self.channel = None  # set by the controller on connect
        self.flow_hits = 0
        self.punts = 0
        self.table_evictions = 0

    # -- control plane ------------------------------------------------------------
    def receive_control(self, message: Message) -> None:
        """Handle a controller-to-switch message."""
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)

    def _apply_flow_mod(self, message: FlowMod) -> None:
        if message.command is FlowModCommand.ADD and message.rule is not None:
            key = message.rule.match.ternary.value
            message.rule.installed_at = self.network.scheduler.now
            self.flow_table[key] = message.rule
            self.flow_table.move_to_end(key)
            while len(self.flow_table) > self.flow_table_capacity:
                self.flow_table.popitem(last=False)
                self.table_evictions += 1
        elif message.command is FlowModCommand.DELETE:
            if message.match is not None:
                doomed = [
                    key for key in self.flow_table
                    if message.match.matches_bits(key)
                ]
                for key in doomed:
                    del self.flow_table[key]

    def _apply_packet_out(self, message: PacketOut) -> None:
        self._execute_verdict(message.packet, message.actions)

    # -- data plane --------------------------------------------------------------------
    def process(self, packet: Packet) -> None:
        """Exact-match lookup; punt to the controller on a miss."""
        if packet.is_encapsulated:
            if packet.encap_destination != self.name:
                self.network.forward_toward(self.name, packet.encap_destination, packet)
                return
            packet.decapsulate()
        rule = self.flow_table.get(packet.header_bits)
        if rule is not None:
            self.flow_hits += 1
            self.flow_table.move_to_end(packet.header_bits)
            rule.record_hit(packet, self.network.scheduler.now)
            self._execute_verdict(packet, rule.actions)
            return
        # Miss: punt to the controller; the packet rides inside the message
        # and waits in the controller queue (tail drop = packet loss).
        self.punts += 1
        packet.via_controller = True
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.record(
                self.network.scheduler.now, TraceKind.PUNT, packet, node=self.name
            )
        self.channel.send_to_controller(PacketIn(switch=self.name, packet=packet))

    def _execute_verdict(self, packet: Packet, actions) -> None:
        for action in actions:
            if isinstance(action, SetField):
                self._apply_rewrite(packet, action)
            elif isinstance(action, Drop):
                self.network.record_drop(packet, self.name, "policy drop")
                return
            elif isinstance(action, Forward):
                packet.encapsulate(action.port)
                self.network.forward_toward(self.name, action.port, packet)
                return
        self.network.record_drop(packet, self.name, "no terminal action")

    def expire_flows(self, now: float) -> int:
        """Age out microflow entries whose idle/hard timeout elapsed.

        OpenFlow switches do this autonomously; call from a periodic
        tick.  Returns the number of expired entries.
        """
        doomed = [key for key, rule in self.flow_table.items() if rule.is_expired(now)]
        for key in doomed:
            del self.flow_table[key]
        return len(doomed)


class NoxController(Controller):
    """The reactive controller: classify punts, install microflow rules."""

    def __init__(
        self,
        scheduler,
        network: SimNetwork,
        layout: HeaderLayout,
        policy: Sequence[Rule],
        processing_rate: float = DEFAULT_CONTROLLER_RATE,
        queue_limit: int = 1024,
        microflow_idle_timeout: Optional[float] = 60.0,
        control_latency_s: Optional[float] = None,
        engine=None,
    ):
        extra = {}
        if control_latency_s is not None:
            extra["control_latency_s"] = control_latency_s
        super().__init__(
            scheduler, processing_rate=processing_rate, queue_limit=queue_limit, **extra
        )
        self.network = network
        self.layout = layout
        self.policy = RuleTable(layout, policy, engine=engine)
        self.microflow_idle_timeout = microflow_idle_timeout
        self.flow_setups = 0
        self.policy_misses = 0

    def handle_packet_in(self, message: PacketIn) -> None:
        """Classify a punted packet; install a microflow and re-inject it."""
        packet = message.packet
        winner = self.policy.lookup(packet)
        if winner is None:
            self.policy_misses += 1
            self.network.record_drop(packet, self.name, "no policy rule")
            return
        self.flow_setups += 1
        microflow = winner.derive(
            match=Match(self.layout, Ternary.exact(packet.header_bits, self.layout.width)),
            kind=RuleKind.MICROFLOW,
            idle_timeout=self.microflow_idle_timeout,
        )
        channel = self.channels[message.switch]
        channel.send_to_switch(
            FlowMod(switch=message.switch, command=FlowModCommand.ADD, rule=microflow)
        )
        channel.send_to_switch(
            PacketOut(switch=message.switch, packet=packet, actions=winner.actions)
        )

    def on_message_dropped(self, message: Message) -> None:
        """CPU queue overflow: the punted packet is lost."""
        if isinstance(message, PacketIn):
            self.network.record_drop(message.packet, self.name, "controller overloaded")


class NoxNetwork:
    """Facade mirroring :class:`repro.core.controller.DifaneNetwork`."""

    def __init__(self, network: SimNetwork, controller: NoxController):
        self.network = network
        self.controller = controller

    @classmethod
    def build(
        cls,
        topology: Topology,
        rules: Sequence[Rule],
        layout: HeaderLayout,
        controller_rate: float = DEFAULT_CONTROLLER_RATE,
        controller_queue: int = 1024,
        flow_table_capacity: int = 65536,
        control_latency_s: Optional[float] = None,
        forwarding_delay_s: float = 0.0,
        engine=None,
    ) -> "NoxNetwork":
        """Wire a NOX deployment over ``topology``.

        ``engine`` selects the controller's policy-lookup backend (the
        switches keep their exact-match hash table, which no wildcard
        engine can beat).
        """
        network = SimNetwork(topology)
        controller = NoxController(
            network.scheduler,
            network,
            layout,
            rules,
            processing_rate=controller_rate,
            queue_limit=controller_queue,
            control_latency_s=control_latency_s,
            engine=engine,
        )
        for name in topology.switches():
            switch = NoxSwitch(
                name,
                layout,
                flow_table_capacity=flow_table_capacity,
                forwarding_delay_s=forwarding_delay_s,
            )
            network.register_node(switch)
            switch.channel = controller.connect_switch(switch)
        return cls(network, controller)

    def send(self, host: str, packet: Packet) -> None:
        """Inject ``packet`` from ``host`` now."""
        self.network.inject_from_host(host, packet)

    def send_at(self, time: float, host: str, packet: Packet) -> None:
        """Schedule injection at absolute ``time``."""
        self.network.scheduler.schedule_at(
            time, self.network.inject_from_host, host, packet
        )

    def run(self, until: Optional[float] = None) -> int:
        """Run the event loop."""
        return self.network.run(until=until)

    def switch(self, name: str) -> NoxSwitch:
        """The switch behaviour at ``name``."""
        return self.network.node(name)

    def switches(self) -> List[NoxSwitch]:
        """All switch behaviours."""
        return [self.network.node(n) for n in self.network.topology.switches()]
