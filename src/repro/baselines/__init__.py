"""Baselines the paper compares DIFANE against.

* :mod:`repro.baselines.nox` — the Ethane/NOX architecture: every flow's
  first packet punts to a capacity-bounded central controller that
  installs an exact-match microflow rule.
* :mod:`repro.baselines.proactive` — install the entire policy on every
  ingress switch (unbounded TCAM reference point).
* :mod:`repro.baselines.microflow_cache` — trace-driven cache simulators
  (microflow vs. DIFANE's independent wildcard fragments) for the
  cache-miss-rate experiment.
"""

from repro.baselines.nox import NoxController, NoxNetwork, NoxSwitch
from repro.baselines.proactive import ProactiveNetwork, ProactiveSwitch
from repro.baselines.microflow_cache import (
    CacheSimResult,
    simulate_microflow_cache,
    simulate_wildcard_cache,
)

__all__ = [
    "NoxController",
    "NoxSwitch",
    "NoxNetwork",
    "ProactiveSwitch",
    "ProactiveNetwork",
    "CacheSimResult",
    "simulate_microflow_cache",
    "simulate_wildcard_cache",
]
