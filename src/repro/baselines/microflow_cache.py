"""Trace-driven cache simulators for the miss-rate experiment (E7).

The paper's caching argument: reactive **microflow** rules (one exact
match per flow, the Ethane way) need an entry per active flow, while
DIFANE's **independent wildcard fragments** cover many flows per entry —
so for a fixed TCAM budget the wildcard cache misses far less.  These two
simulators replay the same packet-header sequence through an LRU cache of
each kind, counting hits and misses, with no event-driven machinery so
large sweeps stay fast.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Rule
from repro.flowspace.table import RuleTable
from repro.flowspace.ternary import Ternary
from repro.core.cachegen import win_fragment

__all__ = ["CacheSimResult", "simulate_microflow_cache", "simulate_wildcard_cache"]


@dataclass
class CacheSimResult:
    """Outcome of one cache replay."""

    cache_size: int
    packets: int
    hits: int
    misses: int
    installs: int
    evictions: int
    unmatched: int

    @property
    def miss_rate(self) -> float:
        """Fraction of matched packets that missed the cache."""
        matched = self.packets - self.unmatched
        return self.misses / matched if matched else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of matched packets served by the cache."""
        matched = self.packets - self.unmatched
        return self.hits / matched if matched else 0.0


def simulate_microflow_cache(
    policy: Sequence[Rule],
    layout: HeaderLayout,
    header_sequence: Iterable[int],
    cache_size: int,
    engine=None,
) -> CacheSimResult:
    """Replay ``header_sequence`` through an LRU exact-match cache.

    A miss consults the policy (the controller / authority detour) and
    installs one microflow entry for that exact header.  ``engine``
    selects the policy-lookup backend (see :mod:`repro.flowspace.engine`).
    """
    table = RuleTable(layout, policy, engine=engine)
    cache: "OrderedDict[int, bool]" = OrderedDict()
    hits = misses = installs = evictions = unmatched = packets = 0
    for bits in header_sequence:
        packets += 1
        if bits in cache:
            hits += 1
            cache.move_to_end(bits)
            continue
        winner = table.lookup_bits(bits)
        if winner is None:
            unmatched += 1
            continue
        misses += 1
        if cache_size > 0:
            cache[bits] = True
            installs += 1
            if len(cache) > cache_size:
                cache.popitem(last=False)
                evictions += 1
    return CacheSimResult(cache_size, packets, hits, misses, installs, evictions, unmatched)


def simulate_wildcard_cache(
    policy: Sequence[Rule],
    layout: HeaderLayout,
    header_sequence: Iterable[int],
    cache_size: int,
    engine=None,
    eviction: str = "lru",
) -> CacheSimResult:
    """Replay ``header_sequence`` through a cache of DIFANE fragments.

    A miss consults the policy, computes the winning rule's independent
    win-region fragment containing the packet (the same per-miss
    computation the authority switch performs; memoized), and installs
    that single wildcard entry.  Lookups scan from most to least recently
    used; fragments are pairwise disjoint so the first match is the only
    match.

    ``eviction`` selects the replacement policy: ``"lru"`` (the paper) or
    ``"cost"``, a GreedyDual-Size-Frequency-style score — frequency times
    a coverage bonus on top of an inflation clock — mirroring the
    event-driven :class:`repro.switch.cache.CacheManager` COST policy in
    this trace-driven setting (where every re-fetch costs the same, so
    coverage is the benefit proxy).
    """
    if eviction not in ("lru", "cost"):
        raise ValueError(f"unknown eviction policy {eviction!r}")
    table = RuleTable(layout, policy, engine=engine)
    ordered_rules = list(table.rules)
    cost = eviction == "cost"
    fragment_memo: Dict[Ternary, Ternary] = {}
    cache: "OrderedDict[Ternary, bool]" = OrderedDict()
    freq: Dict[Ternary, int] = {}
    score: Dict[Ternary, float] = {}
    clock = 0.0

    def rescore(fragment: Ternary) -> None:
        bonus = 1.0
        if fragment.width:
            bonus += fragment.wildcard_bits() / fragment.width
        score[fragment] = clock + freq[fragment] * bonus

    hits = misses = installs = evictions = unmatched = packets = 0
    for bits in header_sequence:
        packets += 1
        found = None
        for fragment in reversed(cache):
            if fragment.matches(bits):
                found = fragment
                break
        if found is not None:
            hits += 1
            cache.move_to_end(found)
            if cost:
                freq[found] += 1
                rescore(found)
            continue
        winner = table.lookup_bits(bits)
        if winner is None:
            unmatched += 1
            continue
        misses += 1
        if cache_size <= 0:
            continue
        fragment = None
        for memoized in fragment_memo.values():
            if memoized.matches(bits):
                fragment = memoized
                break
        if fragment is None:
            fragment = win_fragment(ordered_rules, winner, bits)
            if fragment is None:
                continue
            fragment_memo[fragment] = fragment
        cache[fragment] = True
        installs += 1
        if cost:
            freq[fragment] = 1
            rescore(fragment)
        if len(cache) > cache_size:
            if cost:
                victim = min(cache, key=score.get)
                clock = score[victim]
                del cache[victim], freq[victim], score[victim]
            else:
                cache.popitem(last=False)
            evictions += 1
    return CacheSimResult(cache_size, packets, hits, misses, installs, evictions, unmatched)
