"""Self-healing sharded control plane with online partition migration.

PR 2 gave the controller a failure story (heartbeats, ARQ channels,
backup promotion) but kept it a single process with an oracle view.
This module splits the *management* half of the controller into ``N``
replica shards, each owning a subset of partitions, and adds the two
pieces a replicated control plane needs:

* :class:`ShardedControlPlane` — deterministic shard membership
  (SHA-256 ownership derivation, like the PR 4 sweep seeds), a leader
  lease renewed over the PR 2 ARQ-reliable channel, deterministic
  lowest-live-id elections when the lease expires, and an
  OwnershipTransfer → OwnershipAck handshake that re-homes a dead
  shard's partitions onto the survivors.  Authority-switch failures
  route through the owning shard: a dead shard's partitions *defer*
  their failover until the lease takeover adopts them — detection is
  emergent from message timing, never a scripted callback.

* :class:`PartitionMigrator` — two-phase online migration of one
  partition to a new authority switch: (1) install fragments at the
  target over the reliable channel (the target joins the owner list as
  a backup, so the partition is never unowned); (2) once every install
  is acked, *flip* — one atomic event that moves the load history,
  promotes the target to primary, and re-points every ingress
  partition rule; (3) after a grace period long enough for in-flight
  redirects to drain, retire the source's fragments.
  :meth:`DifaneController.assert_all_partitions_owned` holds at every
  event boundary of a migration.

* :class:`Rebalancer` — the self-healing loop.  On its own simulated
  cadence it snapshots per-switch work into synthetic telemetry
  windows, runs the :mod:`repro.obs.health` detectors over them, and
  acts on the findings: a *degraded-mode* critical (or a partition
  with no live reachable owner) triggers orphan healing onto spare
  switches; an *authority-imbalance* warning triggers a greedy hot
  repack, pulling spares into the pool until the projected Jain
  fairness clears the detector's own threshold.

Everything is seeded and event-driven: identical runs (any ``--jobs``)
produce byte-identical migration histories.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.partition import assign_partitions_to_shards
from repro.obs.health import (
    IMBALANCE_FAIRNESS_THRESHOLD,
    evaluate_telemetry,
    jain_fairness,
)
from repro.obs.trace import TraceKind
from repro.flowspace.rule import Rule, RuleKind
from repro.openflow.channel import (
    ChannelFaultModel,
    ControlChannel,
    DEFAULT_CONTROL_LATENCY_S,
)
from repro.openflow.messages import (
    FlowMod,
    FlowModCommand,
    LeaseRenew,
    Message,
    OwnershipAck,
    OwnershipTransfer,
)

__all__ = [
    "ControllerShard",
    "Migration",
    "PartitionMigrator",
    "Rebalancer",
    "ShardedControlPlane",
    "attach_sharded_control_plane",
]

#: A migration stuck in its retire phase (the source died before acking
#: the fragment deletes) force-completes after this long.
RETIRE_TIMEOUT_S = 0.25


@dataclass
class ControllerShard:
    """One control-plane replica's membership view (plane-side record)."""

    name: str
    shard_id: int
    alive: bool = True
    #: Highest lease term this shard has seen.
    term: int = 0
    #: When the last lease renewal arrived (shards start leased).
    last_lease: float = 0.0


class ShardedControlPlane:
    """N controller shards coordinating over ARQ-reliable channels.

    Partition ownership is derived deterministically
    (``derive_seed(seed, ("shard", pid, n_shards)) % n_shards``), the
    leader renews its lease every ``lease_interval_s`` over a dedicated
    :class:`ControlChannel` per follower, and a follower whose lease
    goes stale for ``miss_threshold`` intervals elects the lowest-id
    live shard.  The new leader adopts dead shards' partitions through
    the OwnershipTransfer/OwnershipAck handshake — each transfer rides
    the channel's seq/ack machinery, so the takeover tolerates the
    same drop/delay faults as the data-plane control sessions.

    Management operations on a partition (authority failover, hot
    migration) are routed through :meth:`can_act_on`: a partition whose
    owning shard is dead *defers* until adoption lands, mirroring a
    real control plane's unavailability window.
    """

    def __init__(
        self,
        controller,
        n_shards: int = 2,
        seed: int = 0,
        lease_interval_s: float = 0.02,
        miss_threshold: int = 3,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
        fault_model: Optional[ChannelFaultModel] = None,
        max_retries: Optional[int] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.controller = controller
        self.network = controller.network
        self.n_shards = n_shards
        self.seed = seed
        self.lease_interval_s = lease_interval_s
        self.miss_threshold = miss_threshold
        self.shards: Dict[str, ControllerShard] = {
            f"shard{i}": ControllerShard(name=f"shard{i}", shard_id=i)
            for i in range(n_shards)
        }
        self.leader_name = "shard0"
        self.term = 0
        #: Bumped per adoption round so re-derived ownership differs
        #: between successive takeovers (deterministically).
        self.generation = 0
        #: Authoritative (leader-view) owner shard per partition id.
        self.ownership: Dict[int, str] = {}
        #: Partitions mid-handshake: pid -> target shard awaiting its ack.
        self.in_transfer: Dict[int, str] = {}
        #: Deferred work for partitions whose shard is dead / in transfer.
        self.pending_failovers: List[Tuple[int, str]] = []
        self.pending_migrations: List[Tuple[int, str, str]] = []
        #: Structured event log (exported; deterministic).
        self.events: List[Dict[str, object]] = []
        self.deferred_failovers_applied = 0
        #: Optional migrator for draining deferred migrations.
        self.migrator: Optional["PartitionMigrator"] = None
        self.rebalancer: Optional["Rebalancer"] = None
        self._last_ack: Dict[str, float] = {}
        self._epoch = 0.0
        self._started = False
        scheduler = self.network.scheduler
        self.channels: Dict[str, ControlChannel] = {
            name: ControlChannel(
                scheduler,
                name,
                to_controller=functools.partial(self._receive_at_leader, name),
                to_switch=functools.partial(self._receive_at_shard, name),
                latency_s=latency_s,
                fault_model=fault_model,
                max_retries=max_retries,
                metrics=self.network.metrics,
            )
            for name in sorted(self.shards)
        }
        registry = self.network.metrics
        self._m = {
            event: registry.counter("control_plane_events_total", event=event)
            for event in (
                "lease-renewal", "election", "adoption", "transfer",
                "transfer-ack", "shard-kill", "shard-restore",
                "deferred-failover", "deferred-migration",
            )
        }

    # -- lifecycle -----------------------------------------------------------
    @property
    def timeout_s(self) -> float:
        """Lease silence beyond this marks the leaseholder suspect."""
        return self.miss_threshold * self.lease_interval_s

    def start(self) -> None:
        """Derive the initial ownership map and begin the lease loop."""
        now = self.network.scheduler.now
        self._epoch = now
        pids = sorted(self.controller._states)
        shard_of = assign_partitions_to_shards(pids, self.n_shards, seed=self.seed)
        self.ownership = {pid: f"shard{shard_of[pid]}" for pid in pids}
        for shard in self.shards.values():
            shard.last_lease = now
            self._last_ack[shard.name] = now
        self.controller.shard_plane = self
        self._started = True
        self.network.scheduler.schedule(self.lease_interval_s, self._tick)

    def _by_id(self) -> List[ControllerShard]:
        return sorted(self.shards.values(), key=lambda s: s.shard_id)

    def owner_of(self, pid: int) -> Optional[str]:
        """The shard currently responsible for ``pid`` (leader view)."""
        return self.ownership.get(pid)

    def can_act_on(self, pid: int) -> bool:
        """Whether management operations on ``pid`` can run *now*.

        False while the owning shard is dead or the partition is mid
        ownership-transfer — callers defer and the work drains once
        adoption completes.
        """
        if pid in self.in_transfer:
            return False
        owner = self.ownership.get(pid)
        if owner is None:
            return True
        return self.shards[owner].alive

    # -- chaos hooks ---------------------------------------------------------
    def kill_shard(self, name: str) -> bool:
        """Kill one control-plane replica (idempotent; False if dead)."""
        shard = self.shards[name]
        if not shard.alive:
            return False
        now = self.network.scheduler.now
        shard.alive = False
        self._m["shard-kill"].inc()
        self._event(now, "shard-kill", name, "replica down")
        channel = self.channels[name]
        channel.set_endpoint_alive("down", False)
        channel.drain_pending()
        if name == self.leader_name:
            # The leader role itself went dark: nothing receives the
            # "up" direction until a takeover (or this shard's repair).
            for other in self.channels.values():
                other.set_endpoint_alive("up", False)
        return True

    def restore_shard(self, name: str) -> bool:
        """Repair a replica; it rejoins owning nothing (idempotent)."""
        shard = self.shards[name]
        if shard.alive:
            return False
        now = self.network.scheduler.now
        shard.alive = True
        shard.last_lease = now
        self._last_ack[name] = now
        self._m["shard-restore"].inc()
        self._event(now, "shard-restore", name, "replica up")
        self.channels[name].set_endpoint_alive("down", True)
        if name == self.leader_name:
            # Restored before any takeover: it resumes leadership.
            for other in self.channels.values():
                other.set_endpoint_alive("up", True)
        return True

    # -- management routing ----------------------------------------------------
    def handle_authority_failure(self, failed: str) -> int:
        """Shard-routed authority failover; returns re-pointed partitions.

        Partitions owned by live shards fail over immediately through
        :meth:`DifaneController.failover_partition`; the rest queue
        until their shard's partitions are adopted by a live leader.
        """
        controller = self.controller
        controller._retire_authority(failed)
        repointed = 0
        now = self.network.scheduler.now
        for pid in sorted(controller._states):
            if failed not in controller._states[pid].owners:
                continue
            if self.can_act_on(pid):
                if controller.failover_partition(pid, failed):
                    repointed += 1
            else:
                self.pending_failovers.append((pid, failed))
                self._m["deferred-failover"].inc()
                self._event(
                    now, "deferred-failover", self.ownership.get(pid, "?"),
                    f"partition {pid}: owner shard unavailable",
                )
        return repointed

    def defer_migration(self, pid: int, target: str, reason: str) -> None:
        """Queue a migration until ``pid``'s shard is available again."""
        self.pending_migrations.append((pid, target, reason))
        self._m["deferred-migration"].inc()
        self._event(
            self.network.scheduler.now, "deferred-migration",
            self.ownership.get(pid, "?"),
            f"partition {pid} -> {target} ({reason})",
        )

    def _drain_deferred(self) -> None:
        """Apply queued work whose partitions became actionable."""
        if not self.pending_failovers and not self.pending_migrations:
            return
        controller = self.controller
        still_f: List[Tuple[int, str]] = []
        for pid, failed in self.pending_failovers:
            if not self.can_act_on(pid):
                still_f.append((pid, failed))
                continue
            if failed in controller._states[pid].owners:
                controller.failover_partition(pid, failed)
            self.deferred_failovers_applied += 1
        self.pending_failovers = still_f
        still_m: List[Tuple[int, str, str]] = []
        for pid, target, reason in self.pending_migrations:
            if not self.can_act_on(pid):
                still_m.append((pid, target, reason))
                continue
            if self.migrator is not None:
                self.migrator.migrate(pid, target, reason=reason)
        self.pending_migrations = still_m

    # -- lease protocol --------------------------------------------------------
    def _tick(self) -> None:
        now = self.network.scheduler.now
        leader = self.shards[self.leader_name]
        if leader.alive:
            self._broadcast_lease(now)
            self._adopt_from_silent_followers(now)
        else:
            self._maybe_elect(now)
        self.network.scheduler.schedule(self.lease_interval_s, self._tick)

    def _broadcast_lease(self, now: float) -> None:
        for shard in self._by_id():
            if shard.name == self.leader_name:
                continue
            self._m["lease-renewal"].inc()
            self.channels[shard.name].send_to_switch(
                LeaseRenew(leader=self.leader_name, term=self.term, sent_at=now),
                on_acked=functools.partial(self._lease_acked, shard.name),
            )

    def _lease_acked(self, name: str) -> None:
        self._last_ack[name] = self.network.scheduler.now

    def _adopt_from_silent_followers(self, now: float) -> None:
        """Leader-side death detection: a follower that stopped acking
        lease renewals past the timeout — and whose replica really is
        down — has its partitions adopted.  The ack-staleness gate keeps
        detection emergent from message timing; the liveness check keeps
        a merely-browned-out follower from being robbed of partitions it
        still serves."""
        for shard in self._by_id():
            if shard.name == self.leader_name or shard.alive:
                continue
            if now - self._last_ack.get(shard.name, self._epoch) <= self.timeout_s:
                continue
            orphans = [
                pid for pid, owner in sorted(self.ownership.items())
                if owner == shard.name and pid not in self.in_transfer
            ]
            orphans += [
                pid for pid, target in sorted(self.in_transfer.items())
                if target == shard.name
            ]
            if orphans:
                self._event(
                    now, "follower-dead", shard.name,
                    f"no lease ack for {self.timeout_s:g}s; "
                    f"adopting {len(orphans)} partition(s)",
                )
                self._adopt(sorted(set(orphans)), now)

    def _maybe_elect(self, now: float) -> None:
        live = [s for s in self._by_id() if s.alive]
        if not live:
            return
        if not any(now - s.last_lease > self.timeout_s for s in live):
            return  # lease not stale yet: detection stays emergent
        self._become_leader(live[0].name, now)

    def _become_leader(self, name: str, now: float) -> None:
        old = self.leader_name
        self.term += 1
        self.leader_name = name
        shard = self.shards[name]
        shard.last_lease = now
        shard.term = self.term
        self._m["election"].inc()
        self._event(now, "election", name, f"term {self.term} replaces {old}")
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.record(
                now, TraceKind.SHARD_TAKEOVER, shard, node=name,
                detail=f"term {self.term} replaces {old}",
            )
        # The "up" endpoint is the leader *role*; it is alive again.
        for channel in self.channels.values():
            channel.set_endpoint_alive("up", True)
        self._adopt_orphans(now)
        self._broadcast_lease(now)

    def _adopt_orphans(self, now: float) -> None:
        orphans: List[int] = []
        for pid in sorted(self.ownership):
            target = self.in_transfer.get(pid)
            if target is not None:
                if not self.shards[target].alive:
                    del self.in_transfer[pid]
                    orphans.append(pid)
                continue
            if not self.shards[self.ownership[pid]].alive:
                orphans.append(pid)
        self._adopt(orphans, now)

    def _adopt(self, pids: List[int], now: float) -> None:
        """Re-derive ownership of ``pids`` over the live membership."""
        live = [s.name for s in self._by_id() if s.alive]
        if not live or not pids:
            return
        from repro.parallel.seeds import derive_seed

        self.generation += 1
        assignment: Dict[str, List[int]] = {}
        for pid in sorted(pids):
            target = live[
                derive_seed(self.seed, ("takeover", pid, self.generation)) % len(live)
            ]
            assignment.setdefault(target, []).append(pid)
        for target in sorted(assignment):
            chunk = assignment[target]
            if target == self.leader_name:
                self._m["adoption"].inc()
                self._event(
                    now, "adoption", target,
                    f"leader adopts partition(s) {chunk}",
                )
                self._apply_ownership(target, chunk)
            else:
                for pid in chunk:
                    self.in_transfer[pid] = target
                self._m["transfer"].inc()
                self._event(
                    now, "transfer", target,
                    f"ownership transfer of partition(s) {chunk}",
                )
                self.channels[target].send_to_switch(
                    OwnershipTransfer(
                        shard=target, partition_ids=tuple(chunk), term=self.term
                    )
                )

    def _apply_ownership(self, shard_name: str, pids: Sequence[int]) -> None:
        for pid in pids:
            self.ownership[pid] = shard_name
            self.in_transfer.pop(pid, None)
        self._drain_deferred()

    # -- message receive (the two channel endpoints) -----------------------------
    def _receive_at_shard(self, name: str, message: Message) -> None:
        shard = self.shards[name]
        if not shard.alive:
            return
        if isinstance(message, LeaseRenew):
            shard.last_lease = self.network.scheduler.now
            shard.term = max(shard.term, message.term)
        elif isinstance(message, OwnershipTransfer):
            # Handshake: adoption is complete only when this ack makes
            # it back to the leader (itself ARQ-reliable).
            self.channels[name].send_to_controller(
                OwnershipAck(
                    shard=name,
                    partition_ids=message.partition_ids,
                    term=message.term,
                )
            )

    def _receive_at_leader(self, name: str, message: Message) -> None:
        if not self.shards[self.leader_name].alive:
            return
        if isinstance(message, OwnershipAck):
            if message.term != self.term:
                return  # stale ack from a previous leadership
            pids = sorted(
                pid for pid in message.partition_ids
                if self.in_transfer.get(pid) == message.shard
            )
            if pids:
                self._m["transfer-ack"].inc()
                self._event(
                    self.network.scheduler.now, "transfer-ack", message.shard,
                    f"partition(s) {pids} adopted",
                )
                self._apply_ownership(message.shard, pids)

    # -- export -----------------------------------------------------------------
    def channel_counters(self) -> Dict[str, int]:
        """Aggregate ARQ counters over every shard channel."""
        totals: Dict[str, int] = {}
        for name in sorted(self.channels):
            for key, value in self.channels[name].counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def export(self) -> Dict[str, object]:
        """The ``control_plane`` metrics-document section."""
        owned: Dict[str, List[int]] = {name: [] for name in self.shards}
        for pid in sorted(self.ownership):
            owned[self.ownership[pid]].append(pid)
        migrations: List[Dict[str, object]] = []
        if self.migrator is not None:
            migrations = self.migrator.export()
        rebalancer = None
        if self.rebalancer is not None:
            rebalancer = self.rebalancer.export()
        return {
            "schema": "difane-control-plane/1",
            "n_shards": self.n_shards,
            "seed": self.seed,
            "leader": self.leader_name,
            "term": self.term,
            "shards": [
                {
                    "name": shard.name,
                    "alive": shard.alive,
                    "leader": shard.name == self.leader_name,
                    "partitions": owned[shard.name],
                }
                for shard in self._by_id()
            ],
            "in_transfer": len(self.in_transfer),
            "pending_failovers": len(self.pending_failovers),
            "pending_migrations": len(self.pending_migrations),
            "deferred_failovers_applied": self.deferred_failovers_applied,
            "events": list(self.events),
            "channel": self.channel_counters(),
            "migrations": migrations,
            "rebalancer": rebalancer,
        }

    def _event(self, now: float, event: str, shard: str, detail: str) -> None:
        self.events.append(
            {"time": round(now, 9), "event": event, "shard": shard, "detail": detail}
        )

    def __repr__(self) -> str:
        live = sum(1 for s in self.shards.values() if s.alive)
        return (
            f"<ShardedControlPlane {live}/{self.n_shards} shards, "
            f"leader={self.leader_name} term={self.term}>"
        )


@dataclass
class Migration:
    """One partition's two-phase move between authority switches."""

    pid: int
    source: str
    target: str
    reason: str
    started_at: float
    flipped_at: Optional[float] = None
    completed_at: Optional[float] = None
    phase: str = "install"
    awaiting: int = field(default=0, repr=False)
    retire_fragments: List[Rule] = field(default_factory=list, repr=False)
    deadline: object = field(default=None, repr=False)
    #: Install-watchdog progress marker (acks outstanding at last check).
    awaiting_at_check: int = field(default=-1, repr=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "partition": self.pid,
            "source": self.source,
            "target": self.target,
            "reason": self.reason,
            "phase": self.phase,
            "started_at": round(self.started_at, 9),
            "flipped_at": None if self.flipped_at is None else round(self.flipped_at, 9),
            "completed_at": (
                None if self.completed_at is None else round(self.completed_at, 9)
            ),
        }


class PartitionMigrator:
    """Two-phase online migration of partitions between authority switches.

    install-at-target → flip-redirects → retire-at-source, with the
    target joining the owner list before the flip and the source
    leaving it only *at* the flip — so at every event boundary the
    partition has live owners and
    :meth:`DifaneController.assert_all_partitions_owned` passes.
    Installs and retires travel as FlowMods over the per-switch ARQ
    channel when one is connected (the flip waits for every install
    ack), or apply immediately on the configuration-time path.
    """

    def __init__(self, controller, retire_grace_s: float = 0.01,
                 on_complete: Optional[Callable[[Migration], None]] = None):
        self.controller = controller
        self.network = controller.network
        self.retire_grace_s = retire_grace_s
        self.on_complete = on_complete
        #: In-flight migrations by partition id.
        self.active: Dict[int, Migration] = {}
        #: Finished migrations (phase "done" or "aborted"), in order.
        self.finished: List[Migration] = []
        registry = self.network.metrics
        self._m_phase = {
            phase: registry.counter("control_plane_migrations_total", phase=phase)
            for phase in ("started", "flipped", "completed", "aborted")
        }
        self._m_reason = {}
        self._registry = registry

    # -- public API ------------------------------------------------------------
    def migrate(self, pid: int, target: str, reason: str = "manual"
                ) -> Optional[Migration]:
        """Begin moving partition ``pid``'s primary to ``target``.

        Returns the :class:`Migration`, or ``None`` when the move is a
        no-op or impossible (already migrating, target is the primary,
        target dead or IGP-unreachable).
        """
        controller = self.controller
        state = controller._states.get(pid)
        if state is None or pid in self.active:
            return None
        if state.owners and state.owners[0] == target:
            return None
        if not self.network.switch_alive(target) or not controller._igp_reachable(target):
            return None
        if target not in controller.authority_switches:
            # Promote the spare into the pool (also purges any stale
            # fragments it kept from an earlier life as an authority).
            controller.reinstate_authority(target)
        else:
            # An existing authority may hold stale fragments from before
            # a kill window (its partitions were migrated away while it
            # was dead, so no retire FlowMods could reach it).  Left in
            # place they would shadow the fresh install below — purge
            # against the controller's installed records first.
            behaviour = self.network.maybe_node(target)
            if behaviour is not None and hasattr(behaviour, "purge_stale_authority_rules"):
                expected = []
                for other in controller._states.values():
                    expected.extend(other.installed.get(target, ()))
                behaviour.purge_stale_authority_rules(expected)
        now = self.network.scheduler.now
        # A partition can be fully unowned (every replica died and no
        # failover target was reachable): the migration is then a pure
        # adoption with nothing to retire.
        source = state.owners[0] if state.owners else "(none)"
        migration = Migration(
            pid=pid, source=source, target=target,
            reason=reason, started_at=now,
        )
        self.active[pid] = migration
        self._m_phase["started"].inc()
        self._count_reason(reason)
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.record(
                now, TraceKind.MIGRATE_START, state.partition, node=target,
                detail=f"partition {pid}: {migration.source}->{target} ({reason})",
            )
        if target in state.owners:
            # Already a backup: fragments are in place, flip directly.
            self._flip(migration)
            return migration
        fragments = [
            rule.derive(kind=RuleKind.AUTHORITY) for rule in state.partition.rules
        ]
        state.installed[target] = fragments
        state.owners.append(target)  # joins as backup: never unowned
        channel = controller.channels.get(target)
        if channel is None or not fragments:
            switch = controller._switch(target)
            for fragment in fragments:
                switch.install_rule(fragment)
                controller.control_messages += 1
            self._flip(migration)
            return migration
        migration.awaiting = len(fragments)
        # Install watchdog: a target killed mid-install never acks (its
        # channel deliveries are swallowed and drained), which would
        # otherwise pin the migration in "install" forever.
        migration.deadline = self.network.scheduler.schedule(
            RETIRE_TIMEOUT_S, self._install_check, migration
        )
        for fragment in fragments:
            controller.control_messages += 1
            channel.send_to_switch(
                FlowMod(switch=target, command=FlowModCommand.ADD, rule=fragment),
                on_acked=functools.partial(self._install_acked, migration),
            )
        return migration

    def export(self) -> List[Dict[str, object]]:
        """Finished migrations first, then in-flight ones, as dicts."""
        records = [m.as_dict() for m in self.finished]
        records += [self.active[pid].as_dict() for pid in sorted(self.active)]
        return records

    # -- phase machinery ---------------------------------------------------------
    def _install_acked(self, migration: Migration) -> None:
        if migration.phase != "install":
            return
        migration.awaiting -= 1
        if migration.awaiting == 0:
            self._flip(migration)

    def _install_check(self, migration: Migration) -> None:
        """Install watchdog: abort when the target died or acks stalled.

        Fires every ``RETIRE_TIMEOUT_S`` while installs are outstanding.
        A dead/unreachable target aborts immediately; a live target that
        made no ack progress over a whole period (retry budget exhausted
        on a faulty channel) aborts too, so the partition never stays
        pinned behind a migration that cannot finish.
        """
        if migration.phase != "install":
            return
        migration.deadline = None
        controller = self.controller
        state = controller._states[migration.pid]
        stalled = migration.awaiting == migration.awaiting_at_check
        if (
            stalled
            or migration.target not in state.owners
            or not self.network.switch_alive(migration.target)
            or not controller._igp_reachable(migration.target)
        ):
            self._abort(migration)
            return
        migration.awaiting_at_check = migration.awaiting
        migration.deadline = self.network.scheduler.schedule(
            RETIRE_TIMEOUT_S, self._install_check, migration
        )

    def _flip(self, migration: Migration) -> None:
        """Atomically promote the target: one event moves the load
        history, rewrites the owner list, and re-points every ingress
        partition rule — no packet window sees a half-flipped state."""
        controller = self.controller
        state = controller._states[migration.pid]
        if migration.phase != "install":
            return
        if (
            migration.target not in state.owners
            or not self.network.switch_alive(migration.target)
            or not controller._igp_reachable(migration.target)
        ):
            # The target was lost mid-install (failover or chaos kill).
            self._abort(migration)
            return
        if migration.deadline is not None:
            migration.deadline.cancel()
            migration.deadline = None
        now = self.network.scheduler.now
        source = migration.source
        if state.owners and state.owners[0] == source:
            # Move the load history so post-migration measurements stay
            # meaningful and transparency counters never double-count.
            old_fragments = state.installed.get(source, [])
            new_fragments = state.installed.get(migration.target, [])
            for old, new in zip(old_fragments, new_fragments):
                new.packet_count += old.packet_count
                new.byte_count += old.byte_count
                old.packet_count = 0
                old.byte_count = 0
        state.owners = [migration.target] + [
            owner for owner in state.owners
            if owner not in (migration.target, source)
        ]
        migration.retire_fragments = state.installed.pop(source, [])
        controller._repoint_partition_rules(state)
        migration.phase = "retire"
        migration.flipped_at = now
        self._m_phase["flipped"].inc()
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.record(
                now, TraceKind.MIGRATE_FLIP, state.partition, node=migration.target,
                detail=f"partition {migration.pid}: primary now {migration.target}",
            )
        if migration.retire_fragments and self.network.switch_alive(source):
            self.network.scheduler.schedule(
                self.retire_grace_s, self._retire, migration
            )
        else:
            # Nothing to withdraw (or the source is dead: its stale
            # fragments are purged if it ever rejoins the pool).
            self._complete(migration)

    def _retire(self, migration: Migration) -> None:
        controller = self.controller
        source = migration.source
        if migration.phase != "retire":
            return
        if not self.network.switch_alive(source):
            self._complete(migration)
            return
        channel = controller.channels.get(source)
        if channel is None:
            switch = controller._switch(source)
            for fragment in migration.retire_fragments:
                switch.uninstall_rule(fragment)
                controller.control_messages += 1
            self._complete(migration)
            return
        migration.awaiting = len(migration.retire_fragments)
        migration.deadline = self.network.scheduler.schedule(
            RETIRE_TIMEOUT_S, self._complete, migration
        )
        for fragment in migration.retire_fragments:
            controller.control_messages += 1
            channel.send_to_switch(
                FlowMod(switch=source, command=FlowModCommand.DELETE, rule=fragment),
                on_acked=functools.partial(self._retire_acked, migration),
            )

    def _retire_acked(self, migration: Migration) -> None:
        if migration.phase != "retire":
            return
        migration.awaiting -= 1
        if migration.awaiting == 0:
            self._complete(migration)

    def _complete(self, migration: Migration) -> None:
        if migration.pid not in self.active:
            return
        del self.active[migration.pid]
        if migration.deadline is not None:
            migration.deadline.cancel()
            migration.deadline = None
        now = self.network.scheduler.now
        migration.phase = "done"
        migration.completed_at = now
        self.finished.append(migration)
        self._m_phase["completed"].inc()
        tracer = self.network.tracer
        if tracer.enabled:
            state = self.controller._states[migration.pid]
            tracer.record(
                now, TraceKind.MIGRATE_DONE, state.partition, node=migration.target,
                detail=f"partition {migration.pid}: source {migration.source} retired",
            )
        if self.on_complete is not None:
            self.on_complete(migration)

    def _abort(self, migration: Migration) -> None:
        controller = self.controller
        state = controller._states[migration.pid]
        if migration.deadline is not None:
            migration.deadline.cancel()
            migration.deadline = None
        if migration.target in state.owners and state.owners[:1] != [migration.target]:
            state.owners.remove(migration.target)
            state.installed.pop(migration.target, None)
        del self.active[migration.pid]
        migration.phase = "aborted"
        migration.completed_at = self.network.scheduler.now
        self.finished.append(migration)
        self._m_phase["aborted"].inc()

    def _count_reason(self, reason: str) -> None:
        counter = self._m_reason.get(reason)
        if counter is None:
            counter = self._registry.counter(
                "control_plane_migration_reasons_total", reason=reason
            )
            self._m_reason[reason] = counter
        counter.inc()


class Rebalancer:
    """Telemetry-driven self-healing: consume health findings, migrate.

    Every ``interval_s`` of simulated time the rebalancer snapshots a
    synthetic telemetry window (per-switch redirect / degraded-packet
    deltas, in the exact counter-key format the real recorder exports)
    and runs :func:`repro.obs.health.evaluate_telemetry` over the
    accumulated series.  Findings in the newest window drive action:

    * **degraded-mode** (critical) — some partition lost every live
      owner; each orphan is migrated (reason ``"orphan"``) to the
      least-loaded live candidate among authorities and spares.
    * **authority-imbalance** (warning) — greedy repack of partitions
      by window load over the live authorities, pulling in spares one
      at a time while the projected Jain fairness stays below the
      detector threshold; at most ``max_moves_per_cycle`` migrations
      (reason ``"hot"``) per firing, then ``cooldown_cycles`` quiet
      cycles so in-flight moves can land before re-evaluating.

    When a :class:`ShardedControlPlane` is attached, actions on a
    partition whose owner shard is unavailable are deferred to it.
    """

    def __init__(
        self,
        controller,
        migrator: PartitionMigrator,
        plane: Optional[ShardedControlPlane] = None,
        interval_s: float = 0.02,
        spares: Sequence[str] = (),
        fairness_threshold: float = IMBALANCE_FAIRNESS_THRESHOLD,
        max_moves_per_cycle: int = 2,
        cooldown_cycles: int = 2,
    ):
        self.controller = controller
        self.network = controller.network
        self.migrator = migrator
        self.plane = plane
        self.interval_s = interval_s
        self.spares = list(spares)
        self.fairness_threshold = fairness_threshold
        self.max_moves_per_cycle = max_moves_per_cycle
        self.cooldown_cycles = cooldown_cycles
        #: Synthetic telemetry windows (health-detector input format).
        self.windows: List[Dict[str, object]] = []
        #: Per-cycle record: fairness and what was done.
        self.history: List[Dict[str, object]] = []
        #: Actions taken/deferred, in order.
        self.actions: List[Dict[str, object]] = []
        self._cooldown = 0
        self._last_switch: Dict[Tuple[str, str], int] = {}
        self._cumulative_redirects: Dict[str, int] = {}
        self._last_partition: Dict[int, int] = {}
        self._window_redirects: Dict[str, float] = {}
        registry = self.network.metrics
        self._m = {
            event: registry.counter("control_plane_rebalance_total", event=event)
            for event in ("cycle", "hot-move", "orphan-heal", "deferred")
        }
        self._started = False

    _SWITCH_STATS = (
        ("redirects_handled", "difane_redirects_handled_total"),
        ("degraded_packets", "difane_degraded_packets_total"),
    )

    def start(self) -> None:
        """Take the load baseline and begin the evaluation cadence."""
        for name in self.network.topology.switches():
            behaviour = self.network.node(name)
            for attr, _ in self._SWITCH_STATS:
                self._last_switch[(name, attr)] = getattr(behaviour, attr, 0)
        self._last_partition = dict(self.controller.partition_loads())
        self._started = True
        self.network.scheduler.schedule(self.interval_s, self._cycle)

    # -- the evaluation loop -----------------------------------------------------
    def _cycle(self) -> None:
        now = self.network.scheduler.now
        self._m["cycle"].inc()
        index = len(self.windows)
        counters: Dict[str, float] = {}
        self._window_redirects = {}
        for name in self.network.topology.switches():
            behaviour = self.network.node(name)
            for attr, metric in self._SWITCH_STATS:
                current = getattr(behaviour, attr, 0)
                delta = current - self._last_switch.get((name, attr), 0)
                self._last_switch[(name, attr)] = current
                if attr == "redirects_handled":
                    self._cumulative_redirects[name] = current
                    if delta:
                        self._window_redirects[name] = float(delta)
                if delta:
                    counters[f"{metric}{{switch={name}}}"] = float(delta)
        window = {
            "index": index,
            "start": round(now - self.interval_s, 9),
            "end": round(now, 9),
            "counters": counters,
        }
        self.windows.append(window)
        findings = [
            finding
            for finding in evaluate_telemetry({"windows": self.windows})
            if finding["window"] == index and finding["severity"] != "info"
        ]
        loads = self.controller.partition_loads()
        window_loads = {
            pid: max(0, loads.get(pid, 0) - self._last_partition.get(pid, 0))
            for pid in loads
        }
        self._last_partition = dict(loads)

        acted: List[str] = []
        if any(f["detector"] == "degraded-mode" for f in findings):
            acted += self._heal_orphans(now)
        if self._cooldown > 0:
            self._cooldown -= 1
        elif (
            any(f["detector"] == "authority-imbalance" for f in findings)
            and not self.migrator.active
        ):
            moves = self._plan_repack(window_loads)
            for pid, target in moves[: self.max_moves_per_cycle]:
                if self._request(pid, target, "hot", now):
                    acted.append(f"hot:{pid}->{target}")
            if moves:
                self._cooldown = self.cooldown_cycles
        self.history.append(
            {
                "index": index,
                "time": round(now, 9),
                "fairness": round(self._window_fairness(), 6),
                "findings": sorted(f["detector"] for f in findings),
                "acted": acted,
            }
        )
        self.network.scheduler.schedule(self.interval_s, self._cycle)

    def _window_fairness(self) -> float:
        """Jain fairness of this window's redirect load, computed over
        the same denominator the health detector uses (switches with any
        cumulative redirect work)."""
        authorities = sorted(
            name for name, total in self._cumulative_redirects.items() if total
        )
        if len(authorities) < 2:
            return 1.0
        return jain_fairness(
            [self._window_redirects.get(name, 0.0) for name in authorities]
        )

    # -- orphan healing ------------------------------------------------------------
    def _heal_orphans(self, now: float) -> List[str]:
        controller = self.controller
        healed: List[str] = []
        for pid in sorted(controller._states):
            state = controller._states[pid]
            if any(
                self.network.switch_alive(owner) and controller._igp_reachable(owner)
                for owner in state.owners
            ):
                continue
            target = self._pick_target(exclude=set(state.owners))
            if target is None:
                continue
            if self._request(pid, target, "orphan", now):
                healed.append(f"orphan:{pid}->{target}")
        return healed

    def _pick_target(self, exclude: Set[str]) -> Optional[str]:
        controller = self.controller
        candidates = [
            name
            for name in dict.fromkeys(
                list(controller.authority_switches) + self.spares
            )
            if name not in exclude
            and self.network.switch_alive(name)
            and controller._igp_reachable(name)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda name: (self._window_redirects.get(name, 0.0), name),
        )

    # -- hot repacking ---------------------------------------------------------------
    def _plan_repack(self, window_loads: Dict[int, float]) -> List[Tuple[int, str]]:
        """Greedy repack by measured window load; widen with spares while
        the projected fairness stays under the detector threshold."""
        controller = self.controller
        candidates = [
            name for name in controller.authority_switches
            if self.network.switch_alive(name) and controller._igp_reachable(name)
        ]
        if not candidates:
            return []
        assignment, projected = self._pack(window_loads, candidates)
        spares_left = [
            name for name in self.spares
            if name not in candidates
            and self.network.switch_alive(name)
            and controller._igp_reachable(name)
        ]
        while projected < self.fairness_threshold and spares_left:
            candidates = candidates + [spares_left.pop(0)]
            assignment, projected = self._pack(window_loads, candidates)
        # Only move when the repack genuinely improves on the current
        # assignment: the detector can keep firing on a load profile no
        # repack can fix (e.g. an inherently dominant partition, or a
        # vacated authority pinning the fairness denominator), and
        # re-shuffling partitions then is pure thrash.
        current = {name: 0.0 for name in candidates}
        for pid, load in window_loads.items():
            owners = controller._states[pid].owners
            if owners and owners[0] in current:
                current[owners[0]] += max(load, 1.0)
        if projected <= jain_fairness(list(current.values())) + 1e-9:
            return []
        order = sorted(assignment, key=lambda pid: (-window_loads.get(pid, 0.0), pid))
        return [
            (pid, assignment[pid])
            for pid in order
            if assignment[pid] != controller._states[pid].owners[0]
        ]

    @staticmethod
    def _pack(window_loads: Dict[int, float], candidates: List[str]
              ) -> Tuple[Dict[int, str], float]:
        packed = {name: 0.0 for name in candidates}
        assignment: Dict[int, str] = {}
        for pid in sorted(window_loads, key=lambda p: (-window_loads[p], p)):
            best = min(sorted(packed), key=lambda name: packed[name])
            assignment[pid] = best
            packed[best] += max(window_loads[pid], 1.0)
        return assignment, jain_fairness(list(packed.values()))

    # -- action routing ---------------------------------------------------------------
    def _request(self, pid: int, target: str, reason: str, now: float) -> bool:
        if self.plane is not None and not self.plane.can_act_on(pid):
            self.plane.defer_migration(pid, target, reason)
            self._m["deferred"].inc()
            self.actions.append(
                {
                    "time": round(now, 9), "partition": pid, "target": target,
                    "reason": reason, "outcome": "deferred",
                }
            )
            return False
        migration = self.migrator.migrate(pid, target, reason=reason)
        if migration is None:
            return False
        self._m["hot-move" if reason == "hot" else "orphan-heal"].inc()
        self.actions.append(
            {
                "time": round(now, 9), "partition": pid, "target": target,
                "reason": reason, "outcome": "migrating",
            }
        )
        return True

    def export(self) -> Dict[str, object]:
        """The ``rebalancer`` slice of the control-plane section."""
        return {
            "cycles": len(self.history),
            "spares": list(self.spares),
            "history": list(self.history),
            "actions": list(self.actions),
        }


def attach_sharded_control_plane(
    controller,
    n_shards: int = 2,
    seed: int = 0,
    lease_interval_s: float = 0.02,
    miss_threshold: int = 3,
    latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    fault_model: Optional[ChannelFaultModel] = None,
    max_retries: Optional[int] = None,
    spares: Sequence[str] = (),
    rebalance: bool = True,
    rebalance_interval_s: float = 0.02,
    retire_grace_s: float = 0.01,
    max_moves_per_cycle: int = 2,
    cooldown_cycles: int = 2,
    on_migration_complete: Optional[Callable[[Migration], None]] = None,
) -> ShardedControlPlane:
    """Wire shards + migrator (+ optional rebalancer) onto a controller.

    Call after ``install_policy`` (ownership derivation needs the
    partitions).  Starts the lease loop and, when ``rebalance`` is on,
    the health-driven evaluation cadence.  Returns the plane; the
    migrator and rebalancer hang off it as attributes.
    """
    plane = ShardedControlPlane(
        controller,
        n_shards=n_shards,
        seed=seed,
        lease_interval_s=lease_interval_s,
        miss_threshold=miss_threshold,
        latency_s=latency_s,
        fault_model=fault_model,
        max_retries=max_retries,
    )
    migrator = PartitionMigrator(
        controller, retire_grace_s=retire_grace_s, on_complete=on_migration_complete
    )
    plane.migrator = migrator
    if rebalance:
        plane.rebalancer = Rebalancer(
            controller,
            migrator,
            plane=plane,
            interval_s=rebalance_interval_s,
            spares=spares,
            max_moves_per_cycle=max_moves_per_cycle,
            cooldown_cycles=cooldown_cycles,
        )
    plane.start()
    if plane.rebalancer is not None:
        plane.rebalancer.start()
    return plane
