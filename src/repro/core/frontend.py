"""The operator-facing OpenFlow frontend: DIFANE as one big switch.

DIFANE's management story is that the *operator's* controller keeps
speaking plain OpenFlow — install a rule, delete a rule, read counters —
while DIFANE handles distribution underneath.  :class:`DifaneFrontend`
implements that contract over the message vocabulary in
:mod:`repro.openflow.messages`:

* ``FlowMod ADD``      → partition-aware insert across authority switches;
* ``FlowMod DELETE``   → withdraw the matching policy rules everywhere;
* ``FlowMod MODIFY``   → atomic replace (delete + add at one priority);
* ``StatsRequest``     → per-policy-rule counters aggregated from every
  cache/authority fragment in the network (exactly what a single switch
  would report);
* ``BarrierRequest``   → ordered acknowledgement (operations here apply
  synchronously, so the barrier is an ordering receipt).

The frontend is deliberately synchronous — the latency-modelled path is
the *data plane*; management-plane messaging latency can be layered with
:class:`~repro.openflow.channel.ControlChannel` when an experiment needs
it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller import DifaneController
from repro.flowspace.rule import Rule
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    Message,
    StatsReply,
    StatsRequest,
)

__all__ = ["DifaneFrontend"]

#: The virtual switch name the frontend answers as.
VIRTUAL_SWITCH = "difane"


class DifaneFrontend:
    """Translate operator OpenFlow messages into DIFANE operations."""

    def __init__(self, controller: DifaneController):
        self.controller = controller
        self.flow_mods_handled = 0
        self.stats_requests_handled = 0
        self.barriers_handled = 0
        self.errors = 0

    # -- the single entry point ------------------------------------------------
    def handle_message(self, message: Message) -> Optional[Message]:
        """Process one operator message; returns the reply when one exists.

        Unknown message types return ``None`` (and count as errors), as a
        real switch would send an OFPT_ERROR.
        """
        if isinstance(message, FlowMod):
            return self._handle_flow_mod(message)
        if isinstance(message, StatsRequest):
            return self._handle_stats(message)
        if isinstance(message, BarrierRequest):
            return self._handle_barrier(message)
        self.errors += 1
        return None

    # -- flow table management ----------------------------------------------------
    def _handle_flow_mod(self, message: FlowMod) -> Optional[Message]:
        self.flow_mods_handled += 1
        if message.command is FlowModCommand.ADD:
            if message.rule is None:
                self.errors += 1
                return None
            self.controller.insert_rule(message.rule)
            return None
        if message.command is FlowModCommand.DELETE:
            for rule in self._rules_matching(message):
                self.controller.delete_rule(rule)
            return None
        if message.command is FlowModCommand.MODIFY:
            if message.rule is None:
                self.errors += 1
                return None
            # OpenFlow MODIFY: replace actions of rules with the same
            # match; if none exist, behaves like ADD.
            replaced = False
            for rule in self._rules_matching(message, match=message.rule.match):
                self.controller.delete_rule(rule)
                replacement = Rule(
                    match=rule.match,
                    priority=rule.priority,
                    actions=message.rule.actions,
                )
                self.controller.insert_rule(replacement)
                replaced = True
            if not replaced:
                self.controller.insert_rule(message.rule)
            return None
        self.errors += 1
        return None

    def _rules_matching(self, message: FlowMod, match=None) -> List[Rule]:
        """Policy rules whose match equals the FlowMod's target match."""
        target = match if match is not None else message.match
        if target is None and message.rule is not None:
            target = message.rule.match
        if target is None:
            return []
        return [
            rule for rule in list(self.controller.policy) if rule.match == target
        ]

    # -- statistics -------------------------------------------------------------------
    def _handle_stats(self, message: StatsRequest) -> StatsReply:
        self.stats_requests_handled += 1
        counters = self.controller.collect_policy_counters()
        entries = []
        for rule in self.controller.policy:
            if message.match is not None and rule.match != message.match:
                continue
            snapshot = counters.get(rule)
            packets = snapshot.packets if snapshot else 0
            size = snapshot.bytes if snapshot else 0
            entries.append((rule, packets, size))
        reply = StatsReply(switch=VIRTUAL_SWITCH, entries=entries)
        return reply

    # -- barriers ------------------------------------------------------------------------
    def _handle_barrier(self, message: BarrierRequest) -> BarrierReply:
        self.barriers_handled += 1
        reply = BarrierReply(switch=VIRTUAL_SWITCH)
        reply.request_xid = message.xid
        return reply

    def __repr__(self) -> str:
        return (
            f"<DifaneFrontend flow_mods={self.flow_mods_handled} "
            f"stats={self.stats_requests_handled} errors={self.errors}>"
        )
