"""Independent wildcard cache-rule generation (DIFANE paper §3.2).

Caching wildcard rules is the subtle part of DIFANE.  Overlapping rules
carry priorities, so installing the rule a packet hit — verbatim — at an
ingress switch would steal the overlap region from every higher-priority
rule that is *not* cached.  DIFANE's answer: the authority switch installs
the matched rule **clipped to the region where it actually wins**, i.e.
its match minus every higher-priority overlapping match.  Rules so clipped
are *independent*: win regions of distinct rules are disjoint by
construction, so any subset of them can be cached, in any priority order,
without changing the policy's semantics.

A win region may decompose into several ternary strings.  Installing all
of them for one miss could be expensive, so — like DIFANE — we install the
fragment containing the packet that missed (plus optionally a bounded
number of siblings); later misses in other fragments trigger their own
installs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.flowspace.headerspace import HeaderSpace
from repro.flowspace.rule import Match, Rule, RuleKind

__all__ = [
    "generate_cache_rule",
    "generate_cache_rules",
    "win_region",
    "win_fragment",
    "WinRegionTooLarge",
]


class WinRegionTooLarge(Exception):
    """Raised when a win-region decomposition exceeds its member budget.

    Full decompositions can blow up exponentially in the number of
    higher-priority overlaps; callers that only *optionally* want the full
    set (prefetching) catch this and fall back to the single
    packet-containing fragment from :func:`win_fragment`.
    """


def win_region(
    rules: Sequence[Rule],
    target: Rule,
    max_members: Optional[int] = None,
) -> HeaderSpace:
    """The region where ``target`` wins a lookup against ``rules``.

    ``rules`` must be in lookup (priority) order and contain ``target``.
    The result is ``target``'s match minus every higher-priority
    overlapping match — possibly empty when the rule is shadowed.
    ``max_members`` bounds the intermediate decomposition size
    (:class:`WinRegionTooLarge` beyond it).
    """
    space = HeaderSpace.of(target.match.ternary)
    for rule in rules:
        if rule is target:
            return space
        if rule.match.intersects(target.match):
            space = space.subtract(rule.match.ternary)
            if max_members is not None and len(space) > max_members:
                raise WinRegionTooLarge(
                    f"win region of rule #{target.rule_id} exceeded "
                    f"{max_members} fragments"
                )
            if space.is_empty():
                # Shadowed within this table; nothing to win.
                return space
    raise ValueError("target rule is not present in the rule sequence")


def win_fragment(rules: Sequence[Rule], target: Rule, packet_bits: int):
    """The single win-region fragment of ``target`` containing the packet.

    Walks the higher-priority overlapping rules once, subtracting each and
    keeping only the piece containing the packet — **O(overlaps × width)**
    instead of the exponential full decomposition, which is what lets an
    authority switch generate a cache rule per miss at line rate.  Returns
    a :class:`~repro.flowspace.ternary.Ternary`, or ``None`` when the
    packet is not actually won by ``target``.
    """
    if not target.match.matches_bits(packet_bits):
        return None
    region = target.match.ternary
    for rule in rules:
        if rule is target:
            return region
        if rule.match.matches_bits(packet_bits):
            # A higher-priority rule matches the packet: target did not win.
            return None
        if region.intersects(rule.match.ternary):
            containing = None
            for piece in region.subtract(rule.match.ternary):
                if piece.matches(packet_bits):
                    containing = piece
                    break
            if containing is None:
                return None
            region = containing
    raise ValueError("target rule is not present in the rule sequence")


def generate_cache_rule(
    rules: Sequence[Rule],
    matched_rule: Rule,
    packet_bits: int,
) -> Optional[Rule]:
    """The independent cache rule covering the packet that just missed.

    Parameters
    ----------
    rules:
        The authority switch's rules in lookup order (the clipped rules of
        the partitions it owns).
    matched_rule:
        The rule the redirected packet hit (must be the lookup winner).
    packet_bits:
        The packed header of the packet.

    Returns
    -------
    Rule or None
        A :attr:`RuleKind.CACHE` rule whose match contains the packet and
        lies entirely inside ``matched_rule``'s win region, carrying the
        matched rule's actions; ``None`` if the packet is outside the win
        region (which indicates the caller passed a non-winning rule).
    """
    fragment = win_fragment(rules, matched_rule, packet_bits)
    if fragment is None:
        return None
    return matched_rule.derive(
        match=Match(matched_rule.match.layout, fragment),
        kind=RuleKind.CACHE,
    )


def generate_cache_rules(
    rules: Sequence[Rule],
    matched_rule: Rule,
    packet_bits: Optional[int] = None,
    max_fragments: Optional[int] = None,
    max_members: Optional[int] = None,
) -> List[Rule]:
    """All independent cache fragments of ``matched_rule``'s win region.

    When ``packet_bits`` is given, the fragment containing the packet is
    listed first (it must be installed; the rest are optional prefetch).
    ``max_fragments`` bounds the list — DIFANE keeps per-miss install cost
    constant this way.  ``max_members`` bounds the decomposition work
    (raising :class:`WinRegionTooLarge`).
    """
    region = win_region(rules, matched_rule, max_members=max_members)
    fragments = list(region.members)
    # Packet-containing fragment first (it must be installed), then
    # siblings smallest-first: small fragments hug the higher-priority
    # rules' boundaries, which is where clustered traffic lands next.
    if packet_bits is not None:
        fragments.sort(
            key=lambda f: (0 if f.matches(packet_bits) else 1, f.wildcard_bits())
        )
    if max_fragments is not None:
        fragments = fragments[:max_fragments]
    return [
        matched_rule.derive(
            match=Match(matched_rule.match.layout, fragment),
            kind=RuleKind.CACHE,
        )
        for fragment in fragments
    ]
