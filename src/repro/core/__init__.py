"""DIFANE core: the paper's contribution.

* :mod:`repro.core.partition` — decision-tree flow-space partitioning
  (paper §3): cut the header space into hyper-rectangles, minimizing rule
  splits and balancing load, and clip the policy rules into each partition.
* :mod:`repro.core.cachegen` — independent wildcard cache-rule generation
  (paper §3.2): given the rule a redirected packet hit at an authority
  switch, produce a cache rule that can be installed alone at the ingress
  switch without stealing traffic from higher-priority rules.
* :mod:`repro.core.authority` / :mod:`repro.core.ingress` — the DIFANE
  switch behaviour (one class: every DIFANE switch can play both roles).
* :mod:`repro.core.controller` — the proactive DIFANE controller:
  partition distribution, policy changes, topology changes, host mobility,
  authority failover (paper §4).
* :mod:`repro.core.placement` — authority-switch placement strategies.
"""

from repro.core.partition import (
    Partition,
    PartitionResult,
    partition_policy,
    assign_partitions,
    build_partition_rules,
)
from repro.core.cachegen import generate_cache_rule, generate_cache_rules
from repro.core.authority import DifaneSwitch
from repro.core.controller import (
    DifaneController,
    DifaneNetwork,
    HeartbeatMonitor,
    PartitionInvariantError,
)
from repro.core.placement import choose_authority_switches
from repro.core.optimize import prune_shadowed_rules, shadow_report
from repro.core.dynamics import ChurnEvent, ChurnWorkload
from repro.core.frontend import DifaneFrontend

__all__ = [
    "Partition",
    "PartitionResult",
    "partition_policy",
    "assign_partitions",
    "build_partition_rules",
    "generate_cache_rule",
    "generate_cache_rules",
    "DifaneSwitch",
    "DifaneController",
    "DifaneNetwork",
    "HeartbeatMonitor",
    "PartitionInvariantError",
    "choose_authority_switches",
    "prune_shadowed_rules",
    "shadow_report",
    "ChurnEvent",
    "ChurnWorkload",
    "DifaneFrontend",
]
