"""The DIFANE switch behaviour.

One class plays every role the paper gives a switch, because DIFANE's
architecture deliberately blurs them:

* **ingress** — first classification point for packets entering from a
  host: cache rules, then (local) authority rules, then partition rules;
* **transit** — encapsulated packets are forwarded toward their tunnel
  destination without reclassification;
* **authority** — packets tunnelled *to this switch* by a partition rule
  are matched against the authority rules, forwarded on toward their real
  destination (so even the first packet of a flow never waits), and a
  cache-install message is sent back to the ingress switch — entirely in
  the data plane, no controller involvement.

The authority miss path is capacity-bounded by a
:class:`~repro.net.events.ServiceStation` (``redirect_rate``): the paper's
prototype sustains ≈800 K single-packet flow redirects per second per
authority switch, and that queue is what the throughput experiments
saturate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.flowspace.action import Drop, Forward, SetField
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule, RuleKind
from repro.core.cachegen import (
    WinRegionTooLarge,
    generate_cache_rule,
    generate_cache_rules,
)
from repro.net.events import ServiceStation
from repro.obs.qos import current_qos
from repro.obs.registry import NULL_METRIC
from repro.obs.trace import TraceKind
from repro.openflow.messages import (
    FlowMod,
    FlowModCommand,
    Heartbeat,
    Message,
    PacketIn,
    PacketOut,
)
from repro.switch.cache import CacheManager, EvictionPolicy
from repro.switch.pipeline import DifanePipeline, PipelineStage
from repro.switch.switch import DataPlaneSwitch

__all__ = ["DifaneSwitch"]

#: Calibrated authority-switch redirect capacity (single-packet flows/s).
#: Matches the headline number measured on the paper's kernel prototype.
DEFAULT_REDIRECT_RATE = 800_000.0


class DifaneSwitch(DataPlaneSwitch):
    """A switch running the DIFANE data-plane logic.

    Parameters
    ----------
    name:
        Topology node name.
    layout:
        Header layout of the installed rules.
    cache_capacity:
        Ingress cache size in TCAM entries (the cache experiments sweep
        this).  0 disables caching — every flow redirects forever.
    redirect_rate:
        Authority-path capacity in redirected packets/second; ``None``
        removes the bound (pure-semantics tests).
    redirect_queue:
        Redirect packets that may queue before tail drop.
    eviction / idle_timeout / hard_timeout:
        Cache management knobs (see :class:`CacheManager`).
    install_latency_s:
        Extra latency for the in-band cache-install message beyond the
        routed path delay (models TCAM write time at the ingress switch).
    prefetch_fragments:
        Cache fragments installed per miss.  1 (the paper's behaviour)
        installs just the fragment covering the missed packet; higher
        values also push sibling win-region fragments — a prefetch
        extension evaluated by the ablation bench.  Decompositions that
        would exceed the budget fall back to the single fragment.
    engine:
        Match-engine backend for the pipeline's TCAM regions (see
        :mod:`repro.flowspace.engine`); ``None`` uses the process default.
    """

    #: Per-switch statistics mirrored into the metrics registry as
    #: ``difane_<stat>_total{switch=...}`` counters.
    _MIRRORED_STATS = (
        "cache_hits", "authority_hits", "redirects_out",
        "redirects_handled", "cache_installs_sent",
        "cache_installs_received", "failovers", "unmatched",
        "degraded_packets",
    )

    def __init__(
        self,
        name: str,
        layout: HeaderLayout,
        cache_capacity: int = 1024,
        redirect_rate: Optional[float] = DEFAULT_REDIRECT_RATE,
        redirect_queue: int = 512,
        eviction: EvictionPolicy = EvictionPolicy.LRU,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
        install_latency_s: float = 50e-6,
        processing_rate: Optional[float] = None,
        forwarding_delay_s: float = 0.0,
        prefetch_fragments: int = 1,
        engine=None,
        cache_options: Optional[dict] = None,
    ):
        if prefetch_fragments < 1:
            raise ValueError("prefetch_fragments must be >= 1")
        super().__init__(
            name,
            processing_rate=processing_rate,
            forwarding_delay_s=forwarding_delay_s,
        )
        self.layout = layout
        self.pipeline = DifanePipeline(layout, engine=engine)
        self.cache = CacheManager(
            self.pipeline.cache,
            capacity=cache_capacity,
            policy=eviction,
            default_idle_timeout=idle_timeout,
            default_hard_timeout=hard_timeout,
            **(cache_options or {}),
        )
        self.redirect_rate = redirect_rate
        self.redirect_queue = redirect_queue
        self.install_latency_s = install_latency_s
        self.prefetch_fragments = prefetch_fragments
        self._redirect_station: Optional[ServiceStation] = None
        #: Control session to the DIFANE controller; ``None`` until the
        #: controller wires a control plane (see
        #: :meth:`DifaneController.connect_control_plane`).  With a channel
        #: attached, orphaned-partition packets degrade to a NOX-style
        #: packet-in instead of being dropped.
        self.control_channel = None
        self._heartbeat_interval: Optional[float] = None
        self._beat = 0
        # Statistics the experiments read.
        self.cache_hits = 0
        self.authority_hits = 0
        self.redirects_out = 0
        self.redirects_handled = 0
        self.redirects_dropped = 0
        #: Redirects refused by QoS admission control (unprotected classes
        #: shed while the redirect queue is above the threshold).  Not in
        #: ``_MIRRORED_STATS`` — the per-class ``qos_shed_total`` counters
        #: carry it to the registry, and only when a QoS policy is active.
        self.redirects_shed = 0
        self.cache_installs_sent = 0
        #: In-band install messages that carried more than one sibling
        #: fragment (dependency-aware batching at prefetch > 1).
        self.cache_install_batches_sent = 0
        self.cache_installs_received = 0
        self.failovers = 0
        self.unmatched = 0
        self.degraded_packets = 0
        self.heartbeats_sent = 0
        #: Registry children keyed by statistic name; null until
        #: attach() binds the network's registry (keeps directly-driven
        #: switches working in unit tests).
        self._m: dict = {stat: NULL_METRIC for stat in self._MIRRORED_STATS}
        #: QoS wiring — bound in attach() when a policy is installed;
        #: ``None``/empty otherwise so the hot path stays a cheap test.
        self._qos = None
        self._qc: dict = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, network) -> None:
        """Wire the redirect-capacity queue when the network binds us."""
        super().attach(network)
        # Mirror the per-switch statistics into the run's registry so
        # experiments read one canonical snapshot instead of scraping
        # switch attributes.  Children are bound once; increments are
        # a single += on the hot path.
        registry = network.metrics
        for stat in self._MIRRORED_STATS:
            self._m[stat] = registry.counter(f"difane_{stat}_total", switch=self.name)
        # Cache occupancy and (cumulative) evictions are levels, not
        # counters — they go out as telemetry probe samples so the
        # registry stays gauge-free (gauge max-merge would break the
        # --jobs N byte-identity guarantee).  Probes live on the
        # scheduler, so a later simulation in the same run context never
        # samples this switch's state.
        telemetry = getattr(network, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            network.scheduler.add_probe(self._telemetry_probe)
        if self.redirect_rate is not None:
            self._redirect_station = ServiceStation(
                network.scheduler,
                rate=self.redirect_rate,
                on_complete=self._handle_redirect,
                queue_limit=self.redirect_queue,
                on_drop=self._redirect_overload,
                name=f"{self.name}.redirect",
                metrics=network.metrics,
            )
        # Per-class QoS wiring: bind one counter per (statistic, class) so
        # hot-path increments are dict lookups, apply the cache-residency
        # knobs, and remember the policy for classification.  All of it is
        # gated on a policy being installed — with QoS off (the default) no
        # qos_* counter is ever bound and the goldens stay byte-identical.
        policy = current_qos()
        self._qos = policy
        if policy is not None:
            names = policy.classifier.class_names()
            for cls in names:
                for stat in ("cache_hits", "authority_hits", "redirects", "shed"):
                    self._qc[(stat, cls)] = registry.counter(
                        f"qos_{stat}_total", flow_class=cls, switch=self.name
                    )
            weights = policy.class_weights()
            if weights:
                self.cache.set_class_weights(weights)
            reserved = policy.reservations(self.cache.capacity)
            if reserved:
                self.cache.set_reservations(reserved)

    def _telemetry_probe(self) -> dict:
        """Per-window level samples for the telemetry recorder."""
        samples = {
            f"difane_cache_occupancy{{switch={self.name}}}": float(
                self.cache.occupancy()
            ),
            f"difane_cache_evictions{{switch={self.name}}}": float(self.cache.evicted),
        }
        if self.cache.policy is EvictionPolicy.COST:
            # The churn split and the measured re-fetch penalty only
            # matter to cost-aware eviction; gating the extra probe keys
            # on the policy keeps the default-LRU goldens byte-identical.
            samples[f"difane_cache_expirations{{switch={self.name}}}"] = float(
                self.cache.expired
            )
            samples[f"difane_cache_invalidations{{switch={self.name}}}"] = float(
                self.cache.invalidated
            )
            ewma = self.cache.refetch_penalty_ewma
            samples[f"difane_cache_refetch_penalty_s{{switch={self.name}}}"] = (
                float(ewma) if ewma is not None else 0.0
            )
        return samples

    # -- control plane (optional; wired by connect_control_plane) -----------------
    def connect_control(self, channel) -> None:
        """Attach this switch's control session to the DIFANE controller."""
        self.control_channel = channel

    def enable_heartbeats(self, interval_s: float) -> None:
        """Start emitting periodic liveness beacons over the control channel.

        Beats are fire-and-forget (never retransmitted): a lost or late
        heartbeat is exactly the signal the controller's failure detector
        integrates.  A dead switch (``alive = False``) skips beats but the
        timer keeps ticking, so beats resume on repair.  Note the timer
        keeps the event loop alive — run the simulation with ``until=``.
        """
        if interval_s <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval_s}")
        self._heartbeat_interval = interval_s
        self.network.scheduler.schedule(interval_s, self._emit_heartbeat)

    def _emit_heartbeat(self) -> None:
        if self._heartbeat_interval is None:
            return
        if self.alive and self.control_channel is not None:
            self._beat += 1
            self.heartbeats_sent += 1
            self.control_channel.send_to_controller(
                Heartbeat(switch=self.name, beat=self._beat,
                          sent_at=self.network.scheduler.now),
                reliable=False,
            )
        self.network.scheduler.schedule(self._heartbeat_interval, self._emit_heartbeat)

    def receive_control(self, message: Message) -> None:
        """Handle a controller-to-switch message (degraded path / installs)."""
        if isinstance(message, PacketOut):
            self._execute_actions(message.packet, message.actions)
        elif isinstance(message, FlowMod) and message.rule is not None:
            if message.command is FlowModCommand.ADD:
                self.install_rule(message.rule)
            elif message.command is FlowModCommand.DELETE:
                self.uninstall_rule(message.rule)

    # -- rule installation (called by the controller / other switches) -----------
    def install_rule(self, rule: Rule) -> None:
        """Install an authority or partition rule (controller path)."""
        if rule.kind is RuleKind.CACHE:
            raise ValueError("cache rules arrive via install_cache_rule")
        self.pipeline.install(rule, now=self._now())

    def uninstall_rule(self, rule: Rule) -> bool:
        """Remove a specific authority/partition rule."""
        if rule.kind is RuleKind.AUTHORITY:
            return self.pipeline.authority.evict(rule)
        if rule.kind is RuleKind.PARTITION:
            return self.pipeline.partition.evict(rule)
        return self.pipeline.cache.evict(rule)

    def install_cache_rule(self, rule: Rule) -> None:
        """Receive an in-band cache install from an authority switch."""
        self.cache_installs_received += 1
        self._m["cache_installs_received"].inc()
        now = self._now()
        if self.network is not None and self.network.tracer.enabled:
            self.network.tracer.record(
                now, TraceKind.INSTALL_RECEIVED, rule, node=self.name
            )
        self.cache.expire(now)
        self.cache.install(rule, now)

    def flush_cache_where(self, predicate) -> List[Rule]:
        """Evict cache rules matching ``predicate`` (policy-change path)."""
        return self.pipeline.cache.evict_if(
            lambda rule: rule.kind is RuleKind.CACHE and predicate(rule)
        )

    def purge_stale_authority_rules(self, expected: List[Rule]) -> List[Rule]:
        """Evict authority fragments not in the controller's ``expected`` set.

        A switch that died and came back still holds the authority
        fragments of partitions that were re-homed elsewhere while it was
        down.  Left in place, they shadow freshly installed copies (same
        priority, earlier insertion order wins), inflate the TCAM
        footprint and silently zero the load measurements the rebalancer
        depends on.  Identity (``is``) comparison is deliberate: the
        controller tracks the exact fragment objects it installed.
        """
        expected_ids = {id(rule) for rule in expected}
        return self.pipeline.authority.evict_if(
            lambda rule: id(rule) not in expected_ids
        )

    # -- the data plane ------------------------------------------------------------
    def process(self, packet: Packet) -> None:
        """Ingress classification / transit tunnelling / authority entry."""
        now = self._now()
        if packet.is_encapsulated:
            if packet.encap_destination != self.name:
                # Transit: tunnel forwarding only, no reclassification.
                self.network.forward_toward(self.name, packet.encap_destination, packet)
                return
            # Redirected to this authority switch.
            if self._redirect_station is not None:
                if not self._admission_shed(packet):
                    self._redirect_station.submit(packet)
            else:
                self._handle_redirect(packet)
            return

        # Ingress classification.
        result = self.pipeline.lookup(packet, now)
        self._classified(packet, result, now)

    def _classified(self, packet: Packet, result, now: float) -> None:
        """Act on one ingress classification verdict (shared by the
        per-packet and batch paths; counters and traces identical)."""
        tracer = self.network.tracer
        if result.stage is PipelineStage.CACHE:
            self.cache_hits += 1
            self._m["cache_hits"].inc()
            if self._qos is not None:
                self._qos_count("cache_hits", (packet.header_bits,))
            if tracer.enabled:
                tracer.record(now, TraceKind.CACHE_HIT, packet, node=self.name)
            self._terminal(packet, result.rule)
        elif result.stage is PipelineStage.AUTHORITY:
            # This switch is itself the authority for the packet's
            # partition: handle locally, no redirect needed.
            self.authority_hits += 1
            self._m["authority_hits"].inc()
            if self._qos is not None:
                self._qos_count("authority_hits", (packet.header_bits,))
            if tracer.enabled:
                tracer.record(now, TraceKind.AUTHORITY_HIT, packet, node=self.name)
            self._terminal(packet, result.rule)
        elif result.stage is PipelineStage.PARTITION:
            self.redirects_out += 1
            self._m["redirects_out"].inc()
            if self._qos is not None:
                self._qos_count("redirects", (packet.header_bits,))
            packet.via_authority = True
            if tracer.enabled:
                tracer.record(now, TraceKind.REDIRECT, packet, node=self.name)
            self._redirect_via_partition(packet, result.rule)
        else:
            self.unmatched += 1
            self._m["unmatched"].inc()
            self.network.record_drop(packet, self.name, "no matching rule")

    def process_batch(self, packets: List[Packet]) -> None:
        """Classify a burst of ingress packets with one engine dispatch.

        Encapsulated (transit / redirected) packets take the normal
        per-packet path; everything else goes through
        :meth:`DifanePipeline.lookup_batch`, then per-packet action
        dispatch.  Outcome and counters are identical to calling
        :meth:`process` per packet.
        """
        now = self._now()
        ingress = []
        for packet in packets:
            if packet.is_encapsulated:
                self.process(packet)
            else:
                ingress.append(packet)
        if not ingress:
            return
        for packet, result in zip(ingress, self.pipeline.lookup_batch(ingress, now)):
            self._classified(packet, result, now)

    # -- the columnar data plane ---------------------------------------------------
    def process_packet_batch(self, batch) -> None:
        """Columnar :meth:`process`: classify and act on a whole batch.

        Counters, rule statistics, delivery records and traces land
        exactly as per-packet :meth:`process` calls would — only event
        granularity (one per batch hop instead of one per packet hop) and
        same-instant ordering differ, neither of which the metrics
        document can observe.  Capacity-bounded paths (the redirect
        station) are defined per packet and degrade to the scalar path.
        """
        now = self._now()
        if batch.encap_destination is not None:
            if batch.encap_destination != self.name:
                # Transit: tunnel the whole batch one hop, no reclassify.
                self.network.forward_batch_toward(
                    self.name, batch.encap_destination, batch
                )
                return
            if self._redirect_station is not None:
                # The redirect budget is per packet; feed the station the
                # scalar view so queueing/loss behaviour is unchanged.
                for packet in batch.packets():
                    if not self._admission_shed(packet):
                        self._redirect_station.submit(packet)
                return
            self._handle_redirect_batch(batch)
            return

        tracer = self.network.tracer
        for stage, rule, indices in self.pipeline.classify_batch(batch, now):
            sub = batch.select(indices)
            count = len(indices)
            if stage is PipelineStage.CACHE:
                self.cache_hits += count
                self._m["cache_hits"].inc(count)
                if self._qos is not None:
                    self._qos_count("cache_hits", sub.header_bits_list())
                if tracer.enabled:
                    tracer.record_batch(
                        now, TraceKind.CACHE_HIT, sub.packets(), node=self.name
                    )
                self._terminal_batch(sub, rule)
            elif stage is PipelineStage.AUTHORITY:
                self.authority_hits += count
                self._m["authority_hits"].inc(count)
                if self._qos is not None:
                    self._qos_count("authority_hits", sub.header_bits_list())
                if tracer.enabled:
                    tracer.record_batch(
                        now, TraceKind.AUTHORITY_HIT, sub.packets(), node=self.name
                    )
                self._terminal_batch(sub, rule)
            elif stage is PipelineStage.PARTITION:
                self.redirects_out += count
                self._m["redirects_out"].inc(count)
                if self._qos is not None:
                    self._qos_count("redirects", sub.header_bits_list())
                sub.via_authority[:] = True
                if tracer.enabled:
                    tracer.record_batch(
                        now, TraceKind.REDIRECT, sub.packets(), node=self.name
                    )
                self._redirect_batch_via_partition(sub, rule)
            else:
                self.unmatched += count
                self._m["unmatched"].inc(count)
                self.network.record_drop_batch(sub, self.name, "no matching rule")

    def _redirect_batch_via_partition(self, batch, rule: Rule) -> None:
        """Batch analogue of :meth:`_redirect_via_partition`.

        Destination resolution (primary reachability, backup failover)
        depends only on the partition rule and current routes, so it is
        computed once per group; the rare degraded path (orphaned
        partition → controller punt) is inherently per packet and
        materializes the scalar view.
        """
        count = len(batch)
        action = rule.actions.actions[0]
        destination = action.destination
        if not self.network.routes.reachable(self.name, destination):
            for backup in getattr(action, "backups", ()):
                if self.network.routes.reachable(self.name, backup):
                    destination = backup
                    self.failovers += count
                    self._m["failovers"].inc(count)
                    if self.network.tracer.enabled:
                        self.network.tracer.record_batch(
                            self._now(), TraceKind.FAILOVER, batch.packets(),
                            node=self.name, detail=backup,
                        )
                    break
            else:
                if self.control_channel is not None:
                    self.degraded_packets += count
                    self._m["degraded_packets"].inc(count)
                    for packet in batch.packets():
                        packet.via_controller = True
                        if self.network.tracer.enabled:
                            self.network.tracer.record(
                                self._now(), TraceKind.DEGRADED, packet,
                                node=self.name,
                            )
                        self.control_channel.send_to_controller(
                            PacketIn(switch=self.name, packet=packet)
                        )
                    return
                self.network.record_drop_batch(
                    batch, self.name, "authority unreachable"
                )
                return
        batch.encapsulate(destination)
        self.network.forward_batch_toward(self.name, destination, batch)

    def _handle_redirect_batch(self, batch) -> None:
        """Authority-path processing of a redirected batch.

        Install decisions are made **per unique flow**: the win-fragment
        computation (:func:`generate_cache_rule`) runs once per distinct
        header in the batch, while the install messages and counters stay
        per packet — exactly what the scalar path produces, minus the
        redundant recomputation.
        """
        count = len(batch)
        self.redirects_handled += count
        self._m["redirects_handled"].inc(count)
        batch.decapsulate()
        now = self._now()
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.record_batch(
                now, TraceKind.AUTHORITY_HANDLE, batch.packets(), node=self.name
            )
        winners, rules = self.pipeline.authority.match_batch(batch, now)
        missed = [i for i, w in enumerate(winners) if w < 0]
        if missed:
            self.unmatched += len(missed)
            self.network.record_drop_batch(
                batch.select(missed), self.name, "authority miss"
            )
        groups: dict = {}
        for i, winner in enumerate(winners):
            if winner >= 0:
                groups.setdefault(int(winner), []).append(i)
        ingress = batch.ingress_switch
        for winner, indices in groups.items():
            rule = rules[winner]
            sub = batch.select(indices)
            # Snapshot headers before terminal actions (SetField rewrites
            # would corrupt the win-fragment computation — the cache rule
            # must match packets as they arrived at the ingress switch).
            original_bits = sub.header_bits_list()
            sub_packets = sub.packets() if tracer.enabled else None
            self._terminal_batch(sub, rule)
            if ingress is None:
                continue
            # Group the sub-batch by unique flow so the expensive cache
            # rule generation runs once per flow, not once per packet.
            flows: dict = {}
            for position, bits in enumerate(original_bits):
                flows.setdefault(bits, []).append(position)
            if ingress != self.name:
                target = self.network.node(ingress)
                delay = self.install_latency_s + self.network.routes.distance(
                    self.name, ingress
                )
                penalty = self.network.routes.distance(ingress, self.name) + delay
                for bits, positions in flows.items():
                    cached_rules = self._cache_rules_for(rule, bits)
                    repeat = len(positions)
                    for group in self._fragment_groups(cached_rules, penalty):
                        for cached in group:
                            self.cache_installs_sent += repeat
                            self._m["cache_installs_sent"].inc(repeat)
                            if tracer.enabled:
                                for position in positions:
                                    tracer.record(
                                        self._now(), TraceKind.INSTALL_SENT,
                                        sub_packets[position],
                                        node=self.name, detail=ingress,
                                    )
                        if len(group) == 1:
                            self.network.scheduler.schedule_batch(
                                delay, target.install_cache_rule_times,
                                group[0], repeat,
                            )
                        else:
                            # One batched message per redirected packet.
                            self.cache_install_batches_sent += repeat
                            self.network.scheduler.schedule_batch(
                                delay, target.install_cache_rules_times,
                                group, repeat,
                            )
            else:
                # Degenerate single-switch case: cache locally.
                for bits, positions in flows.items():
                    cached_rules = self._cache_rules_for(rule, bits)
                    self._fragment_groups(cached_rules, self.install_latency_s)
                    for cached in cached_rules:
                        self.install_cache_rule_times(cached, len(positions))

    def install_cache_rule_times(self, rule: Rule, count: int) -> None:
        """Absorb ``count`` identical in-band installs in one call.

        The scalar path sends one install message per redirected packet;
        the columnar sender collapses a same-flow group into one event
        carrying the multiplicity.  Looping here keeps every counter and
        the duplicate-refresh behaviour of :class:`CacheManager` identical
        to ``count`` separate messages.
        """
        for _ in range(count):
            self.install_cache_rule(rule)

    def install_cache_rules(self, rules: List[Rule]) -> None:
        """Receive a batched in-band install: sibling win-region fragments
        of one policy rule, carried in a single message."""
        for rule in rules:
            self.install_cache_rule(rule)

    def install_cache_rules_times(self, rules: List[Rule], count: int) -> None:
        """Columnar analogue of :meth:`install_cache_rules`: absorb the
        same fragment batch ``count`` times (packet-outer, fragment-inner,
        matching the scalar per-packet send order)."""
        for _ in range(count):
            for rule in rules:
                self.install_cache_rule(rule)

    def _terminal_batch(self, batch, rule: Rule) -> None:
        """Batch analogue of :meth:`_terminal` (same action semantics)."""
        for action in rule.actions:
            if isinstance(action, SetField):
                batch.set_field(action.field_name, action.value)
            elif isinstance(action, Drop):
                self.network.record_drop_batch(batch, self.name, "policy drop")
                return
            elif isinstance(action, Forward):
                batch.encapsulate(action.port)
                self.network.forward_batch_toward(self.name, action.port, batch)
                return
            else:
                break
        self.network.record_drop_batch(batch, self.name, "no terminal action")

    def _redirect_via_partition(self, packet: Packet, rule: Rule) -> None:
        """Tunnel a miss to its authority switch, failing over to backups.

        Paper §4.3: partition rules carry the replica list, so when the
        primary authority switch is unreachable the ingress switch picks a
        live backup **without contacting the controller**.
        """
        action = rule.actions.actions[0]
        destination = action.destination
        if not self.network.routes.reachable(self.name, destination):
            for backup in getattr(action, "backups", ()):
                if self.network.routes.reachable(self.name, backup):
                    destination = backup
                    self.failovers += 1
                    self._m["failovers"].inc()
                    if self.network.tracer.enabled:
                        self.network.tracer.record(
                            self._now(), TraceKind.FAILOVER, packet,
                            node=self.name, detail=backup,
                        )
                    break
            else:
                # Partition orphaned: primary and every replicated backup
                # are unreachable.  Degrade to a NOX-style packet-in so the
                # controller classifies the packet, instead of dropping.
                if self.control_channel is not None:
                    self.degraded_packets += 1
                    self._m["degraded_packets"].inc()
                    packet.via_controller = True
                    if self.network.tracer.enabled:
                        self.network.tracer.record(
                            self._now(), TraceKind.DEGRADED, packet, node=self.name
                        )
                    self.control_channel.send_to_controller(
                        PacketIn(switch=self.name, packet=packet)
                    )
                    return
                self.network.record_drop(packet, self.name, "authority unreachable")
                return
        packet.encapsulate(destination)
        self.network.forward_toward(self.name, destination, packet)

    def _handle_redirect(self, packet: Packet) -> None:
        """Authority-path processing of one redirected packet."""
        self.redirects_handled += 1
        self._m["redirects_handled"].inc()
        packet.decapsulate()
        now = self._now()
        if self.network.tracer.enabled:
            self.network.tracer.record(
                now, TraceKind.AUTHORITY_HANDLE, packet, node=self.name
            )
        rule = self.pipeline.authority.lookup(packet, now)
        if rule is None:
            self.unmatched += 1
            self.network.record_drop(packet, self.name, "authority miss")
            return
        ingress = packet.ingress_switch
        # Snapshot the header before terminal actions: SetField rewrites
        # would otherwise corrupt the win-fragment computation (the cache
        # rule must match packets as they arrive at the ingress switch).
        original_bits = packet.header_bits
        self._terminal(packet, rule)
        if ingress is not None and ingress != self.name:
            self._send_cache_install(ingress, rule, original_bits, packet)
        elif ingress == self.name:
            # Degenerate single-switch case: cache locally.
            cached_rules = self._cache_rules_for(rule, original_bits)
            self._fragment_groups(cached_rules, self.install_latency_s)
            for cached in cached_rules:
                self.install_cache_rule(cached)

    def _qos_count(self, stat: str, header_bits_iter) -> None:
        """Increment the per-class counter for ``stat`` per packed header."""
        classify = self._qos.classifier.classify_bits
        qc = self._qc
        for bits in header_bits_iter:
            qc[(stat, classify(bits))].inc()

    def _admission_shed(self, packet: Packet) -> bool:
        """Shed an unprotected-class redirect when the queue is deep.

        Threshold admission control (armed by the QoS policy): once the
        redirect station's queue is at least ``admission_threshold`` deep,
        redirects of unprotected classes are refused on arrival — with
        exact drop attribution — instead of queueing behind (and ahead of)
        protected traffic.  Protected classes always pass; the station's
        own tail-drop limit still backstops them.
        """
        qos = self._qos
        if qos is None or qos.admission_threshold is None:
            return False
        if self._redirect_station.queue_depth < qos.admission_threshold:
            return False
        cls = qos.classifier.classify_bits(packet.header_bits)
        if qos.is_protected(cls):
            return False
        self.redirects_shed += 1
        self._qc[("shed", cls)].inc()
        self.network.record_drop(packet, self.name, f"admission shed {cls}")
        return True

    def _cache_rules_for(self, rule: Rule, packet_bits: int) -> List[Rule]:
        """The cache rule(s) one miss generates (fragment + prefetch)."""
        authority_rules = list(self.pipeline.authority.table.rules)
        cached_rules: Optional[List[Rule]] = None
        if self.prefetch_fragments > 1:
            try:
                cached_rules = generate_cache_rules(
                    authority_rules,
                    rule,
                    packet_bits=packet_bits,
                    max_fragments=self.prefetch_fragments,
                    max_members=max(64, 8 * self.prefetch_fragments),
                )
            except WinRegionTooLarge:
                cached_rules = None  # fall back to the single-fragment path
        if cached_rules is None:
            cached = generate_cache_rule(authority_rules, rule, packet_bits)
            cached_rules = [] if cached is None else [cached]
        if self._qos is not None and cached_rules:
            # Stamp the class the *missed packet* belongs to — the single
            # chokepoint every install path (scalar, batch, local) funnels
            # through, so residency protection sees every cache rule.
            name = self._qos.classifier.classify_bits(packet_bits)
            for cached in cached_rules:
                cached.flow_class = name
        return cached_rules

    def _send_cache_install(
        self, ingress: str, rule: Rule, packet_bits: int, packet: Optional[Packet] = None
    ) -> None:
        cached_rules = self._cache_rules_for(rule, packet_bits)
        if not cached_rules:
            return
        target = self.network.node(ingress)
        delay = self.install_latency_s + self.network.routes.distance(self.name, ingress)
        tracer = self.network.tracer
        # The full miss penalty the ingress pays to re-fetch this entry:
        # redirect to the authority plus the install path back.  Cost-aware
        # eviction reads this stamp; other policies ignore it.
        penalty = self.network.routes.distance(ingress, self.name) + delay
        for group in self._fragment_groups(cached_rules, penalty):
            for cached in group:
                self.cache_installs_sent += 1
                self._m["cache_installs_sent"].inc()
                if tracer.enabled:
                    # Trace against the triggering packet (when known) so
                    # the flow-causal analyzer can attribute the install
                    # stage to the first packet's span; the rule itself
                    # carries no packet/flow identity.
                    tracer.record(
                        self._now(), TraceKind.INSTALL_SENT,
                        packet if packet is not None else cached,
                        node=self.name, detail=ingress,
                    )
            if len(group) == 1:
                self.network.scheduler.schedule(
                    delay, target.install_cache_rule, group[0]
                )
            else:
                self.cache_install_batches_sent += 1
                self.network.scheduler.schedule(
                    delay, target.install_cache_rules, group
                )

    def _fragment_groups(
        self, cached_rules: List[Rule], penalty: Optional[float] = None
    ) -> List[List[Rule]]:
        """Stamp re-fetch penalties and group sibling fragments for batching.

        Fragments deriving from the same policy rule travel in one install
        message (dependency-aware batching at ``prefetch_fragments > 1``);
        a single-fragment group keeps the legacy one-rule message so the
        event stream at prefetch=1 — the goldens' configuration — is
        byte-identical.
        """
        groups: dict = {}
        for cached in cached_rules:
            if penalty is not None:
                cached.refetch_penalty_s = penalty
            groups.setdefault(id(cached.root_origin()), []).append(cached)
        return list(groups.values())

    def _redirect_overload(self, packet: Packet) -> None:
        self.redirects_dropped += 1
        self.network.record_drop(packet, self.name, "authority overloaded")

    # -- terminal action execution ----------------------------------------------------
    def _terminal(self, packet: Packet, rule: Rule) -> None:
        """Apply a classification verdict: rewrite, drop, or tunnel onward.

        Forwarded packets are encapsulated to their destination so transit
        switches never reclassify — DIFANE classifies once, at the edge.
        """
        self._execute_actions(packet, rule.actions)

    def _execute_actions(self, packet: Packet, actions) -> None:
        """Terminal-action execution shared by lookups and PacketOut."""
        for action in actions:
            if isinstance(action, SetField):
                self._apply_rewrite(packet, action)
            elif isinstance(action, Drop):
                self.network.record_drop(packet, self.name, "policy drop")
                return
            elif isinstance(action, Forward):
                packet.encapsulate(action.port)
                self.network.forward_toward(self.name, action.port, packet)
                return
            else:
                break
        self.network.record_drop(packet, self.name, "no terminal action")

    # -- misc -----------------------------------------------------------------------------
    def tick(self) -> None:
        """Periodic maintenance: expire timed-out cache rules."""
        self.cache.expire(self._now())

    def _now(self) -> float:
        return self.network.scheduler.now if self.network is not None else 0.0

    @property
    def tcam_footprint(self) -> int:
        """Total TCAM entries across the pipeline regions."""
        return self.pipeline.total_entries()
