"""Decision-tree flow-space partitioning (DIFANE paper §3).

The controller must divide the operator's wildcard rule set across k
authority switches so that (a) the partitions exactly tile the flow space —
every packet has exactly one owning authority switch, found with a *single*
TCAM lookup on the ingress switch's partition rules — and (b) the TCAM cost
is balanced and small.  A wildcard rule that straddles a partition boundary
must be *split*: each overlapping partition stores the rule clipped to its
region, so splitting inflates total TCAM usage.  The algorithm is therefore
a binary decision tree over header **bits**:

1. start with the full header space as one region containing every rule;
2. repeatedly take the region with the most rules and cut it on the
   wildcard bit that (first) splits the fewest rules and (second) balances
   the two halves best;
3. stop when the requested number of partitions is reached or every region
   is under the per-partition budget.

Leaves tile the space by construction (each cut is an exact binary
partition of the parent region), and each leaf region is a single ternary
string — so a partition rule is **one TCAM entry**, which is the property
that keeps ingress partition tables tiny.

The rule-bit matrix is held in numpy so cut selection is vectorized; a
10K-rule, 104-bit policy partitions into 64 leaves in well under a second.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flowspace.action import Encapsulate
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Match, Rule, RuleKind
from repro.flowspace.ternary import Ternary

__all__ = [
    "Partition",
    "PartitionResult",
    "partition_policy",
    "assign_partitions",
    "assign_partitions_to_shards",
    "build_partition_rules",
]


@dataclass
class Partition:
    """One leaf of the partition tree.

    Attributes
    ----------
    partition_id:
        Dense index (stable across runs for the same inputs).
    region:
        The ternary string describing the leaf's slice of flow space.
        Regions of distinct partitions are disjoint and their union is the
        full header space.
    rules:
        The policy rules overlapping the region, **clipped** to it, in
        original priority order.  These are the authority rules stored at
        whichever switch owns the partition.
    depth:
        Depth of the leaf in the decision tree (number of cut bits).
    """

    partition_id: int
    region: Ternary
    rules: List[Rule]
    depth: int

    @property
    def entry_count(self) -> int:
        """TCAM entries this partition costs at its authority switch."""
        return len(self.rules)

    def contains_bits(self, header_bits: int) -> bool:
        """True when a packet with ``header_bits`` belongs to this partition."""
        return self.region.matches(header_bits)

    def __repr__(self) -> str:
        return (
            f"<Partition {self.partition_id} depth={self.depth} "
            f"rules={len(self.rules)} region={_short(self.region)}>"
        )


@dataclass
class PartitionResult:
    """Output of :func:`partition_policy` plus accounting.

    ``duplication_overhead`` is the paper's split metric: total clipped
    entries minus original rules (0 means no rule straddles a boundary).
    """

    layout: HeaderLayout
    partitions: List[Partition]
    original_rule_count: int
    cut_strategy: str

    @property
    def total_entries(self) -> int:
        """Sum of authority-rule entries across partitions."""
        return sum(p.entry_count for p in self.partitions)

    @property
    def duplication_overhead(self) -> int:
        """Extra TCAM entries caused by rule splitting."""
        return self.total_entries - self.original_rule_count

    @property
    def duplication_factor(self) -> float:
        """``total_entries / original_rule_count`` (1.0 = no splitting)."""
        if self.original_rule_count == 0:
            return 1.0
        return self.total_entries / self.original_rule_count

    @property
    def max_partition_entries(self) -> int:
        """Largest per-partition TCAM footprint (the balance metric)."""
        return max((p.entry_count for p in self.partitions), default=0)

    def find_partition(self, header_bits: int) -> Optional[Partition]:
        """The unique partition containing ``header_bits``."""
        for partition in self.partitions:
            if partition.contains_bits(header_bits):
                return partition
        return None

    def __repr__(self) -> str:
        return (
            f"<PartitionResult {len(self.partitions)} partitions, "
            f"{self.total_entries} entries from {self.original_rule_count} rules>"
        )


# ---------------------------------------------------------------------------
# The partitioner
# ---------------------------------------------------------------------------

#: Symbol codes in the rule-bit matrix.
_ZERO, _ONE, _WILD = 0, 1, 2


class _Node:
    """Internal tree node during construction."""

    __slots__ = ("region", "indices", "depth", "splittable")

    def __init__(self, region: Ternary, indices: np.ndarray, depth: int):
        self.region = region
        self.indices = indices
        self.depth = depth
        self.splittable = True


def partition_policy(
    rules: Sequence[Rule],
    layout: HeaderLayout,
    num_partitions: Optional[int] = None,
    max_rules_per_partition: Optional[int] = None,
    cut_strategy: str = "split-aware",
    allowed_fields: Optional[Sequence[str]] = None,
) -> PartitionResult:
    """Partition ``rules`` into flow-space regions.

    Parameters
    ----------
    rules:
        Policy rules in priority order (highest first).  Order is
        preserved inside every partition.
    layout:
        The shared header layout.
    num_partitions:
        Grow the tree until exactly this many leaves exist (modulo
        unsplittable leaves).  This is the "k authority switches" mode the
        paper's partitioning evaluation sweeps.
    max_rules_per_partition:
        Alternatively (or additionally) split until every leaf holds at
        most this many clipped rules — the "fit each partition in one
        switch's TCAM" mode.
    cut_strategy:
        ``"split-aware"`` (the paper's heuristic: minimize split rules,
        then balance) or ``"occupancy"`` (naive: balance only) — the
        ablation in experiment E10.
    allowed_fields:
        Restrict cut positions to these header fields (e.g.
        ``["nw_dst"]``) — the single-dimension ablation.  ``None`` allows
        every bit, which is DIFANE's multi-dimensional partitioning.

    Returns
    -------
    PartitionResult
        Leaves tile the space; every leaf's rules are clipped to it.
    """
    if num_partitions is None and max_rules_per_partition is None:
        raise ValueError("specify num_partitions and/or max_rules_per_partition")
    if num_partitions is not None and num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if cut_strategy not in ("split-aware", "occupancy"):
        raise ValueError(f"unknown cut strategy {cut_strategy!r}")
    for rule in rules:
        if rule.match.layout != layout:
            raise ValueError("all rules must share the partitioning layout")

    width = layout.width
    cuttable: Optional[frozenset] = None
    if allowed_fields is not None:
        cuttable_positions = set()
        for name in allowed_fields:
            offset = layout.offset(name)  # raises KeyError on unknown field
            cuttable_positions.update(
                range(offset, offset + layout.field(name).width)
            )
        cuttable = frozenset(cuttable_positions)
        if not cuttable:
            raise ValueError("allowed_fields selected no bits")
    matrix = _rule_bit_matrix(rules, width)
    root = _Node(Ternary.wildcard(width), np.arange(len(rules)), 0)

    # Max-heap of splittable leaves keyed by rule count (ties: creation
    # order, for determinism).
    counter = itertools.count()
    heap: List[Tuple[int, int, _Node]] = []
    finished: List[_Node] = []

    def push(node: _Node) -> None:
        """Queue a leaf for further splitting, or finalize it."""
        if _needs_split(node, max_rules_per_partition) or num_partitions is not None:
            heapq.heappush(heap, (-len(node.indices), next(counter), node))
        else:
            finished.append(node)

    push(root)

    while heap:
        leaves_now = len(heap) + len(finished)
        target_reached = num_partitions is None or leaves_now >= num_partitions
        size_satisfied = not _needs_split(heap[0][2], max_rules_per_partition)
        if target_reached and size_satisfied:
            break
        if target_reached and num_partitions is not None and max_rules_per_partition is None:
            break
        _, _, node = heapq.heappop(heap)
        cut = _choose_cut(node, matrix, cut_strategy, cuttable)
        if cut is None:
            node.splittable = False
            finished.append(node)
            # When the node can't split further, a pure size goal can never
            # be met for it; keep going for the remaining leaves.
            continue
        left, right = _split(node, matrix, cut)
        push(left)
        push(right)

    leaves = finished + [entry[2] for entry in heap]
    leaves.sort(key=lambda n: (n.region.mask, n.region.value))
    partitions = [
        Partition(
            partition_id=index,
            region=leaf.region,
            rules=_clip_rules(rules, leaf, matrix),
            depth=leaf.depth,
        )
        for index, leaf in enumerate(leaves)
    ]
    return PartitionResult(
        layout=layout,
        partitions=partitions,
        original_rule_count=len(rules),
        cut_strategy=cut_strategy,
    )


def _needs_split(node: _Node, max_rules: Optional[int]) -> bool:
    if max_rules is None:
        return False
    return node.splittable and len(node.indices) > max_rules


def _rule_bit_matrix(rules: Sequence[Rule], width: int) -> np.ndarray:
    """Encode every rule's match as a row of {0, 1, x} codes."""
    matrix = np.full((len(rules), width), _WILD, dtype=np.int8)
    for row, rule in enumerate(rules):
        ternary = rule.match.ternary
        mask, value = ternary.mask, ternary.value
        position = 0
        while mask >> position:
            if (mask >> position) & 1:
                matrix[row, position] = _ONE if (value >> position) & 1 else _ZERO
            position += 1
    return matrix


def _choose_cut(
    node: _Node,
    matrix: np.ndarray,
    strategy: str,
    cuttable: Optional[frozenset] = None,
) -> Optional[int]:
    """Pick the bit to cut ``node`` on, or ``None`` when nothing helps.

    A candidate bit must still be wildcard in the node's region and must
    actually discriminate (at least one rule cares about it); otherwise the
    cut would duplicate every rule into both children for no benefit.
    Empty nodes may still be cut (to honour a partition-count target), on
    the lowest free bit.
    """
    region = node.region
    free_positions = [
        p for p in range(region.width)
        if region.bit(p) == "x" and (cuttable is None or p in cuttable)
    ]
    if not free_positions:
        return None
    if len(node.indices) == 0:
        return free_positions[0]

    positions = np.asarray(free_positions)
    sub = matrix[np.ix_(node.indices, positions)]
    total = len(node.indices)
    zeros = np.count_nonzero(sub == _ZERO, axis=0)
    ones = np.count_nonzero(sub == _ONE, axis=0)
    discriminating = (zeros + ones) > 0
    if not discriminating.any():
        return None  # every rule straddles every candidate: pure duplication
    positions = positions[discriminating]
    zeros = zeros[discriminating]
    ones = ones[discriminating]
    wilds = total - zeros - ones
    imbalance = np.abs((zeros + wilds) - (ones + wilds))
    if strategy == "split-aware":
        key_minor, key_major = imbalance, wilds
    else:  # occupancy: naive balance-only heuristic (ablation)
        key_minor, key_major = wilds, imbalance
    # lexsort keys are last-is-primary; equivalent to minimizing the tuple
    # (major, minor, position) over discriminating candidates.
    best = np.lexsort((positions, key_minor, key_major))[0]
    return int(positions[best])


def _split(node: _Node, matrix: np.ndarray, position: int) -> Tuple[_Node, _Node]:
    """Cut ``node`` at ``position`` into the bit=0 and bit=1 children."""
    column = matrix[node.indices, position]
    left_indices = node.indices[column != _ONE]
    right_indices = node.indices[column != _ZERO]
    left = _Node(node.region.with_bit(position, "0"), left_indices, node.depth + 1)
    right = _Node(node.region.with_bit(position, "1"), right_indices, node.depth + 1)
    return left, right


def _clip_rules(rules: Sequence[Rule], leaf: _Node, matrix: np.ndarray) -> List[Rule]:
    """Clip the leaf's rules to its region, in lookup order.

    Fragments are ordered by ``(-priority, original index)`` — identical to
    :class:`~repro.flowspace.table.RuleTable`'s ordering (priority, ties by
    insertion) — so the fragment list is directly a lookup sequence even
    when the input policy was not pre-sorted.
    """
    clipped: List[Rule] = []
    order = sorted(
        (int(i) for i in leaf.indices),
        key=lambda i: (-rules[i].priority, i),
    )
    for index in order:
        rule = rules[index]
        fragment = rule.clip_to(leaf.region)
        if fragment is not None:
            fragment.kind = RuleKind.AUTHORITY
            clipped.append(fragment)
    return clipped


# ---------------------------------------------------------------------------
# Assignment and partition rules
# ---------------------------------------------------------------------------

def assign_partitions(
    partitions: Sequence[Partition],
    authority_switches: Sequence[str],
    replication: int = 1,
) -> Dict[int, List[str]]:
    """Assign each partition to ``replication`` authority switches.

    Greedy balanced bin packing on TCAM entries: partitions are placed
    largest-first onto the currently least-loaded switches.  The first
    switch in each partition's list is the **primary** (partition rules
    point at it); the rest are backups used on failover (paper §4.3).
    """
    if not authority_switches:
        raise ValueError("need at least one authority switch")
    replication = min(replication, len(authority_switches))
    if replication < 1:
        raise ValueError("replication must be >= 1")
    load = {name: 0 for name in authority_switches}
    assignment: Dict[int, List[str]] = {}
    ordered = sorted(partitions, key=lambda p: (-p.entry_count, p.partition_id))
    for partition in ordered:
        ranked = sorted(load, key=lambda name: (load[name], name))
        chosen = ranked[:replication]
        assignment[partition.partition_id] = chosen
        for name in chosen:
            load[name] += max(partition.entry_count, 1)
    return assignment


def assign_partitions_to_shards(
    partition_ids: Sequence[int],
    n_shards: int,
    seed: int = 0,
) -> Dict[int, int]:
    """Deterministic partition → controller-shard ownership.

    Ownership is a pure function of ``(seed, partition id, shard
    count)`` via the sweep runner's SHA-256 seed derivation — stable
    across processes, worker counts, and membership churn elsewhere, so
    two replicas of the control plane always agree on who owns what
    without talking.
    """
    from repro.parallel.seeds import derive_seed

    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return {
        pid: derive_seed(seed, ("shard", pid, n_shards)) % n_shards
        for pid in partition_ids
    }


def build_partition_rules(
    partitions: Sequence[Partition],
    assignment: Dict[int, List[str]],
    layout: HeaderLayout,
) -> List[Rule]:
    """Build the ingress partition rules (one TCAM entry per partition).

    Each rule matches a partition's region and encapsulates to its primary
    authority switch.  Regions are disjoint, so priorities are irrelevant
    for correctness; 0 keeps them visibly below everything else.
    """
    rules = []
    for partition in partitions:
        primary = assignment[partition.partition_id][0]
        rules.append(
            Rule(
                match=Match(layout, partition.region),
                priority=0,
                actions=Encapsulate(primary),
                kind=RuleKind.PARTITION,
            )
        )
    return rules


def _short(ternary: Ternary) -> str:
    text = str(ternary)
    return text if len(text) <= 24 else text[:21] + "..."
