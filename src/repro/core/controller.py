"""The DIFANE controller and the all-in-one network builder.

The controller's job in DIFANE is **proactive and off the critical path**
(the paper's central claim): it partitions the policy, places the
fragments on authority switches, pushes the tiny partition tables to every
switch, and afterwards only reacts to *management* events — policy
changes, topology changes, host mobility, authority failures (paper §4).
No packet ever waits for it.

:class:`DifaneNetwork` is the user-facing facade: hand it a topology, a
policy and a few knobs and it wires switches, controller, partitions and
routing into a runnable simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.flowspace.action import Encapsulate, Forward
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Match, Rule, RuleKind
from repro.flowspace.table import RuleTable
from repro.core.authority import DifaneSwitch
from repro.core.partition import (
    Partition,
    PartitionResult,
    assign_partitions,
    partition_policy,
)
from repro.core.placement import choose_authority_switches
from repro.net.simnet import SimNetwork
from repro.net.topology import Topology
from repro.openflow.channel import (
    ChannelFaultModel,
    ControlChannel,
    DEFAULT_CONTROL_LATENCY_S,
)
from repro.openflow.messages import Heartbeat, Message, PacketIn, PacketOut
from repro.switch.cache import EvictionPolicy

__all__ = [
    "DifaneController",
    "DifaneNetwork",
    "HeartbeatMonitor",
    "PartitionInvariantError",
]


class PartitionInvariantError(AssertionError):
    """Raised by :meth:`DifaneController.assert_all_partitions_owned`."""


class HeartbeatMonitor:
    """Controller-side failure detector driven by switch heartbeats.

    An authority switch is declared dead once no heartbeat has arrived
    for ``miss_threshold`` × ``interval_s`` seconds; detection latency is
    therefore an *emergent* property of the beat period, the threshold,
    the control-channel latency, and any channel faults — not a scripted
    delay.  On detection the monitor invokes the controller's existing
    :meth:`~DifaneController.handle_authority_failure` path; when beats
    later resume (the switch was repaired, or the detection was a false
    positive) the switch is reinstated as eligible for future placement.
    """

    def __init__(
        self,
        controller: "DifaneController",
        interval_s: float,
        miss_threshold: int = 3,
        on_detect: Optional[Callable[[str], None]] = None,
    ):
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.controller = controller
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self.on_detect = on_detect
        self.last_seen: Dict[str, float] = {}
        self.dead: set = set()
        #: (detection time, switch) pairs, in detection order.
        self.detections: List[Tuple[float, str]] = []
        #: (recovery time, switch) pairs: beats resumed from a dead-marked switch.
        self.recoveries: List[Tuple[float, str]] = []
        #: Detections of switches whose behaviour was in fact alive.
        self.false_positives = 0
        self._started = False

    def start(self) -> None:
        """Begin monitoring every current authority switch from now."""
        scheduler = self.controller.network.scheduler
        now = scheduler.now
        for name in self.controller.authority_switches:
            self.last_seen[name] = now
        self._started = True
        scheduler.schedule(self.interval_s, self._check)

    def observe(self, switch: str, when: float) -> None:
        """Record a heartbeat from ``switch`` received at ``when``."""
        if switch in self.dead:
            self.dead.discard(switch)
            self.recoveries.append((when, switch))
            self.controller.reinstate_authority(switch)
        self.last_seen[switch] = when

    @property
    def deadline_s(self) -> float:
        """Silence beyond this marks a switch dead."""
        return self.miss_threshold * self.interval_s

    def _check(self) -> None:
        scheduler = self.controller.network.scheduler
        now = scheduler.now
        for switch, seen in sorted(self.last_seen.items()):
            if switch in self.dead:
                continue
            if now - seen <= self.deadline_s:
                continue
            self.dead.add(switch)
            self.detections.append((now, switch))
            behaviour = self.controller.network.maybe_node(switch)
            if behaviour is not None and getattr(behaviour, "alive", True):
                self.false_positives += 1
            survivors = [
                name for name in self.controller.authority_switches
                if name != switch
            ]
            if switch in self.controller.authority_switches and survivors:
                repointed = self.controller.dispatch_authority_failure(switch)
                # Reconverged: give the caller its hook (e.g. invariant
                # checks).  When nothing was repointed — the switch owned
                # nothing, or no failover target was IGP-reachable — the
                # network is in degraded mode until a repair and there is
                # no new deployment state to validate.
                if repointed and self.on_detect is not None:
                    self.on_detect(switch)
        scheduler.schedule(self.interval_s, self._check)


@dataclass
class _PartitionState:
    """Controller-side record of one partition's deployment."""

    partition: Partition
    owners: List[str]  # primary first
    #: Authority-rule fragments installed per owner (owner -> fragments).
    installed: Dict[str, List[Rule]] = field(default_factory=dict)
    #: The partition rule (per ingress switch they are clones; we keep one
    #: object per switch so eviction is precise).
    partition_rules: Dict[str, Rule] = field(default_factory=dict)


class DifaneController:
    """Proactive rule partitioning and distribution, plus dynamics handling."""

    def __init__(
        self,
        network: SimNetwork,
        layout: HeaderLayout,
        authority_switches: Sequence[str],
        replication: int = 1,
        partitions_per_authority: int = 1,
        cut_strategy: str = "split-aware",
    ):
        if not authority_switches:
            raise ValueError("DIFANE needs at least one authority switch")
        self.network = network
        self.layout = layout
        self.authority_switches = list(authority_switches)
        self.replication = replication
        self.partitions_per_authority = partitions_per_authority
        self.cut_strategy = cut_strategy
        self.policy: List[Rule] = []
        self.result: Optional[PartitionResult] = None
        self._states: Dict[int, _PartitionState] = {}
        # Optional robustness layer (see connect_control_plane).
        self.channels: Dict[str, ControlChannel] = {}
        self.monitor: Optional[HeartbeatMonitor] = None
        #: Sharded control plane, when attached (see repro.core.shards).
        #: Failure handling then routes through the owning shard so a dead
        #: shard's partitions wait for the lease takeover.
        self.shard_plane = None
        self._policy_table: Optional[RuleTable] = None
        # Management statistics (experiment E9 reads these).
        self.control_messages = 0
        self.cache_entries_flushed = 0
        self.policy_updates = 0
        self.cache_budget_updates = 0
        self.degraded_packet_ins = 0
        # Mirror into the run's registry so metrics JSON carries the
        # degraded-mode load without reaching into controller objects.
        self._m_degraded_packet_ins = network.metrics.counter(
            "controller_degraded_packet_ins_total"
        )

    # -- robustness layer (opt-in; reliable fabric stays the default) --------------
    def connect_control_plane(
        self,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
        fault_model: Optional[ChannelFaultModel] = None,
        heartbeat_interval_s: Optional[float] = None,
        miss_threshold: int = 3,
        max_retries: Optional[int] = None,
        on_detect: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, ControlChannel]:
        """Wire an explicit switch ↔ controller control plane.

        Creates one :class:`ControlChannel` per switch (sharing
        ``fault_model``, so a chaos brownout throttles every session at
        once), attaches it to the switch for the degraded packet-in
        fallback, and — when ``heartbeat_interval_s`` is set — starts
        heartbeat emission at every authority switch plus a
        :class:`HeartbeatMonitor` that detects failures after
        ``miss_threshold`` missed intervals.

        Without this call nothing changes: rule distribution stays the
        immediate, perfectly reliable configuration-time path.
        """
        for name in self.network.topology.switches():
            switch = self._switch(name)
            channel = ControlChannel(
                self.network.scheduler,
                name,
                to_controller=self._receive_control,
                to_switch=switch.receive_control,
                latency_s=latency_s,
                fault_model=fault_model,
                max_retries=max_retries,
            )
            channel.on_lost = self._control_message_lost
            switch.connect_control(channel)
            self.channels[name] = channel
        if heartbeat_interval_s is not None:
            self.monitor = HeartbeatMonitor(
                self, heartbeat_interval_s,
                miss_threshold=miss_threshold, on_detect=on_detect,
            )
            for name in self.authority_switches:
                self._switch(name).enable_heartbeats(heartbeat_interval_s)
            self.monitor.start()
        return self.channels

    def _receive_control(self, message: Message) -> None:
        """Dispatch one switch-to-controller message."""
        if isinstance(message, Heartbeat):
            if self.monitor is not None:
                self.monitor.observe(message.switch, self.network.scheduler.now)
        elif isinstance(message, PacketIn):
            self._handle_degraded_packet_in(message)

    def _handle_degraded_packet_in(self, message: PacketIn) -> None:
        """Classify an orphaned-partition packet and send the verdict back.

        The NOX-style escape hatch of paper §4.3's failure story: when a
        partition has no reachable replica left, the ingress switch punts
        to the controller, which classifies against the full policy and
        returns a PacketOut.  Slow (a control round trip per packet) but
        never silent — degraded, not broken.
        """
        self.degraded_packet_ins += 1
        self._m_degraded_packet_ins.inc()
        if self._policy_table is None:
            self._policy_table = RuleTable(self.layout, self.policy)
        packet = message.packet
        winner = self._policy_table.lookup(packet)
        if winner is None:
            self.network.record_drop(packet, "controller", "no policy rule")
            return
        self.channels[message.switch].send_to_switch(
            PacketOut(switch=message.switch, packet=packet, actions=winner.actions)
        )

    def _control_message_lost(self, direction: str, message: Message) -> None:
        """A control message was permanently lost: account for its payload."""
        if isinstance(message, PacketIn):
            self.network.record_drop(
                message.packet, message.switch, "control channel lost"
            )

    def reinstate_authority(self, name: str) -> bool:
        """Make a repaired (or falsely-suspected) switch eligible again.

        Partitions are not moved back proactively — :meth:`rebalance` or
        the next failover will use the switch — but it rejoins the
        candidate pool.  Returns True when the list actually changed.

        Authority fragments the switch still holds from before it died
        (its partitions were re-homed while it was down, so the
        controller-side ``installed`` record is gone) are purged here:
        left in place they would shadow any fresh install with identical
        priority, so a later kill→recover→kill cycle double-counts the
        switch's rules and load.
        """
        if name in self.authority_switches:
            return False
        behaviour = self.network.maybe_node(name)
        if behaviour is not None and hasattr(behaviour, "purge_stale_authority_rules"):
            expected: List[Rule] = []
            for state in self._states.values():
                expected.extend(state.installed.get(name, ()))
            behaviour.purge_stale_authority_rules(expected)
        self.authority_switches.append(name)
        return True

    def assert_all_partitions_owned(self) -> int:
        """Invariant: every partition is deployed on live authority switches.

        Checks, for every partition: a non-empty owner list; every owner
        registered as an authority switch, alive, and holding installed
        fragments; and every ingress switch's partition rule pointing at
        the current primary.  Raises :class:`PartitionInvariantError`
        listing all violations; returns the number of partitions checked.

        Run this after every reconvergence (failover handling, rebalance,
        repair) — a clean pass means no redirected packet can black-hole
        on a stale partition rule.
        """
        problems: List[str] = []
        for pid, state in sorted(self._states.items()):
            if not state.owners:
                problems.append(f"partition {pid}: no owners")
                continue
            for owner in state.owners:
                if owner not in self.authority_switches:
                    problems.append(
                        f"partition {pid}: owner {owner!r} is not an authority switch"
                    )
                behaviour = self.network.maybe_node(owner)
                if behaviour is not None and not getattr(behaviour, "alive", True):
                    problems.append(f"partition {pid}: owner {owner!r} is dead")
                if state.partition.rules and not state.installed.get(owner):
                    problems.append(
                        f"partition {pid}: owner {owner!r} has no installed fragments"
                    )
            primary = state.owners[0]
            for switch_name, rule in sorted(state.partition_rules.items()):
                action = rule.actions.actions[0]
                if action.destination != primary:
                    problems.append(
                        f"partition {pid}: {switch_name} partition rule points at "
                        f"{action.destination!r}, primary is {primary!r}"
                    )
        if problems:
            raise PartitionInvariantError(
                f"{len(problems)} partition invariant violation(s): "
                + "; ".join(problems)
            )
        return len(self._states)

    def control_plane_counters(self) -> Dict[str, int]:
        """Aggregate attempted/delivered/retry/duplicate/lost counters
        across every control session (empty dict when no control plane)."""
        totals: Dict[str, int] = {}
        for channel in self.channels.values():
            for key, value in channel.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- initial distribution ----------------------------------------------------
    def install_policy(self, rules: Sequence[Rule]) -> PartitionResult:
        """Partition ``rules`` and push everything to the switches.

        Initial distribution is configuration time (offline); it is applied
        immediately rather than through latency-modelled messages.
        """
        self.policy = list(rules)
        self._policy_table = None
        num_partitions = len(self.authority_switches) * self.partitions_per_authority
        result = partition_policy(
            self.policy,
            self.layout,
            num_partitions=num_partitions,
            cut_strategy=self.cut_strategy,
        )
        assignment = assign_partitions(
            result.partitions, self.authority_switches, replication=self.replication
        )
        self.result = result
        self._states.clear()

        for partition in result.partitions:
            owners = assignment[partition.partition_id]
            state = _PartitionState(partition=partition, owners=list(owners))
            for owner in owners:
                switch = self._switch(owner)
                fragments = [rule.derive(kind=RuleKind.AUTHORITY) for rule in partition.rules]
                for fragment in fragments:
                    switch.install_rule(fragment)
                    self.control_messages += 1
                state.installed[owner] = fragments
            self._states[partition.partition_id] = state

        # Partition rules go to every switch (any switch can be an ingress).
        for name in self.network.topology.switches():
            switch = self._switch(name)
            for partition in result.partitions:
                state = self._states[partition.partition_id]
                rule = Rule(
                    match=Match(self.layout, partition.region),
                    priority=0,
                    actions=Encapsulate(
                        state.owners[0], backups=tuple(state.owners[1:])
                    ),
                    kind=RuleKind.PARTITION,
                )
                switch.install_rule(rule)
                state.partition_rules[name] = rule
                self.control_messages += 1
        return result

    # -- policy dynamics (paper §4.1) -----------------------------------------------
    def insert_rule(self, rule: Rule) -> int:
        """Add one policy rule at its priority; returns affected partitions.

        The new rule's clipped fragments are installed at the authority
        switches owning every partition it overlaps, and — for correctness
        — cache rules overlapping the new match are flushed everywhere
        (they may have been generated under the old, lower-priority
        winner).
        """
        if self.result is None:
            raise RuntimeError("install_policy must run before insert_rule")
        self.policy_updates += 1
        self._policy_table = None  # degraded-path classifier is stale
        self._insert_by_priority(rule)
        affected = 0
        for state in self._states.values():
            fragment_base = rule.clip_to(state.partition.region)
            if fragment_base is None:
                continue
            affected += 1
            state.partition.rules.append(fragment_base)
            state.partition.rules.sort(key=lambda r: -r.priority)
            for owner in state.owners:
                fragment = fragment_base.derive(kind=RuleKind.AUTHORITY)
                self._switch(owner).install_rule(fragment)
                state.installed[owner].append(fragment)
                self.control_messages += 1
        self._flush_caches(lambda cached: cached.match.intersects(rule.match))
        return affected

    def delete_rule(self, rule: Rule) -> int:
        """Remove one policy rule; returns affected partitions.

        Authority fragments derived from it are withdrawn and cache rules
        derived from it flushed.  Cache rules of *other* rules stay: their
        matches are subsets of their old win regions, which only grow when
        a higher-priority rule disappears, so they remain correct.
        """
        if self.result is None:
            raise RuntimeError("install_policy must run before delete_rule")
        self.policy_updates += 1
        self._policy_table = None  # degraded-path classifier is stale
        try:
            self.policy.remove(rule)
        except ValueError:
            raise ValueError("rule is not part of the installed policy") from None
        affected = 0
        for state in self._states.values():
            touched = False
            state.partition.rules = [
                fragment for fragment in state.partition.rules
                if fragment.root_origin() is not rule
            ]
            for owner in state.owners:
                fragments = state.installed[owner]
                doomed = [f for f in fragments if f.root_origin() is rule]
                for fragment in doomed:
                    self._switch(owner).uninstall_rule(fragment)
                    fragments.remove(fragment)
                    self.control_messages += 1
                    touched = True
            if touched:
                affected += 1
        self._flush_caches(lambda cached: cached.root_origin() is rule)
        return affected

    def _insert_by_priority(self, rule: Rule) -> None:
        index = 0
        while index < len(self.policy) and self.policy[index].priority >= rule.priority:
            index += 1
        self.policy.insert(index, rule)

    def _flush_caches(self, predicate) -> int:
        flushed_total = 0
        for name in self.network.topology.switches():
            switch = self._switch(name)
            flushed = switch.flush_cache_where(predicate)
            flushed_total += len(flushed)
            if flushed:
                self.control_messages += 1
        self.cache_entries_flushed += flushed_total
        return flushed_total

    # -- topology dynamics (paper §4.2) -----------------------------------------------
    def handle_link_failure(self, a: str, b: str) -> None:
        """React to a link failure: routing reconverges; partitions stand.

        This is the paper's separation argument made executable — no rule
        moves, no cache flush; only the link-state layer reacts.
        """
        self.network.topology.remove_link(a, b)
        self.network.rebuild_routes()

    def handle_host_move(self, host: str, new_switch: str) -> int:
        """Re-home ``host`` onto ``new_switch`` (paper §4.4, host mobility).

        Cached rules whose action forwards to the moved host are flushed
        at every switch (the paper's mechanism; idle timeouts are the
        backstop when the controller does not know about the move).
        Returns the number of flushed cache entries.
        """
        topology = self.network.topology
        old_switch = topology.host_attachment(host)
        spec = topology.link_spec(host, old_switch)
        topology.remove_link(host, old_switch)
        topology.add_link(host, new_switch, spec)
        self.network.rebuild_routes()
        return self._flush_caches(
            lambda cached: any(
                isinstance(action, Forward) and action.port == host
                for action in cached.actions
            )
        )

    def handle_authority_failure(self, failed: str) -> int:
        """Fail ``failed`` over to backups; returns re-pointed partitions.

        Partitions whose primary died promote their first live backup; if
        none exists the partition's fragments are re-installed on the
        least-loaded surviving authority switch.  Every ingress switch's
        partition rule for those partitions is re-pointed.

        The controller participates in the IGP, so it knows instantly
        which switches still have links: candidates with none (e.g. a
        backup that died moments ago, before its own heartbeat deadline)
        are never promoted.  A partition with no IGP-reachable candidate
        at all is left untouched — the data plane degrades to
        controller packet-in until a repair — rather than re-pointed at
        a switch known to be unreachable.
        """
        self._retire_authority(failed)
        repointed = 0
        for pid in sorted(self._states):
            if self.failover_partition(pid, failed):
                repointed += 1
        return repointed

    def dispatch_authority_failure(self, failed: str) -> int:
        """Route an authority failure through the shard plane when attached.

        With a :class:`~repro.core.shards.ShardedControlPlane` wired,
        only partitions whose owning shard is alive fail over now; the
        rest wait for the lease takeover.  Without one this is exactly
        :meth:`handle_authority_failure`.
        """
        if self.shard_plane is not None:
            return self.shard_plane.handle_authority_failure(failed)
        return self.handle_authority_failure(failed)

    def _retire_authority(self, failed: str) -> None:
        """Drop ``failed`` from the authority candidate pool."""
        if failed not in self.authority_switches:
            raise ValueError(f"{failed!r} is not an authority switch")
        self.authority_switches.remove(failed)
        if not self.authority_switches:
            raise RuntimeError("last authority switch failed; policy is unreachable")

    def failover_partition(self, pid: int, failed: str) -> bool:
        """Fail one partition over from ``failed``; True when re-pointed.

        The per-partition core of :meth:`handle_authority_failure`,
        callable on its own by the sharded control plane for deferred
        failovers (the dead authority is already retired from the pool).
        """
        state = self._states[pid]
        if failed not in state.owners:
            return False
        state.owners.remove(failed)
        state.installed.pop(failed, None)
        if not any(self._igp_reachable(owner) for owner in state.owners):
            replacement = self._least_loaded_authority()
            if replacement is None:
                return False  # nothing reachable to fail over to
            fragments = [
                rule.derive(kind=RuleKind.AUTHORITY)
                for rule in state.partition.rules
            ]
            switch = self._switch(replacement)
            for fragment in fragments:
                switch.install_rule(fragment)
                self.control_messages += 1
            state.owners = [replacement]
            state.installed[replacement] = fragments
        elif not self._igp_reachable(state.owners[0]):
            # Rotate the first reachable backup into the primary slot.
            best = next(o for o in state.owners if self._igp_reachable(o))
            state.owners.remove(best)
            state.owners.insert(0, best)
        self._repoint_partition_rules(state)
        return True

    def _repoint_partition_rules(self, state: "_PartitionState") -> None:
        """Re-point every ingress switch's partition rule at the current
        owner list (primary first)."""
        primary = state.owners[0]
        for switch_name, partition_rule in state.partition_rules.items():
            switch = self._switch(switch_name)
            switch.uninstall_rule(partition_rule)
            new_rule = Rule(
                match=partition_rule.match,
                priority=0,
                actions=Encapsulate(primary, backups=tuple(state.owners[1:])),
                kind=RuleKind.PARTITION,
            )
            switch.install_rule(new_rule)
            state.partition_rules[switch_name] = new_rule
            self.control_messages += 1

    def _igp_reachable(self, name: str) -> bool:
        """Link-state view: a switch with no remaining links is known
        unreachable immediately, without waiting on a heartbeat deadline."""
        return bool(self.network.topology.links_of(name))

    def _least_loaded_authority(self) -> Optional[str]:
        """Least-loaded IGP-reachable authority switch, or ``None``."""
        load = {
            name: 0 for name in self.authority_switches
            if self._igp_reachable(name)
        }
        if not load:
            return None
        for state in self._states.values():
            for owner in state.owners:
                if owner in load:
                    load[owner] += state.partition.entry_count
        return min(sorted(load), key=lambda name: load[name])

    # -- load monitoring & repartitioning (paper §4) ------------------------------------
    def partition_loads(self) -> Dict[int, int]:
        """Measured redirect load per partition (packets at the primary).

        Authority-rule counters at the primary owner count exactly the
        redirected traffic of that partition (cache hits never reach the
        authority switch), which is the load metric rebalancing uses.
        """
        loads: Dict[int, int] = {}
        for pid, state in self._states.items():
            primary = state.owners[0]
            fragments = state.installed.get(primary, [])
            loads[pid] = sum(fragment.packet_count for fragment in fragments)
        return loads

    def load_imbalance(self) -> float:
        """``max / mean`` primary load across authority switches (>= 1)."""
        per_switch: Dict[str, int] = {name: 0 for name in self.authority_switches}
        for pid, load in self.partition_loads().items():
            primary = self._states[pid].owners[0]
            if primary in per_switch:
                per_switch[primary] += load
        values = list(per_switch.values())
        mean = sum(values) / len(values) if values else 0.0
        if mean <= 0:
            return 1.0
        return max(values) / mean

    def rebalance(self) -> int:
        """Reassign partitions to balance *measured* redirect load.

        The initial assignment balances TCAM entries; once traffic flows,
        load can skew (hot partitions).  Greedy re-packing on measured
        load moves whole partitions between authority switches — fragments
        are installed at new owners, withdrawn from old ones, and every
        ingress switch's partition rule is re-pointed.  Returns the number
        of partitions whose primary moved.

        Caches stay valid: cache rules encode forwarding decisions, not
        authority locations, so no flush is needed.
        """
        loads = self.partition_loads()
        # Greedy: heaviest partitions first onto the least-loaded switch.
        order = sorted(self._states, key=lambda pid: (-loads[pid], pid))
        switch_load = {name: 0 for name in self.authority_switches}
        moved = 0
        for pid in order:
            state = self._states[pid]
            ranked = sorted(
                self.authority_switches, key=lambda name: (switch_load[name], name)
            )
            new_primary = ranked[0]
            switch_load[new_primary] += max(loads[pid], 1)
            old_owners = list(state.owners)
            if new_primary == old_owners[0]:
                continue
            moved += 1
            # Build the new owner list: new primary plus enough backups.
            backups = [name for name in old_owners if name != new_primary]
            new_owners = ([new_primary] + backups)[: max(len(old_owners), 1)]
            # Fragment counters at the old primary are the partition's load
            # history; MOVE them to the new primary (copy, then zero the
            # source) so post-move load measurements stay meaningful and
            # the transparency aggregation never double-counts.
            old_fragments = state.installed.get(old_owners[0], [])
            history = [fragment.packet_count for fragment in old_fragments]
            history_bytes = [fragment.byte_count for fragment in old_fragments]
            for fragment in old_fragments:
                fragment.packet_count = 0
                fragment.byte_count = 0
            # Install fragments at owners that lack them.
            for owner in new_owners:
                if owner in state.installed:
                    if owner == new_primary:
                        # Promoted backup: absorb the moved history.
                        for fragment, count, size in zip(
                            state.installed[owner], history, history_bytes
                        ):
                            fragment.packet_count += count
                            fragment.byte_count += size
                    continue
                fragments = [
                    rule.derive(kind=RuleKind.AUTHORITY)
                    for rule in state.partition.rules
                ]
                if owner == new_primary:
                    for fragment, count, size in zip(fragments, history, history_bytes):
                        fragment.packet_count = count
                        fragment.byte_count = size
                switch = self._switch(owner)
                for fragment in fragments:
                    switch.install_rule(fragment)
                    self.control_messages += 1
                state.installed[owner] = fragments
            # Withdraw from owners no longer used.
            for owner in old_owners:
                if owner in new_owners:
                    continue
                for fragment in state.installed.pop(owner, []):
                    self._switch(owner).uninstall_rule(fragment)
                    self.control_messages += 1
            state.owners = new_owners
            self._repoint_partition_rules(state)
        return moved

    # -- cache budget partitioning (cost-aware caching) ---------------------------------
    def partition_cache_budgets(
        self, total_budget: Optional[int] = None, floor: int = 1
    ) -> Dict[str, int]:
        """Partition a network-wide cache budget by per-ingress offered load.

        A switch's offered load is the ingress classifications it has seen
        (cache hits + local authority hits + redirects out) — the demand
        its cache region actually absorbs.  The total budget (default: the
        sum of current per-switch capacities, i.e. a pure reshuffle) is
        apportioned by the largest-remainder method with a per-switch
        ``floor``, deterministically (fractional-part descending, switch
        name ascending), then applied through
        :meth:`CacheManager.set_capacity` — a shrinking switch evicts down
        under its own policy.  Returns the budget map.
        """
        names = sorted(self.network.topology.switches())
        if not names:
            return {}
        switches = {name: self._switch(name) for name in names}
        if total_budget is None:
            total_budget = sum(s.cache.capacity for s in switches.values())
        if total_budget < 0:
            raise ValueError(f"total budget must be non-negative, got {total_budget}")
        base = min(max(floor, 0), total_budget // len(names))
        remaining = total_budget - base * len(names)
        loads = {
            name: s.cache_hits + s.authority_hits + s.redirects_out
            for name, s in switches.items()
        }
        total_load = sum(loads.values())
        budgets = {name: base for name in names}
        if remaining > 0:
            if total_load > 0:
                quotas = {
                    name: remaining * loads[name] / total_load for name in names
                }
            else:
                quotas = {name: remaining / len(names) for name in names}
            leftover = remaining
            for name in names:
                whole = int(quotas[name])
                budgets[name] += whole
                leftover -= whole
            order = sorted(
                names, key=lambda name: (-(quotas[name] - int(quotas[name])), name)
            )
            for name in order[:leftover]:
                budgets[name] += 1
        now = self.network.scheduler.now
        for name in names:
            switches[name].cache.set_capacity(budgets[name], now=now)
            self.control_messages += 1
        self.cache_budget_updates += 1
        return budgets

    # -- transparency: per-policy-rule statistics -------------------------------------
    def collect_policy_counters(self):
        """Fold every derived rule's counters back onto the policy rules.

        DIFANE splits, clips and caches the operator's rules, but the
        operator still expects per-rule packet/byte counts (what a
        FlowStatsRequest would return from one giant switch).  Every
        packet is classified exactly once — at an ingress cache rule, a
        local authority rule, or the redirect-target authority rule — so
        summing those counters per :meth:`Rule.root_origin` reconstructs
        the single-table statistics exactly.

        Returns a mapping ``policy rule -> CounterSnapshot``.
        """
        from repro.switch.counters import aggregate_counters

        derived = []
        for name in self.network.topology.switches():
            switch = self._switch(name)
            derived.extend(switch.pipeline.cache.rules())
            derived.extend(switch.pipeline.authority.rules())
        return aggregate_counters(derived)

    # -- helpers -----------------------------------------------------------------------
    def _switch(self, name: str) -> DifaneSwitch:
        return self.network.node(name)

    def partitions(self) -> List[Partition]:
        """The current partitions (post any dynamics)."""
        return [state.partition for state in self._states.values()]

    def owners_of(self, partition_id: int) -> List[str]:
        """Current owner list (primary first) of a partition."""
        return list(self._states[partition_id].owners)

    def __repr__(self) -> str:
        return (
            f"<DifaneController {len(self._states)} partitions over "
            f"{len(self.authority_switches)} authority switches>"
        )


class DifaneNetwork:
    """Facade: build a complete DIFANE deployment in one call.

    Example
    -------
    >>> topo = TopologyBuilder.three_tier_campus()
    >>> dn = DifaneNetwork.build(topo, rules, FIVE_TUPLE_LAYOUT,
    ...                          authority_count=2, cache_capacity=64)
    >>> dn.send(host, packet)
    >>> dn.run(until=1.0)
    """

    def __init__(self, network: SimNetwork, controller: DifaneController):
        self.network = network
        self.controller = controller

    @classmethod
    def build(
        cls,
        topology: Topology,
        rules: Sequence[Rule],
        layout: HeaderLayout,
        authority_count: int = 1,
        authority_switches: Optional[Sequence[str]] = None,
        placement: str = "central",
        cache_capacity: int = 1024,
        replication: int = 1,
        partitions_per_authority: int = 1,
        redirect_rate: Optional[float] = None,
        redirect_queue: int = 512,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
        eviction: EvictionPolicy = EvictionPolicy.LRU,
        cut_strategy: str = "split-aware",
        forwarding_delay_s: float = 0.0,
        prefetch_fragments: int = 1,
        engine=None,
        loss_seed: int = 0,
        cache_options: Optional[dict] = None,
    ) -> "DifaneNetwork":
        """Construct switches, controller and partitions over ``topology``.

        ``engine`` selects every switch's match-engine backend (see
        :mod:`repro.flowspace.engine`); ``None`` uses the process default.
        ``loss_seed`` seeds per-link loss/jitter draws (only consulted on
        links whose spec enables faults).
        """
        network = SimNetwork(topology, loss_seed=loss_seed)
        for name in topology.switches():
            network.register_node(
                DifaneSwitch(
                    name,
                    layout,
                    cache_capacity=cache_capacity,
                    redirect_rate=redirect_rate,
                    redirect_queue=redirect_queue,
                    idle_timeout=idle_timeout,
                    hard_timeout=hard_timeout,
                    eviction=eviction,
                    forwarding_delay_s=forwarding_delay_s,
                    prefetch_fragments=prefetch_fragments,
                    engine=engine,
                    cache_options=cache_options,
                )
            )
        if authority_switches is None:
            authority_switches = choose_authority_switches(
                topology, authority_count, strategy=placement
            )
        controller = DifaneController(
            network,
            layout,
            authority_switches,
            replication=replication,
            partitions_per_authority=partitions_per_authority,
            cut_strategy=cut_strategy,
        )
        controller.install_policy(rules)
        return cls(network, controller)

    # -- convenience -------------------------------------------------------------
    def send(self, host: str, packet: Packet) -> None:
        """Inject ``packet`` from ``host`` now."""
        self.network.inject_from_host(host, packet)

    def send_at(self, time: float, host: str, packet: Packet) -> None:
        """Schedule ``packet`` injection from ``host`` at absolute ``time``."""
        self.network.scheduler.schedule_at(
            time, self.network.inject_from_host, host, packet
        )

    def send_batch_at(self, time: float, switch: str, batch) -> None:
        """Schedule a columnar batch injection at ``switch`` at ``time``.

        One scheduler event carries the whole same-instant burst (see
        :meth:`SimNetwork.inject_batch_at_switch`); with columnar mode off
        the batch degrades to the scalar burst path at fire time, so the
        same workload schedule drives either mode.
        """
        self.network.scheduler.schedule_at(
            time, self.network.inject_batch_at_switch, switch, batch
        )

    def run(self, until: Optional[float] = None) -> int:
        """Run the event loop."""
        return self.network.run(until=until)

    def switch(self, name: str) -> DifaneSwitch:
        """The :class:`DifaneSwitch` behaviour at ``name``."""
        return self.network.node(name)

    def switches(self) -> List[DifaneSwitch]:
        """All switch behaviours."""
        return [self.network.node(n) for n in self.network.topology.switches()]

    # -- aggregate statistics --------------------------------------------------------
    def cache_hit_rate(self) -> float:
        """Fraction of ingress classifications served from the cache."""
        hits = sum(s.cache_hits for s in self.switches())
        local = sum(s.authority_hits for s in self.switches())
        misses = sum(s.redirects_out for s in self.switches())
        total = hits + local + misses
        return hits / total if total else 0.0

    def total_redirects(self) -> int:
        """Packets that detoured through an authority switch."""
        return sum(s.redirects_handled for s in self.switches())

    def policy_counters(self):
        """Per-policy-rule statistics (see
        :meth:`DifaneController.collect_policy_counters`)."""
        return self.controller.collect_policy_counters()

    def tcam_report(self) -> Dict[str, Dict[str, int]]:
        """Per-switch TCAM occupancy by region."""
        report = {}
        for switch in self.switches():
            report[switch.name] = {
                "cache": len(switch.pipeline.cache),
                "authority": len(switch.pipeline.authority),
                "partition": len(switch.pipeline.partition),
            }
        return report
