"""Policy preprocessing: prune rules that can never match.

Operator rule sets accumulate dead entries — rules completely covered by
higher-priority rules.  They waste TCAM in every partition they overlap,
so the DIFANE controller prunes them before partitioning (the paper notes
redundancy elimination as a preprocessing step; the analysis here is
exact, via header-space subtraction, not heuristic).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Rule
from repro.flowspace.table import RuleTable

__all__ = ["prune_shadowed_rules", "shadow_report"]


def prune_shadowed_rules(
    rules: Sequence[Rule],
    layout: HeaderLayout,
) -> Tuple[List[Rule], List[Rule]]:
    """Split ``rules`` into (live, shadowed).

    A rule is shadowed when the union of strictly higher-priority
    overlapping matches covers its entire match; removing it cannot change
    any lookup.  The live list preserves the original relative order.
    """
    table = RuleTable(layout, rules)
    shadowed = set(id(rule) for rule in table.shadowed_rules())
    live = [rule for rule in rules if id(rule) not in shadowed]
    dead = [rule for rule in rules if id(rule) in shadowed]
    return live, dead


def shadow_report(rules: Sequence[Rule], layout: HeaderLayout) -> dict:
    """Summary statistics of a policy's dead weight."""
    live, dead = prune_shadowed_rules(rules, layout)
    return {
        "total": len(rules),
        "live": len(live),
        "shadowed": len(dead),
        "shadowed_fraction": len(dead) / len(rules) if rules else 0.0,
    }
