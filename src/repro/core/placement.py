"""Authority-switch placement strategies.

The paper's stretch evaluation shows that *where* authority switches sit
determines the detour cost of cache misses.  These strategies pick
``count`` switches out of a topology:

* ``random`` — uniform choice (the pessimistic baseline);
* ``degree`` — highest-degree switches (hubs; cheap to compute);
* ``central`` — highest closeness centrality (minimizes expected detour);
* ``spread`` — greedy k-center (maximize mutual distance — good worst-case
  stretch when misses can go to the *closest* authority replica).
"""

from __future__ import annotations

import random
from typing import List

import networkx as nx

__all__ = ["choose_authority_switches", "choose_spare_switches"]


def choose_authority_switches(
    topology,
    count: int,
    strategy: str = "central",
    seed: int = 0,
) -> List[str]:
    """Pick ``count`` authority switches from ``topology``.

    Deterministic for a given (topology, strategy, seed).  Raises when the
    topology has fewer switches than requested.
    """
    switches = topology.switches()
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count > len(switches):
        raise ValueError(f"asked for {count} authority switches, only {len(switches)} exist")

    if strategy == "random":
        rng = random.Random(seed)
        return sorted(rng.sample(switches, count))

    graph = topology.graph.subgraph(switches)
    if strategy == "degree":
        ranked = sorted(switches, key=lambda s: (-graph.degree[s], s))
        return ranked[:count]

    if strategy == "central":
        centrality = nx.closeness_centrality(graph)
        ranked = sorted(switches, key=lambda s: (-centrality.get(s, 0.0), s))
        return ranked[:count]

    if strategy == "spread":
        return _k_center(graph, switches, count)

    raise ValueError(f"unknown placement strategy {strategy!r}")


def choose_spare_switches(
    topology,
    authorities,
    count: int,
    strategy: str = "central",
    seed: int = 0,
) -> List[str]:
    """Pick ``count`` spare authority candidates, excluding ``authorities``.

    The warm pool a rebalancer re-homes hot or orphaned partitions onto:
    the remaining switches ranked by the same placement strategies as
    :func:`choose_authority_switches`.  Deterministic for a given
    (topology, authorities, strategy, seed); returns fewer than ``count``
    when the topology runs out of non-authority switches.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    taken = set(authorities)
    ranked = choose_authority_switches(
        topology, len(topology.switches()), strategy=strategy, seed=seed
    )
    return [name for name in ranked if name not in taken][:count]


def _k_center(graph: nx.Graph, switches: List[str], count: int) -> List[str]:
    """Greedy k-center: start from the most central node, then repeatedly
    add the switch farthest (in hops) from the chosen set."""
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    centrality = nx.closeness_centrality(graph)
    chosen = [max(switches, key=lambda s: (centrality.get(s, 0.0), s))]
    while len(chosen) < count:
        def distance_to_chosen(switch: str) -> int:
            """Hop distance from ``switch`` to the nearest chosen one."""
            return min(lengths[switch].get(c, 0) for c in chosen)

        candidates = [s for s in switches if s not in chosen]
        chosen.append(max(candidates, key=lambda s: (distance_to_chosen(s), s)))
    return sorted(chosen)
