"""Policy-churn workloads (paper §4 dynamics).

Real controllers continuously insert and delete rules (short-lived ACL
exceptions, VM arrivals, operator edits).  :class:`ChurnWorkload`
generates a reproducible sequence of insert/delete operations against a
deployed :class:`~repro.core.controller.DifaneController` and records the
management cost of each — the data behind experiment E9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.flowspace.action import Drop, Forward
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Match, Rule
from repro.flowspace.ternary import Ternary
from repro.core.controller import DifaneController

__all__ = ["ChurnEvent", "ChurnWorkload"]


@dataclass
class ChurnEvent:
    """Outcome of one policy update."""

    kind: str                    # "insert" | "delete"
    rule: Rule
    affected_partitions: int
    control_messages: int
    cache_entries_flushed: int


class ChurnWorkload:
    """Drive a reproducible insert/delete sequence against a controller.

    Inserted rules are random narrow matches (host-pair style denies) —
    the kind of short-lived rule the paper's dynamics discussion worries
    about.  Deletions pick uniformly among rules this workload previously
    inserted, so the base policy is never destroyed.
    """

    def __init__(
        self,
        controller: DifaneController,
        layout: HeaderLayout,
        seed: int = 0,
        insert_fraction: float = 0.6,
    ):
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be within [0, 1]")
        self.controller = controller
        self.layout = layout
        self.insert_fraction = insert_fraction
        self._rng = random.Random(seed)
        self._inserted: List[Rule] = []
        self.events: List[ChurnEvent] = []

    def _random_rule(self) -> Rule:
        priority = self._rng.randint(1, 1 << 16)
        fields = {}
        if "nw_src" in self.layout:
            fields["nw_src"] = Ternary.from_prefix(
                self._rng.getrandbits(32), self._rng.choice([16, 24, 32]), 32
            )
        if "nw_dst" in self.layout:
            fields["nw_dst"] = Ternary.from_prefix(
                self._rng.getrandbits(32), self._rng.choice([24, 32]), 32
            )
        match = Match(self.layout, self.layout.pack_match(**fields))
        action = Drop() if self._rng.random() < 0.7 else Forward("quarantine")
        return Rule(match, priority, action)

    def step(self) -> ChurnEvent:
        """Apply one update and record its cost."""
        controller = self.controller
        do_insert = not self._inserted or self._rng.random() < self.insert_fraction
        messages_before = controller.control_messages
        flushed_before = controller.cache_entries_flushed
        if do_insert:
            rule = self._random_rule()
            affected = controller.insert_rule(rule)
            self._inserted.append(rule)
            kind = "insert"
        else:
            rule = self._inserted.pop(self._rng.randrange(len(self._inserted)))
            affected = controller.delete_rule(rule)
            kind = "delete"
        event = ChurnEvent(
            kind=kind,
            rule=rule,
            affected_partitions=affected,
            control_messages=controller.control_messages - messages_before,
            cache_entries_flushed=controller.cache_entries_flushed - flushed_before,
        )
        self.events.append(event)
        return event

    def run(self, steps: int) -> List[ChurnEvent]:
        """Apply ``steps`` updates; returns their events."""
        return [self.step() for _ in range(steps)]

    # -- summaries --------------------------------------------------------------
    def total_control_messages(self) -> int:
        """Control messages across all recorded events."""
        return sum(e.control_messages for e in self.events)

    def total_flushed(self) -> int:
        """Cache entries flushed across all recorded events."""
        return sum(e.cache_entries_flushed for e in self.events)
