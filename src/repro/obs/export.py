"""Metric export formats: Prometheus text exposition and JSONL series.

Both exporters consume the *snapshot* shapes (the ``metrics`` and
``telemetry`` sections of a ``difane-metrics/1`` document), not live
registry objects — so a saved metrics JSON can be re-exported offline,
and the CLI's ``--prom-out`` / ``--telemetry-out`` share code with
``repro report`` reading docs from disk.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["prometheus_text", "telemetry_jsonl_lines", "write_telemetry_jsonl"]

_KEY = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _parse_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split a rendered ``name{k=v,...}`` key into name + label pairs."""
    match = _KEY.match(key)
    if match is None:  # pragma: no cover - snapshot keys always match
        return key, []
    labels = []
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            label, _, value = part.partition("=")
            labels.append((label, value))
    return match.group("name"), labels


def _prom_labels(labels: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{label}="{value}"' for label, value in labels
    )
    return f"{{{rendered}}}" if rendered else ""


def _prom_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(metrics: Dict[str, Dict[str, object]]) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand to
    cumulative ``_bucket{le=...}`` samples plus ``_sum`` and ``_count``.
    Families are emitted sorted by name with one ``# TYPE`` line each.
    """
    families: Dict[Tuple[str, str], List[str]] = {}

    for kind in ("counter", "gauge"):
        for key, value in metrics.get(kind + "s", {}).items():
            name, labels = _parse_key(key)
            families.setdefault((name, kind), []).append(
                f"{name}{_prom_labels(labels)} {_prom_number(float(value))}"
            )

    for key, hist in metrics.get("histograms", {}).items():
        name, labels = _parse_key(key)
        lines = families.setdefault((name, "histogram"), [])
        cumulative = 0
        buckets = hist.get("buckets", {})

        def bound(text: str) -> float:
            return float("inf") if text == "+inf" else float(text)

        for upper in sorted(buckets, key=bound):
            cumulative += buckets[upper]
            le = "+Inf" if upper == "+inf" else upper
            lines.append(
                f"{name}_bucket{_prom_labels(list(labels) + [('le', le)])} "
                f"{cumulative}"
            )
        if "+inf" not in buckets:
            lines.append(
                f"{name}_bucket{_prom_labels(list(labels) + [('le', '+Inf')])} "
                f"{hist['count']}"
            )
        lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_number(hist['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {hist['count']}")

    out: List[str] = []
    for (name, kind), lines in sorted(families.items()):
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def telemetry_jsonl_lines(section: Dict[str, object]) -> List[str]:
    """One JSON line per telemetry window (time-series friendly)."""
    lines = []
    for window in section.get("windows", []):
        row = {
            "schema": section.get("schema"),
            "index": window["index"],
            "start": window["start"],
            "end": window["end"],
            "counters": window["counters"],
        }
        if "samples" in window:
            row["samples"] = window["samples"]
        lines.append(json.dumps(row, sort_keys=True))
    return lines


def write_telemetry_jsonl(
    path, section: Dict[str, object], findings: Optional[List[dict]] = None
) -> int:
    """Write a telemetry section as JSONL; returns the line count.

    Findings (when given) append after the windows, one line each with a
    ``"finding"`` wrapper so stream consumers can filter by shape.
    """
    lines = telemetry_jsonl_lines(section)
    for finding in findings if findings is not None else section.get("findings", []):
        lines.append(json.dumps({"finding": finding}, sort_keys=True))
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
