"""Structured packet-lifecycle tracing.

Every packet's trip through a DIFANE fabric is a small span tree:
ingress → cache-hit / redirect → authority handling → cache install →
delivery (or a drop / degradation with a cause).  The tracer records
those moments as typed events in a bounded ring buffer, cheap enough to
leave compiled in (a disabled tracer costs one attribute read per call
site) and exportable as JSONL for offline analysis.

The tracer is also an accounting oracle: terminal events (``delivered``
/ ``dropped``) are emitted from exactly the same code paths as
:class:`~repro.net.simnet.DeliveryRecord`, so — ring budget permitting —
:meth:`PacketTracer.accounting` must reconcile exactly with the
network's delivered/dropped totals.  The hypothesis suite asserts that
under randomized chaos schedules.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterable, List, Optional

__all__ = ["TraceKind", "TraceEvent", "PacketTracer", "records_like"]


class TraceKind:
    """Event-type vocabulary (plain strings, stable across exports)."""

    INGRESS = "ingress"                  # packet entered the network
    CACHE_HIT = "cache-hit"              # ingress cache rule matched
    AUTHORITY_HIT = "authority-hit"      # local authority rule matched
    REDIRECT = "redirect"                # partition rule: tunnel to authority
    FAILOVER = "failover"                # primary dead, backup chosen
    DEGRADED = "degraded"                # orphaned partition: controller punt
    AUTHORITY_HANDLE = "authority-handle"  # redirected packet served
    PUNT = "punt"                        # NOX-style PacketIn to controller
    INSTALL_SENT = "install-sent"        # authority pushed a cache rule
    INSTALL_RECEIVED = "install-received"  # ingress switch absorbed it
    DELIVERED = "delivered"              # terminal: reached its host
    DROPPED = "dropped"                  # terminal: lost (detail = reason)
    # Control-plane spans (subject is a rule / shard, not a packet).
    MIGRATE_START = "migrate-start"      # two-phase migration: install at target
    MIGRATE_FLIP = "migrate-flip"        # redirects re-pointed at the target
    MIGRATE_DONE = "migrate-done"        # source retired, migration complete
    SHARD_TAKEOVER = "shard-takeover"    # lease expired, new leader elected

    #: Terminal kinds: exactly one per packet that leaves the system.
    TERMINAL = frozenset({DELIVERED, DROPPED})


@dataclass
class TraceEvent:
    """One typed moment in a packet's lifecycle."""

    time: float
    kind: str
    packet_id: Optional[int]
    flow_id: Optional[int]
    node: Optional[str]
    detail: Optional[str] = None
    via_authority: bool = False
    via_controller: bool = False


class PacketTracer:
    """A ring-buffered recorder of :class:`TraceEvent`.

    Parameters
    ----------
    capacity:
        Ring budget; the oldest events are discarded beyond it (the
        ``truncated`` count in :meth:`accounting` tells you whether the
        window was big enough).
    enabled:
        Disabled (the default) the tracer records nothing; call sites
        check ``tracer.enabled`` before building event arguments, so the
        off cost is a single attribute read.
    """

    def __init__(self, capacity: int = 262_144, enabled: bool = False):
        self.capacity = capacity
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0

    # -- recording ------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: str,
        packet,
        node: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one event for ``packet`` (any object with packet fields)."""
        if not self.enabled:
            return
        self.recorded += 1
        self._events.append(
            TraceEvent(
                time=time,
                kind=kind,
                packet_id=getattr(packet, "packet_id", None),
                flow_id=getattr(packet, "flow_id", None),
                node=node,
                detail=detail,
                via_authority=getattr(packet, "via_authority", False),
                via_controller=getattr(packet, "via_controller", False),
            )
        )

    def record_batch(
        self,
        time: float,
        kind: str,
        packets: Iterable,
        node: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one event per packet of a same-instant burst.

        The columnar path's tracing hook: callers materialize the batch's
        scalar view only when the tracer is enabled, and the resulting
        events are element-wise identical to per-packet :meth:`record`
        calls (the ring sees the same sequence).
        """
        if not self.enabled:
            return
        append = self._events.append
        for packet in packets:
            self.recorded += 1
            append(
                TraceEvent(
                    time=time,
                    kind=kind,
                    packet_id=getattr(packet, "packet_id", None),
                    flow_id=getattr(packet, "flow_id", None),
                    node=node,
                    detail=detail,
                    via_authority=getattr(packet, "via_authority", False),
                    via_controller=getattr(packet, "via_controller", False),
                )
            )

    # -- reading --------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    @property
    def evicted(self) -> int:
        """Events silently pushed out of the ring by newer ones.

        A non-zero value means the ring budget was exceeded and every
        count derived from the buffer under-reports — reconciliation
        against the network's delivery log is only exact when this is 0.
        """
        return self.recorded - len(self._events)

    #: Historical name for :attr:`evicted`; kept because the property
    #: suite and external trace consumers read ``truncated``.
    truncated = evicted

    def accounting(self) -> Dict[str, int]:
        """Totals that must reconcile with the network's delivery log.

        ``delivered`` and ``dropped`` count terminal events; ``degraded``
        counts controller-punt fallbacks; ``ingress`` counts entries.
        ``evicted`` (alias ``truncated``) counts ring-buffer evictions:
        with ``evicted == 0`` the totals match ``SimNetwork`` exactly,
        otherwise the buffer provably under-reports by that many events.
        """
        totals = {
            "ingress": 0,
            "delivered": 0,
            "dropped": 0,
            "degraded": 0,
            "evicted": self.evicted,
            "truncated": self.truncated,
        }
        for event in self._events:
            if event.kind == TraceKind.INGRESS:
                totals["ingress"] += 1
            elif event.kind == TraceKind.DELIVERED:
                totals["delivered"] += 1
            elif event.kind == TraceKind.DROPPED:
                totals["dropped"] += 1
            elif event.kind == TraceKind.DEGRADED:
                totals["degraded"] += 1
        return totals

    def terminal_events_by_packet(self) -> Dict[Optional[int], List[TraceEvent]]:
        """Terminal events grouped by packet id (exactly-once checks)."""
        by_packet: Dict[Optional[int], List[TraceEvent]] = {}
        for event in self._events:
            if event.kind in TraceKind.TERMINAL:
                by_packet.setdefault(event.packet_id, []).append(event)
        return by_packet

    # -- export ---------------------------------------------------------------
    def write_jsonl(self, path_or_handle, extra: Optional[Dict[str, object]] = None) -> int:
        """Write buffered events as JSON Lines; returns the line count."""
        handle = path_or_handle
        opened = False
        if not hasattr(handle, "write"):
            handle = open(handle, "w")
            opened = True
        try:
            count = 0
            for event in self._events:
                row = asdict(event)
                if extra:
                    row.update(extra)
                handle.write(json.dumps(row, sort_keys=True) + "\n")
                count += 1
            return count
        finally:
            if opened:
                handle.close()

    def clear(self) -> None:
        """Drop every buffered event and reset the recorded count."""
        self._events.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<PacketTracer {state} {len(self._events)}/{self.capacity} events>"


def records_like(events: Iterable) -> List["_TraceRecord"]:
    """Adapt terminal trace events into delivery-record-like rows.

    Accepts :class:`TraceEvent` objects or plain dicts (the rows a trace
    JSONL decodes to).  The returned objects expose ``finished_at``,
    ``delivered``, ``via_authority`` and ``via_controller`` — the fields
    :mod:`repro.analysis.timeline` consumes — so rate/detour timelines
    can be built from a trace alone, without the network's record list.
    """
    rows: List[_TraceRecord] = []
    for event in events:
        if isinstance(event, dict):
            kind = event.get("kind")
            if kind not in TraceKind.TERMINAL:
                continue
            rows.append(
                _TraceRecord(
                    finished_at=float(event.get("time", 0.0)),
                    delivered=kind == TraceKind.DELIVERED,
                    via_authority=bool(event.get("via_authority", False)),
                    via_controller=bool(event.get("via_controller", False)),
                )
            )
        elif event.kind in TraceKind.TERMINAL:
            rows.append(
                _TraceRecord(
                    finished_at=event.time,
                    delivered=event.kind == TraceKind.DELIVERED,
                    via_authority=event.via_authority,
                    via_controller=event.via_controller,
                )
            )
    return rows


@dataclass
class _TraceRecord:
    finished_at: float
    delivered: bool
    via_authority: bool
    via_controller: bool
