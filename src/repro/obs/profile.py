"""Profiling hooks: per-stage wall-time histograms.

The simulator's cost model is simulated time; the *simulator's own*
cost is wall time, and that is what these hooks measure — how long the
event loop spends in each callback, how long an engine lookup takes,
how long the channel's send/retransmit machinery runs.  Stage timings
land in ``profile_stage_seconds{stage=...}`` histograms in the metrics
registry (excluded from golden comparisons: wall clocks are not
reproducible).

A disabled profiler costs one attribute read per call site; the
scheduler, pipeline and channel all check ``profiler.enabled`` before
touching the clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.obs.registry import Histogram, MetricsRegistry, NULL_METRIC

__all__ = ["Profiler", "STAGE_HISTOGRAM"]

#: Metric name every stage timing lands under (label: ``stage``).
STAGE_HISTOGRAM = "profile_stage_seconds"


class Profiler:
    """Wall-time stage timings feeding a :class:`MetricsRegistry`."""

    def __init__(self, registry: Optional[MetricsRegistry] = None, enabled: bool = False):
        self.registry = registry
        self.enabled = enabled and registry is not None
        self._children: Dict[str, Histogram] = {}

    def _child(self, stage: str):
        child = self._children.get(stage)
        if child is None:
            if self.registry is None:
                child = NULL_METRIC
            else:
                child = self.registry.histogram(STAGE_HISTOGRAM, stage=stage)
            self._children[stage] = child
        return child

    def observe(self, stage: str, seconds: float) -> None:
        """Record one measured duration for ``stage``."""
        if self.enabled:
            self._child(stage).observe(seconds)

    @contextmanager
    def stage(self, name: str):
        """Time a block: ``with profiler.stage("partition"): ...``."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self._child(name).observe(time.perf_counter() - started)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Profiler {state} {len(self._children)} stages>"
