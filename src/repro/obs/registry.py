"""The metrics registry: counters, gauges and histograms with labels.

DIFANE's evaluation is counters all the way down — throughput, miss
rate, redirect load, failover dips.  Before this layer every component
kept private integers (switch hit counts, pipeline stats, channel ARQ
counters, chaos drop attribution) and every experiment scraped them by
hand.  The registry is the one place those surfaces report into, and
its :meth:`MetricsRegistry.snapshot` is the canonical machine-readable
result of a run — the golden-regression tests diff exactly that.

Design constraints:

* **cheap** — components bind label children once (at attach/connect
  time) and the hot path is a single ``+=``;
* **no-op when disabled** — a disabled registry hands out a shared null
  metric whose operations do nothing, so benchmarks can price the
  observer itself (see ``bench_perf_core``);
* **mergeable** — :meth:`merged` combines registries associatively and
  commutatively (counters add, gauges max, histograms add bucket-wise),
  so multi-network experiments can fold their runs together.  The
  hypothesis suite pins those algebraic properties.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.sketch import (
    FixedWidthHistogram,
    QuantileSketch,
    SpaceSavingSketch,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "DEFAULT_TIME_BUCKETS",
]

#: Exponential wall-time buckets (seconds): 1 µs … ~8 s.
DEFAULT_TIME_BUCKETS = tuple(1e-6 * (2 ** i) for i in range(24))


class _NullMetric:
    """Shared do-nothing metric handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_repeated(self, value: float, count: int) -> None:
        pass

    def offer(self, key, count: int = 1) -> None:
        pass


NULL_METRIC = _NullMetric()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def export(self):
        return self.value

    def fresh(self) -> "Counter":
        return Counter()

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time level (queue depth, TCAM occupancy)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def export(self):
        return self.value

    def fresh(self) -> "Gauge":
        return Gauge()

    def merge_from(self, other: "Gauge") -> None:
        # max is associative and commutative; "highest level seen by any
        # constituent run" is the useful cross-run semantics for levels.
        self.value = max(self.value, other.value)


class Histogram:
    """A fixed-bucket histogram with exact min/max/sum/count.

    Quantile estimates interpolate within the winning bucket and are
    clamped to the observed ``[min, max]`` — so any quantile of a
    non-empty histogram is bounded by its samples (a property the
    hypothesis suite pins).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile, clamped to the observed range."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # The extreme quantiles are tracked exactly; bucket edges would
        # only blur them.
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative > rank:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                estimate = upper if upper is not None else lower
                break
        else:  # pragma: no cover - cumulative always reaches count
            estimate = self.max
        return min(max(estimate, self.min), self.max)

    def export(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                ("+inf" if index == len(self.bounds) else repr(self.bounds[index])): c
                for index, c in enumerate(self.bucket_counts)
                if c
            },
        }

    def fresh(self) -> "Histogram":
        return Histogram(self.bounds)

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)


_LabelKey = Tuple[Tuple[str, str], ...]

#: Snapshot section per metric kind.  The three classic sections are
#: always present (their shape is pinned by every existing golden); the
#: sketch sections appear only when such metrics exist, so documents
#: from sketch-free runs are byte-identical to before.
_KIND_SECTIONS = {
    "counter": "counters",
    "gauge": "gauges",
    "histogram": "histograms",
    "fixedhist": "fixed_histograms",
    "sketch": "sketches",
    "topk": "top_k",
}
_ALWAYS_SECTIONS = ("counters", "gauges", "histograms")


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, label_key: _LabelKey) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """One run's metric namespace.

    ``counter``/``gauge``/``histogram`` return the live child bound to
    the given labels — hold on to it and mutate it directly (the hot
    path never re-resolves names).  A disabled registry returns
    :data:`NULL_METRIC` from every accessor and snapshots to emptiness.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, str, _LabelKey], object] = {}

    # -- accessors ------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS, **labels
    ) -> Histogram:
        return self._get("histogram", lambda: Histogram(bounds), name, labels)

    def quantile_sketch(self, name: str, k: int = 256, **labels) -> QuantileSketch:
        """A memory-bounded mergeable quantile sketch (see :mod:`.sketch`)."""
        return self._get("sketch", lambda: QuantileSketch(k), name, labels)

    def top_k(self, name: str, k: int = 32, **labels) -> SpaceSavingSketch:
        """A Space-Saving heavy-hitter summary keeping ``k`` keys."""
        return self._get("topk", lambda: SpaceSavingSketch(k), name, labels)

    def fixed_histogram(
        self, name: str, width: float, lo: float = 0.0, bins: int = 64, **labels
    ) -> FixedWidthHistogram:
        """An exact fixed-width counting histogram with overflow bucket."""
        return self._get(
            "fixedhist", lambda: FixedWidthHistogram(width, lo, bins), name, labels
        )

    def _get(self, kind, factory, name, labels):
        if not self.enabled:
            return NULL_METRIC
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def value(self, name: str, **labels):
        """The exported value of one metric, or ``None`` when absent."""
        for kind in _KIND_SECTIONS:
            metric = self._metrics.get((kind, name, _label_key(labels)))
            if metric is not None:
                return metric.export()
        return None

    def sum_counters(self, name: str) -> float:
        """Sum of every label child of counter ``name``."""
        return sum(
            metric.value
            for (kind, metric_name, _), metric in self._metrics.items()
            if kind == "counter" and metric_name == name
        )

    def counter_items(self) -> Iterable[Tuple[str, str, float]]:
        """Every counter as ``(name, rendered_key, value)``.

        The telemetry recorder walks this between windows to compute
        per-window deltas; iteration order is insertion order, which the
        recorder re-sorts at export time.
        """
        for (kind, name, label_key), metric in self._metrics.items():
            if kind == "counter":
                yield name, _render_key(name, label_key), metric.value

    # -- lifecycle ------------------------------------------------------------
    def reset(self) -> None:
        """Forget every metric (children previously handed out go stale)."""
        self._metrics.clear()

    # -- export ---------------------------------------------------------------
    def snapshot(self, exclude_prefixes: Iterable[str] = ()) -> Dict[str, Dict[str, object]]:
        """A deterministic, JSON-safe dump of every metric.

        ``exclude_prefixes`` filters metric *names* (golden tests strip
        wall-clock ``profile_`` histograms, which are not reproducible).
        """
        exclude = tuple(exclude_prefixes)
        out: Dict[str, Dict[str, object]] = {
            section: {} for section in _ALWAYS_SECTIONS
        }
        for (kind, name, label_key), metric in self._metrics.items():
            if exclude and name.startswith(exclude):
                continue
            section = _KIND_SECTIONS[kind]
            out.setdefault(section, {})[_render_key(name, label_key)] = metric.export()
        return {section: dict(sorted(out[section].items())) for section in sorted(out)}

    def write_json(self, path, **extra) -> None:
        """Persist :meth:`snapshot` (plus ``extra`` top-level keys)."""
        document = dict(extra)
        document["metrics"] = self.snapshot()
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- merging --------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into this registry (in place)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                # fresh() preserves per-instance shape (histogram bounds,
                # sketch k) that a bare type(metric)() would lose.
                mine = metric.fresh()
                self._metrics[key] = mine
            mine.merge_from(metric)
        return self

    @classmethod
    def merged(cls, *registries: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry holding the fold of ``registries``."""
        result = cls()
        for registry in registries:
            result.merge_from(registry)
        return result

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state} {len(self._metrics)} metrics>"
