"""The process-wide observability run context.

One experiment run = one :class:`RunContext`: a metrics registry, a
packet tracer and a profiler that every component constructed during
the run binds to by default (``SimNetwork``, ``ServiceStation``,
``ControlChannel`` all resolve :func:`current` when not handed an
explicit registry).  The CLI, the benchmark harness and the golden
tests call :func:`fresh_run_context` before a run and snapshot after —
that snapshot *is* the run's canonical metrics JSON.

Explicit injection always wins: pass ``metrics=`` / ``tracer=`` to a
component and the context is never consulted, which is how the
overhead benchmark prices a fully disabled observer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.profile import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import DEFAULT_TELEMETRY_INTERVAL_S, TelemetryRecorder
from repro.obs.trace import PacketTracer

__all__ = [
    "RunContext",
    "current",
    "current_registry",
    "current_tracer",
    "current_profiler",
    "current_telemetry",
    "fresh_run_context",
    "install",
]


@dataclass
class RunContext:
    """The observability surfaces of one run."""

    metrics: MetricsRegistry
    tracer: PacketTracer
    profiler: Profiler
    telemetry: TelemetryRecorder


def _default_context() -> RunContext:
    metrics = MetricsRegistry()
    return RunContext(
        metrics=metrics,
        tracer=PacketTracer(enabled=False),
        profiler=Profiler(registry=metrics, enabled=False),
        telemetry=TelemetryRecorder(registry=metrics, enabled=False),
    )


_context: RunContext = _default_context()


def current() -> RunContext:
    """The active run context."""
    return _context


def current_registry() -> MetricsRegistry:
    return _context.metrics


def current_tracer() -> PacketTracer:
    return _context.tracer


def current_profiler() -> Profiler:
    return _context.profiler


def current_telemetry() -> TelemetryRecorder:
    return _context.telemetry


def install(context: RunContext) -> RunContext:
    """Make ``context`` the active run context; returns it."""
    global _context
    _context = context
    return context


def fresh_run_context(
    metrics_enabled: bool = True,
    trace: bool = False,
    trace_capacity: int = 262_144,
    profile: bool = False,
    telemetry=None,
) -> RunContext:
    """Install (and return) a brand-new run context.

    Components constructed *after* this call bind to the new surfaces;
    components built earlier keep their old bindings — contexts isolate
    runs, they do not rewire live objects.

    ``telemetry`` accepts ``True`` (sample at the default cadence), a
    positive float (sample every that-many simulated seconds), or
    ``None``/``False`` (disabled — no per-event cost in the scheduler).
    """
    metrics = MetricsRegistry(enabled=metrics_enabled)
    if telemetry is True:
        interval_s = DEFAULT_TELEMETRY_INTERVAL_S
    elif telemetry:
        interval_s = float(telemetry)
    else:
        interval_s = DEFAULT_TELEMETRY_INTERVAL_S
    recorder = TelemetryRecorder(
        registry=metrics,
        interval_s=interval_s,
        enabled=bool(telemetry) and metrics_enabled,
    )
    return install(
        RunContext(
            metrics=metrics,
            tracer=PacketTracer(capacity=trace_capacity, enabled=trace),
            profiler=Profiler(registry=metrics, enabled=profile),
            telemetry=recorder,
        )
    )
