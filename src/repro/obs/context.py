"""The process-wide observability run context.

One experiment run = one :class:`RunContext`: a metrics registry, a
packet tracer and a profiler that every component constructed during
the run binds to by default (``SimNetwork``, ``ServiceStation``,
``ControlChannel`` all resolve :func:`current` when not handed an
explicit registry).  The CLI, the benchmark harness and the golden
tests call :func:`fresh_run_context` before a run and snapshot after —
that snapshot *is* the run's canonical metrics JSON.

Explicit injection always wins: pass ``metrics=`` / ``tracer=`` to a
component and the context is never consulted, which is how the
overhead benchmark prices a fully disabled observer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.profile import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import PacketTracer

__all__ = [
    "RunContext",
    "current",
    "current_registry",
    "current_tracer",
    "current_profiler",
    "fresh_run_context",
    "install",
]


@dataclass
class RunContext:
    """The observability surfaces of one run."""

    metrics: MetricsRegistry
    tracer: PacketTracer
    profiler: Profiler


def _default_context() -> RunContext:
    metrics = MetricsRegistry()
    return RunContext(
        metrics=metrics,
        tracer=PacketTracer(enabled=False),
        profiler=Profiler(registry=metrics, enabled=False),
    )


_context: RunContext = _default_context()


def current() -> RunContext:
    """The active run context."""
    return _context


def current_registry() -> MetricsRegistry:
    return _context.metrics


def current_tracer() -> PacketTracer:
    return _context.tracer


def current_profiler() -> Profiler:
    return _context.profiler


def install(context: RunContext) -> RunContext:
    """Make ``context`` the active run context; returns it."""
    global _context
    _context = context
    return context


def fresh_run_context(
    metrics_enabled: bool = True,
    trace: bool = False,
    trace_capacity: int = 262_144,
    profile: bool = False,
) -> RunContext:
    """Install (and return) a brand-new run context.

    Components constructed *after* this call bind to the new surfaces;
    components built earlier keep their old bindings — contexts isolate
    runs, they do not rewire live objects.
    """
    metrics = MetricsRegistry(enabled=metrics_enabled)
    return install(
        RunContext(
            metrics=metrics,
            tracer=PacketTracer(capacity=trace_capacity, enabled=trace),
            profiler=Profiler(registry=metrics, enabled=profile),
        )
    )
