"""Health detectors over telemetry windows.

Each detector scans the exported ``difane-telemetry/1`` section and
emits structured **findings** — dicts with a detector name, severity,
the window they fired in, and a human-readable detail line.  Findings
ship inside the metrics document, so golden tests pin them and
``repro obs diff`` surfaces new ones as regressions.

Detectors (all thresholds are fixed constants: findings must be
byte-deterministic, so nothing here adapts to the data):

* **authority-imbalance** — Jain's fairness index over the per-window
  redirect load of the authority switches.  DIFANE's partitioning claim
  is that load stays balanced; an authority kill (chaos C1) collapses
  the survivors' fairness and this fires.
* **degraded-mode** — any window with controller-punt packets
  (orphaned partitions) is a critical finding: the data-plane-only
  invariant was violated.
* **cache-churn** — eviction spikes within one window (thrashing
  ingress caches under-provisioned for the working set).
* **top-switches** — informational: the heaviest switches by total
  data-plane work, for the report dashboards.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

__all__ = [
    "evaluate_telemetry",
    "jain_fairness",
    "IMBALANCE_FAIRNESS_THRESHOLD",
    "IMBALANCE_MIN_LOAD",
    "CACHE_CHURN_THRESHOLD",
    "TOP_K_SWITCHES",
]

#: Jain index below which per-window authority load counts as imbalanced
#: (1.0 = perfectly even; 1/n = one switch carries everything).
IMBALANCE_FAIRNESS_THRESHOLD = 0.8

#: Minimum redirects in a window before imbalance is judged — tiny
#: windows are all-noise (one redirect is always "imbalanced").
IMBALANCE_MIN_LOAD = 8

#: Cache evictions within one window that count as churn.
CACHE_CHURN_THRESHOLD = 16

#: Switches listed by the informational top-switches finding.
TOP_K_SWITCHES = 3

_SWITCH_LABEL = re.compile(r"\{switch=([^}]*)\}")


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``, 1.0 when empty."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def _switch_of(key: str) -> Optional[str]:
    match = _SWITCH_LABEL.search(key)
    return match.group(1) if match else None


def _per_switch(counters: Dict[str, float], prefix: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in counters.items():
        if key.startswith(prefix):
            switch = _switch_of(key)
            if switch is not None:
                out[switch] = out.get(switch, 0.0) + value
    return out


def _finding(detector, severity, window, detail) -> Dict[str, object]:
    return {
        "detector": detector,
        "severity": severity,
        "window": window["index"],
        "start": window["start"],
        "end": window["end"],
        "detail": detail,
    }


def evaluate_telemetry(section: Dict[str, object]) -> List[Dict[str, object]]:
    """Run every detector over an exported telemetry section.

    Returns findings sorted by ``(window, detector)`` — a pure function
    of the section, so identical runs yield identical findings.
    """
    windows = section.get("windows", [])
    findings: List[Dict[str, object]] = []

    # Which switches ever handled redirects: the fairness denominator.
    # Only switches that are authorities at all should count — an edge
    # switch that never handles redirects is not "starved".
    authority_totals: Dict[str, float] = {}
    for window in windows:
        for switch, value in _per_switch(
            window["counters"], "difane_redirects_handled_total"
        ).items():
            authority_totals[switch] = authority_totals.get(switch, 0.0) + value
    authorities = sorted(switch for switch, total in authority_totals.items() if total)

    for window in windows:
        counters = window["counters"]

        if len(authorities) >= 2:
            loads = _per_switch(counters, "difane_redirects_handled_total")
            per_authority = [loads.get(switch, 0.0) for switch in authorities]
            window_load = sum(per_authority)
            fairness = jain_fairness(per_authority)
            if window_load >= IMBALANCE_MIN_LOAD and fairness < IMBALANCE_FAIRNESS_THRESHOLD:
                shares = ", ".join(
                    f"{switch}={load:g}"
                    for switch, load in zip(authorities, per_authority)
                )
                findings.append(
                    _finding(
                        "authority-imbalance",
                        "warning",
                        window,
                        f"Jain fairness {fairness:.3f} over {window_load:g} "
                        f"redirects ({shares})",
                    )
                )

        degraded = sum(
            value for key, value in counters.items()
            if key.startswith("difane_degraded_packets_total")
        )
        if degraded > 0:
            findings.append(
                _finding(
                    "degraded-mode",
                    "critical",
                    window,
                    f"{degraded:g} packet(s) fell back to the controller "
                    f"(orphaned partition)",
                )
            )

        churn = sum(
            value for key, value in counters.items()
            if key.startswith("cache_evictions_total")
        )
        # Evictions also arrive as cumulative probe samples; use the
        # window-over-window delta of the max-merged level.
        if not churn:
            churn = _eviction_delta(windows, window)
        if churn >= CACHE_CHURN_THRESHOLD:
            findings.append(
                _finding(
                    "cache-churn",
                    "warning",
                    window,
                    f"{churn:g} cache evictions in one window",
                )
            )

    top = _top_switches(windows)
    if top and windows:
        last = windows[-1]
        detail = ", ".join(f"{switch}={total:g}" for switch, total in top)
        findings.append(
            _finding(
                "top-switches",
                "info",
                last,
                f"heaviest switches by data-plane work: {detail}",
            )
        )

    findings.sort(key=lambda f: (f["window"], f["detector"]))
    return findings


def _eviction_delta(windows, window) -> float:
    """Eviction increase in ``window`` from cumulative probe samples."""
    current = _eviction_level(window)
    if current is None:
        return 0.0
    previous = 0.0
    for earlier in windows:
        if earlier["index"] >= window["index"]:
            break
        level = _eviction_level(earlier)
        if level is not None:
            previous = level
    return max(0.0, current - previous)


def _eviction_level(window) -> Optional[float]:
    samples = window.get("samples")
    if not samples:
        return None
    levels = [
        value for key, value in samples.items()
        if key.startswith("difane_cache_evictions")
    ]
    return sum(levels) if levels else None


_WORK_PREFIXES = (
    "difane_cache_hits_total",
    "difane_authority_hits_total",
    "difane_redirects_out_total",
    "difane_redirects_handled_total",
)


def _top_switches(windows) -> List:
    totals: Dict[str, float] = {}
    for window in windows:
        for prefix in _WORK_PREFIXES:
            for switch, value in _per_switch(window["counters"], prefix).items():
                totals[switch] = totals.get(switch, 0.0) + value
    # Switches with zero total work are not "heavy" — an all-zero load
    # series (e.g. counters explicitly exported as 0.0) must not produce
    # a spurious finding.
    ranked = sorted(
        ((switch, total) for switch, total in totals.items() if total),
        key=lambda kv: (-kv[1], kv[0]),
    )
    return ranked[:TOP_K_SWITCHES]
