"""Health detectors over telemetry windows.

Each detector scans the exported ``difane-telemetry/1`` section and
emits structured **findings** — dicts with a detector name, severity,
the window they fired in, and a human-readable detail line.  Findings
ship inside the metrics document, so golden tests pin them and
``repro obs diff`` surfaces new ones as regressions.

Detectors (all thresholds are fixed constants: findings must be
byte-deterministic, so nothing here adapts to the data):

* **authority-imbalance** — Jain's fairness index over the per-window
  redirect load of the authority switches.  DIFANE's partitioning claim
  is that load stays balanced; an authority kill (chaos C1) collapses
  the survivors' fairness and this fires.
* **degraded-mode** — any window with controller-punt packets
  (orphaned partitions) is a critical finding: the data-plane-only
  invariant was violated.
* **cache-churn** — eviction spikes within one window (thrashing
  ingress caches under-provisioned for the working set).
* **top-switches** — informational: the heaviest switches by total
  data-plane work, for the report dashboards.
* **slo-burn / slo-exhausted** — per-class SLO evaluation (only when the
  telemetry section carries ``slo_specs``): each class's windows are
  judged against its :class:`~repro.obs.qos.SloSpec` targets, and
  multi-window burn rates over the resulting error budget emit a
  warning when the budget is burning fast (short *and* long trailing
  burn above threshold) and a critical, once, when the run's whole
  budget is spent.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional

from repro.obs.qos import bucket_quantile

__all__ = [
    "evaluate_telemetry",
    "jain_fairness",
    "slo_report",
    "qos_class_summary",
    "IMBALANCE_FAIRNESS_THRESHOLD",
    "IMBALANCE_MIN_LOAD",
    "CACHE_CHURN_THRESHOLD",
    "TOP_K_SWITCHES",
    "SLO_SHORT_WINDOWS",
    "SLO_LONG_WINDOWS",
    "SLO_BURN_THRESHOLD",
]

#: Jain index below which per-window authority load counts as imbalanced
#: (1.0 = perfectly even; 1/n = one switch carries everything).
IMBALANCE_FAIRNESS_THRESHOLD = 0.8

#: Minimum redirects in a window before imbalance is judged — tiny
#: windows are all-noise (one redirect is always "imbalanced").
IMBALANCE_MIN_LOAD = 8

#: Cache evictions within one window that count as churn.
CACHE_CHURN_THRESHOLD = 16

#: Switches listed by the informational top-switches finding.
TOP_K_SWITCHES = 3

#: Trailing eligible windows in the *short* (fast) burn-rate window.
SLO_SHORT_WINDOWS = 3

#: Trailing eligible windows in the *long* (sustained) burn-rate window.
SLO_LONG_WINDOWS = 12

#: Burn-rate multiple of the budget that, sustained in both windows
#: while the current window is bad, emits the slo-burn warning.
SLO_BURN_THRESHOLD = 2.0

_SWITCH_LABEL = re.compile(r"\{switch=([^}]*)\}")
_CLASS_LABEL = re.compile(r"[{,]flow_class=([^,}]*)")
_LE_LABEL = re.compile(r"[{,]le=([^,}]*)")


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``, 1.0 when empty."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def _switch_of(key: str) -> Optional[str]:
    match = _SWITCH_LABEL.search(key)
    return match.group(1) if match else None


def _per_switch(counters: Dict[str, float], prefix: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in counters.items():
        if key.startswith(prefix):
            switch = _switch_of(key)
            if switch is not None:
                out[switch] = out.get(switch, 0.0) + value
    return out


def _finding(detector, severity, window, detail) -> Dict[str, object]:
    return {
        "detector": detector,
        "severity": severity,
        "window": window["index"],
        "start": window["start"],
        "end": window["end"],
        "detail": detail,
    }


def evaluate_telemetry(section: Dict[str, object]) -> List[Dict[str, object]]:
    """Run every detector over an exported telemetry section.

    Returns findings sorted by ``(window, detector)`` — a pure function
    of the section, so identical runs yield identical findings.
    """
    windows = section.get("windows", [])
    findings: List[Dict[str, object]] = []

    # Which switches ever handled redirects: the fairness denominator.
    # Only switches that are authorities at all should count — an edge
    # switch that never handles redirects is not "starved".
    authority_totals: Dict[str, float] = {}
    for window in windows:
        for switch, value in _per_switch(
            window["counters"], "difane_redirects_handled_total"
        ).items():
            authority_totals[switch] = authority_totals.get(switch, 0.0) + value
    authorities = sorted(switch for switch, total in authority_totals.items() if total)

    for window in windows:
        counters = window["counters"]

        if len(authorities) >= 2:
            loads = _per_switch(counters, "difane_redirects_handled_total")
            per_authority = [loads.get(switch, 0.0) for switch in authorities]
            window_load = sum(per_authority)
            fairness = jain_fairness(per_authority)
            if window_load >= IMBALANCE_MIN_LOAD and fairness < IMBALANCE_FAIRNESS_THRESHOLD:
                shares = ", ".join(
                    f"{switch}={load:g}"
                    for switch, load in zip(authorities, per_authority)
                )
                findings.append(
                    _finding(
                        "authority-imbalance",
                        "warning",
                        window,
                        f"Jain fairness {fairness:.3f} over {window_load:g} "
                        f"redirects ({shares})",
                    )
                )

        degraded = sum(
            value for key, value in counters.items()
            if key.startswith("difane_degraded_packets_total")
        )
        if degraded > 0:
            findings.append(
                _finding(
                    "degraded-mode",
                    "critical",
                    window,
                    f"{degraded:g} packet(s) fell back to the controller "
                    f"(orphaned partition)",
                )
            )

        churn = sum(
            value for key, value in counters.items()
            if key.startswith("cache_evictions_total")
        )
        # Evictions also arrive as cumulative probe samples; use the
        # window-over-window delta of the max-merged level.
        if not churn:
            churn = _eviction_delta(windows, window)
        if churn >= CACHE_CHURN_THRESHOLD:
            findings.append(
                _finding(
                    "cache-churn",
                    "warning",
                    window,
                    f"{churn:g} cache evictions in one window",
                )
            )

    top = _top_switches(windows)
    if top and windows:
        last = windows[-1]
        detail = ", ".join(f"{switch}={total:g}" for switch, total in top)
        findings.append(
            _finding(
                "top-switches",
                "info",
                last,
                f"heaviest switches by data-plane work: {detail}",
            )
        )

    if section.get("slo_specs"):
        findings.extend(slo_report(section)["findings"])

    findings.sort(key=lambda f: (f["window"], f["detector"]))
    return findings


def _eviction_delta(windows, window) -> float:
    """Eviction increase in ``window`` from cumulative probe samples."""
    current = _eviction_level(window)
    if current is None:
        return 0.0
    previous = 0.0
    for earlier in windows:
        if earlier["index"] >= window["index"]:
            break
        level = _eviction_level(earlier)
        if level is not None:
            previous = level
    return max(0.0, current - previous)


def _eviction_level(window) -> Optional[float]:
    samples = window.get("samples")
    if not samples:
        return None
    levels = [
        value for key, value in samples.items()
        if key.startswith("difane_cache_evictions")
    ]
    return sum(levels) if levels else None


_WORK_PREFIXES = (
    "difane_cache_hits_total",
    "difane_authority_hits_total",
    "difane_redirects_out_total",
    "difane_redirects_handled_total",
)


def _top_switches(windows) -> List:
    totals: Dict[str, float] = {}
    for window in windows:
        for prefix in _WORK_PREFIXES:
            for switch, value in _per_switch(window["counters"], prefix).items():
                totals[switch] = totals.get(switch, 0.0) + value
    # Switches with zero total work are not "heavy" — an all-zero load
    # series (e.g. counters explicitly exported as 0.0) must not produce
    # a spurious finding.
    ranked = sorted(
        ((switch, total) for switch, total in totals.items() if total),
        key=lambda kv: (-kv[1], kv[0]),
    )
    return ranked[:TOP_K_SWITCHES]


# -- per-class SLO evaluation ------------------------------------------------

def _class_stats(counters: Dict[str, float]) -> Dict[str, Dict[str, object]]:
    """Aggregate one window's ``qos_*`` counters per flow class.

    The per-switch split the counters carry is irrelevant to SLO math —
    a class's miss rate is network-wide — so everything folds down to
    per-class sums (plus the latency histogram's per-bucket sums).
    """
    stats: Dict[str, Dict[str, object]] = {}
    for key, value in counters.items():
        if not key.startswith("qos_"):
            continue
        label = _CLASS_LABEL.search(key)
        if label is None:
            continue
        entry = stats.setdefault(label.group(1), {
            "cache_hits": 0.0, "authority_hits": 0.0, "redirects": 0.0,
            "delivered": 0.0, "dropped": 0.0, "shed": 0.0, "buckets": {},
        })
        name = key.split("{", 1)[0]
        if name == "qos_redirect_delay_bucket_total":
            le = _LE_LABEL.search(key)
            if le is not None:
                buckets = entry["buckets"]
                buckets[le.group(1)] = buckets.get(le.group(1), 0.0) + value
        elif name == "qos_cache_hits_total":
            entry["cache_hits"] += value
        elif name == "qos_authority_hits_total":
            entry["authority_hits"] += value
        elif name == "qos_redirects_total":
            entry["redirects"] += value
        elif name == "qos_delivered_total":
            entry["delivered"] += value
        elif name == "qos_dropped_total":
            entry["dropped"] += value
        elif name == "qos_shed_total":
            entry["shed"] += value
    return stats


def _violations(stats: Optional[Dict[str, object]], spec: Dict[str, object]) -> List[str]:
    """Which of the spec's targets this window's class stats violate."""
    reasons: List[str] = []
    if stats is None:
        return reasons
    target = spec.get("miss_rate_target")
    lookups = stats["cache_hits"] + stats["authority_hits"] + stats["redirects"]
    if target is not None and lookups > 0:
        miss = stats["redirects"] / lookups
        if miss > target:
            reasons.append(f"miss-rate {miss:.3f} > {target:g}")
    target = spec.get("latency_target_s")
    if target is not None:
        quantile = float(spec.get("latency_quantile", 0.99))
        observed = bucket_quantile(stats["buckets"], quantile)
        if observed is not None and observed > target:
            reasons.append(
                f"p{100 * quantile:g} redirect latency {observed:g}s > {target:g}s"
            )
    target = spec.get("delivery_target")
    outcomes = stats["delivered"] + stats["dropped"]
    if target is not None and outcomes > 0:
        rate = stats["delivered"] / outcomes
        if rate < target:
            reasons.append(f"delivery {rate:.3f} < {target:g}")
    return reasons


def slo_report(section: Dict[str, object]) -> Dict[str, object]:
    """Evaluate every exported SLO spec over the telemetry windows.

    Per class: a window is **eligible** when the class saw any traffic
    in it, **bad** when any configured target is violated.  The error
    budget allows ``budget × eligible`` bad windows across the run;
    trailing burn rates over :data:`SLO_SHORT_WINDOWS` /
    :data:`SLO_LONG_WINDOWS` eligible windows emit ``slo-burn``
    (warning) while the budget drains fast, and ``slo-exhausted``
    (critical) fires once when the cumulative bad count exceeds the
    run's whole allowance — immediately on the first bad window when
    the budget is zero.  Pure function of the section: identical runs
    yield identical findings, so goldens can pin them.
    """
    specs = section.get("slo_specs") or []
    windows = section.get("windows", [])
    per_window = [_class_stats(window["counters"]) for window in windows]
    findings: List[Dict[str, object]] = []
    summary: Dict[str, Dict[str, object]] = {}
    for spec in sorted(specs, key=lambda s: s["flow_class"]):
        cls = spec["flow_class"]
        budget = float(spec.get("budget", 0.0))
        judged = []  # (window, eligible, reasons) in window order
        for window, stats_by_class in zip(windows, per_window):
            stats = stats_by_class.get(cls)
            eligible = stats is not None and (
                stats["cache_hits"] + stats["authority_hits"]
                + stats["redirects"] + stats["delivered"] + stats["dropped"]
            ) > 0
            judged.append((window, eligible, _violations(stats, spec)))
        total_eligible = sum(1 for _, eligible, _ in judged if eligible)
        allowed = budget * total_eligible
        history: List[bool] = []  # badness per eligible window, in order
        cum_bad = 0
        exhausted = False
        max_short = 0.0
        max_long = 0.0
        burn_findings = 0
        exhausted_findings = 0
        for window, eligible, reasons in judged:
            if not eligible:
                continue
            bad = bool(reasons)
            history.append(bad)
            if bad:
                cum_bad += 1
            if budget > 0 and len(history) >= SLO_SHORT_WINDOWS:
                # Warm-up gate: a burn rate over fewer windows than the
                # short detector's span is all cold-start noise (the very
                # first bad window would read as a 1/budget-x burn).
                short = history[-SLO_SHORT_WINDOWS:]
                long = history[-SLO_LONG_WINDOWS:]
                short_burn = (sum(short) / len(short)) / budget
                long_burn = (sum(long) / len(long)) / budget
                max_short = max(max_short, short_burn)
                max_long = max(max_long, long_burn)
                if (
                    bad
                    and short_burn >= SLO_BURN_THRESHOLD
                    and long_burn >= SLO_BURN_THRESHOLD
                ):
                    burn_findings += 1
                    findings.append(
                        _finding(
                            "slo-burn",
                            "warning",
                            window,
                            f"class {cls}: burning {short_burn:.2f}x/"
                            f"{long_burn:.2f}x of budget {budget:g} "
                            f"({'; '.join(reasons)})",
                        )
                    )
            if not exhausted and bad and cum_bad > allowed:
                exhausted = True
                exhausted_findings += 1
                findings.append(
                    _finding(
                        "slo-exhausted",
                        "critical",
                        window,
                        f"class {cls}: {cum_bad} bad of {total_eligible} "
                        f"eligible windows exceeds error budget {budget:g} "
                        f"({'; '.join(reasons)})",
                    )
                )
        remaining = (
            (allowed - cum_bad) / allowed if allowed > 0
            else (1.0 if cum_bad == 0 else 0.0)
        )
        summary[cls] = {
            "bad_windows": cum_bad,
            "budget": budget,
            "budget_remaining": round(remaining, 6),
            "burn_findings": burn_findings,
            "eligible_windows": total_eligible,
            "exhausted_findings": exhausted_findings,
            "max_burn_long": round(max_long, 4),
            "max_burn_short": round(max_short, 4),
        }
    return {"findings": findings, "summary": summary}


def qos_class_summary(section: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Whole-run per-class traffic totals from the windowed qos counters.

    Empty (falsy) when the run recorded no per-class counters at all, so
    callers can gate the extra document section on it.
    """
    totals: Dict[str, Dict[str, object]] = {}
    for window in section.get("windows", []):
        for cls, stats in _class_stats(window["counters"]).items():
            entry = totals.setdefault(cls, {
                "cache_hits": 0.0, "authority_hits": 0.0, "redirects": 0.0,
                "delivered": 0.0, "dropped": 0.0, "shed": 0.0, "buckets": {},
            })
            for field in (
                "cache_hits", "authority_hits", "redirects",
                "delivered", "dropped", "shed",
            ):
                entry[field] += stats[field]
            for label, value in stats["buckets"].items():
                entry["buckets"][label] = entry["buckets"].get(label, 0.0) + value
    out: Dict[str, Dict[str, object]] = {}
    for cls in sorted(totals):
        entry = totals[cls]
        lookups = entry["cache_hits"] + entry["authority_hits"] + entry["redirects"]
        p99 = bucket_quantile(entry["buckets"], 0.99)
        if p99 is not None and math.isinf(p99):
            p99 = None  # overflow bucket: beyond the histogram's range
        out[cls] = {
            "authority_hits": entry["authority_hits"],
            "cache_hits": entry["cache_hits"],
            "delivered": entry["delivered"],
            "dropped": entry["dropped"],
            "miss_rate": (
                round(entry["redirects"] / lookups, 6) if lookups > 0 else None
            ),
            "redirect_p99_s": p99,
            "redirects": entry["redirects"],
            "shed": entry["shed"],
        }
    return out
