"""Canonical drop-reason attribution.

Every ``record_drop`` carries a free-form reason string (often with
dynamic parts — ``"link loss s0->s1"``).  This module maps reasons onto
a small, stable bucket vocabulary used both for the registry's
``packets_dropped_total{reason=...}`` label (bounded cardinality) and
for the chaos soak's loss-attribution table.

Historically the table lived inside :mod:`repro.experiments.chaos` and
missed ``"controller overloaded"`` — :class:`ServiceStation` queue
drops at a saturated NOX controller were counted by the station but
landed in *unattributed*, under-reporting overload loss.  Centralising
the table here fixes that once for every consumer.
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Dict, Iterable, List, Tuple

__all__ = ["DROP_ATTRIBUTION", "attribute_reason", "attribute_drops"]

#: Drop-reason prefixes → attribution buckets, first match wins.
#: Anything that lands in no bucket is *unattributed* — chaos soaks
#: target zero of those.
DROP_ATTRIBUTION: List[Tuple[str, str]] = [
    ("link loss", "link-loss"),
    ("unreachable", "black-hole"),
    ("no link", "black-hole"),
    ("no behaviour registered", "black-hole"),
    ("authority unreachable", "black-hole"),
    ("authority miss", "black-hole"),
    ("policy drop", "policy-intent"),
    ("no policy rule", "policy-intent"),
    ("no matching rule", "policy-intent"),
    ("no terminal action", "policy-intent"),
    ("punt without controller", "policy-intent"),
    ("control channel lost", "control-lost"),
    ("admission shed", "admission-control"),
    ("authority overloaded", "overload"),
    ("switch overloaded", "overload"),
    ("controller overloaded", "overload"),
]

_cache: Dict[str, str] = {}


def attribute_reason(reason: str) -> str:
    """The attribution bucket for one drop-reason string.

    Unknown reasons return ``"unattributed"``.  Results are memoised —
    reasons repeat heavily (per-link strings are drawn from a finite
    topology) so the prefix scan runs once per distinct string.
    """
    bucket = _cache.get(reason)
    if bucket is None:
        for prefix, name in DROP_ATTRIBUTION:
            if reason.startswith(prefix):
                bucket = name
                break
        else:
            bucket = "unattributed"
        _cache[reason] = bucket
    return bucket


def attribute_drops(records: Iterable) -> _Counter:
    """Bucket every drop record by failure cause."""
    buckets: _Counter = _Counter()
    for record in records:
        if record.delivered:
            continue
        buckets[attribute_reason(record.drop_reason or "")] += 1
    return buckets
