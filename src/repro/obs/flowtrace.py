"""Flow-causal analysis of the packet trace stream.

The :class:`~repro.obs.trace.PacketTracer` emits a flat, time-ordered
event stream; the DIFANE-vs-NOX argument is about *structure* — where a
first packet's latency goes.  This module folds the stream back into
per-packet spans grouped into per-flow trees, and decomposes each
packet's life into named stages:

``ingress`` → ``redirect`` (travel to the authority switch, including
failover re-steering) → ``authority-handle`` (redirect-queue wait plus
authority classification) → ``install`` (cache-rule push back to the
ingress switch) → ``delivery`` (the remaining trip to the host), with
``controller-punt`` covering the degraded/NOX detour.

The decomposition telescopes: the per-stage durations of a packet sum
exactly to its terminal latency (a hypothesis property in
``tests/test_flowtrace.py``), so the stage split is an attribution of
the measured latency, never an estimate alongside it.  The miss-penalty
CDF — latency of packets that took the authority/controller detour vs
cache hits — is the paper's Figure-10 claim, derivable here from any
trace JSONL without rerunning the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.series import Series
from repro.obs.trace import TraceEvent, TraceKind

__all__ = ["PacketSpan", "FlowTrace", "FlowTraceAnalysis", "STAGE_OF_KIND", "STAGES"]

#: Stage charged for the segment *starting* at an event of this kind.
#: Kinds absent here (terminal events, install-received) never start a
#: segment that needs attribution.
STAGE_OF_KIND = {
    TraceKind.INGRESS: "ingress",
    TraceKind.CACHE_HIT: "delivery",
    TraceKind.AUTHORITY_HIT: "delivery",
    TraceKind.REDIRECT: "redirect",
    TraceKind.FAILOVER: "redirect",
    TraceKind.AUTHORITY_HANDLE: "authority-handle",
    TraceKind.INSTALL_SENT: "install",
    TraceKind.INSTALL_RECEIVED: "install",
    TraceKind.DEGRADED: "controller-punt",
    TraceKind.PUNT: "controller-punt",
}

#: Canonical stage order for reports.
STAGES = (
    "ingress",
    "redirect",
    "authority-handle",
    "install",
    "controller-punt",
    "delivery",
)

#: Path classes in precedence order: the first marker kind present in a
#: packet's events decides its class.
_PATH_PRECEDENCE = (
    (TraceKind.DEGRADED, "degraded"),
    (TraceKind.PUNT, "controller-punt"),
    (TraceKind.REDIRECT, "redirect"),
    (TraceKind.AUTHORITY_HIT, "authority-local"),
    (TraceKind.CACHE_HIT, "cache-hit"),
)

#: Path classes whose first-packet latency is a "miss penalty" (the
#: packet left the pure ingress-cache fast path).
MISS_PATHS = frozenset({"redirect", "degraded", "controller-punt", "authority-local"})


@dataclass
class PacketSpan:
    """One packet's reconstructed lifecycle."""

    packet_id: int
    flow_id: Optional[int]
    path: str                       # cache-hit / redirect / degraded / ...
    delivered: bool
    start: float
    end: float
    #: stage name → summed seconds; telescopes to ``end - start``.
    stages: Dict[str, float]
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class FlowTrace:
    """All spans of one flow, in packet order."""

    flow_id: Optional[int]
    spans: List[PacketSpan]

    @property
    def first(self) -> PacketSpan:
        return self.spans[0]

    @property
    def total_latency(self) -> float:
        return sum(span.latency for span in self.spans)


def _as_event(row) -> TraceEvent:
    if isinstance(row, TraceEvent):
        return row
    return TraceEvent(
        time=float(row.get("time", 0.0)),
        kind=row["kind"],
        packet_id=row.get("packet_id"),
        flow_id=row.get("flow_id"),
        node=row.get("node"),
        detail=row.get("detail"),
        via_authority=bool(row.get("via_authority", False)),
        via_controller=bool(row.get("via_controller", False)),
    )


def _classify_path(kinds: frozenset) -> str:
    for marker, path in _PATH_PRECEDENCE:
        if marker in kinds:
            return path
    return "unknown"


class FlowTraceAnalysis:
    """Per-flow span trees over a trace event stream.

    Build with :meth:`from_events` (accepts :class:`TraceEvent` objects
    or the dict rows a trace JSONL decodes to).  Events without a packet
    id — rule-object installs from older traces, channel bookkeeping —
    are counted in :attr:`unattributed` and skipped.
    """

    def __init__(self, spans: List[PacketSpan], unattributed: int = 0):
        self.spans = spans
        self.unattributed = unattributed
        self.flows: Dict[Optional[int], FlowTrace] = {}
        for span in spans:
            trace = self.flows.get(span.flow_id)
            if trace is None:
                self.flows[span.flow_id] = FlowTrace(span.flow_id, [span])
            else:
                trace.spans.append(span)

    @classmethod
    def from_events(cls, events: Iterable) -> "FlowTraceAnalysis":
        by_packet: Dict[int, List[Tuple[int, TraceEvent]]] = {}
        unattributed = 0
        for index, row in enumerate(events):
            event = _as_event(row)
            if event.packet_id is None:
                unattributed += 1
                continue
            by_packet.setdefault(event.packet_id, []).append((index, event))
        spans = []
        for packet_id in sorted(by_packet):
            span = cls._fold_packet(packet_id, by_packet[packet_id])
            if span is not None:
                spans.append(span)
        return cls(spans, unattributed=unattributed)

    @classmethod
    def from_tracer(cls, tracer) -> "FlowTraceAnalysis":
        return cls.from_events(tracer.events())

    @staticmethod
    def _fold_packet(
        packet_id: int, indexed: List[Tuple[int, TraceEvent]]
    ) -> Optional[PacketSpan]:
        # Stable in-time order: the tracer appends in event-loop order,
        # so the original index breaks same-timestamp ties exactly the
        # way the simulation executed them.
        indexed.sort(key=lambda pair: (pair[1].time, pair[0]))
        events = [event for _, event in indexed]
        kinds = frozenset(event.kind for event in events)
        terminal = next(
            (event for event in events if event.kind in TraceKind.TERMINAL), None
        )
        start = events[0].time
        end = terminal.time if terminal is not None else events[-1].time
        stages: Dict[str, float] = {}
        # Charge the segment between consecutive events to the stage the
        # *earlier* event begins; the sum telescopes to end - start.
        for earlier, later in zip(events, events[1:]):
            if earlier.time >= end:
                break
            duration = min(later.time, end) - earlier.time
            if duration <= 0:
                continue
            stage = STAGE_OF_KIND.get(earlier.kind, "delivery")
            stages[stage] = stages.get(stage, 0.0) + duration
        return PacketSpan(
            packet_id=packet_id,
            flow_id=events[0].flow_id,
            path=_classify_path(kinds),
            delivered=terminal is not None and terminal.kind == TraceKind.DELIVERED,
            start=start,
            end=end,
            stages=stages,
            events=events,
        )

    # -- aggregates ------------------------------------------------------------
    def stage_totals(self) -> Dict[str, float]:
        """Summed seconds per stage across every span."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            for stage, duration in span.stages.items():
                totals[stage] = totals.get(stage, 0.0) + duration
        return dict(sorted(totals.items(), key=lambda kv: STAGES.index(kv[0])))

    def miss_penalty_cdf(self) -> Series:
        """CDF of delivered first-packet latency on the miss path (ms).

        "First packet" = the earliest delivered span of each flow that
        left the cache fast path — the packets whose latency DIFANE's
        data-plane design is about.
        """
        latencies = []
        for trace in self.flows.values():
            for span in trace.spans:
                if span.delivered and span.path in MISS_PATHS:
                    latencies.append(span.latency)
                    break
        series = Series(
            label="miss penalty",
            x_label="first-packet latency (ms)",
            y_label="CDF",
            meta={"samples": len(latencies)},
        )
        for rank, latency in enumerate(sorted(latencies), start=1):
            series.append(latency * 1e3, rank / len(latencies))
        return series

    def top_flows(self, k: int = 5) -> List[Tuple[Optional[int], int, float]]:
        """Heaviest flows as ``(flow_id, packets, total seconds)``.

        Sorted by packet count then total latency, descending; flow id
        breaks exact ties so the ranking is deterministic.
        """
        rows = [
            (trace.flow_id, len(trace.spans), trace.total_latency)
            for trace in self.flows.values()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], str(row[0])))
        return rows[:k]

    def summary(self) -> Dict[str, object]:
        """Compact machine-readable rollup (used by ``repro report``)."""
        paths: Dict[str, int] = {}
        for span in self.spans:
            paths[span.path] = paths.get(span.path, 0) + 1
        cdf = self.miss_penalty_cdf()
        return {
            "packets": len(self.spans),
            "flows": len(self.flows),
            "unattributed_events": self.unattributed,
            "paths": dict(sorted(paths.items())),
            "stage_totals_s": {
                stage: round(total, 9) for stage, total in self.stage_totals().items()
            },
            "miss_penalty_samples": len(cdf),
            "miss_penalty_p50_ms": _percentile(cdf.x, 0.5),
            "miss_penalty_p99_ms": _percentile(cdf.x, 0.99),
        }


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return round(sorted_values[rank], 6)
