"""Simulated-time telemetry: per-window counter deltas and level samples.

DIFANE's headline claims are *dynamic* — first-packet latency stays in
the data plane, cache misses decay as wildcard rules install, authority
load stays balanced — and an end-of-run counter snapshot cannot show any
of them.  The :class:`TelemetryRecorder` turns the
:class:`~repro.obs.registry.MetricsRegistry` into deterministic time
series: the event scheduler closes a **window** every ``interval_s``
seconds of *simulated* time and the recorder stores, per window, the
delta of every counter plus gauge-like **probe** samples (cache
occupancy, cumulative evictions) contributed by live components.

Determinism contract
--------------------
Windows are a pure function of the event stream:

* windows are indexed by absolute simulated time (window ``i`` covers
  ``[i * interval, (i + 1) * interval)``), so several sequential
  simulations in one run context overlay into one series;
* the scheduler checks every event against the next window boundary
  *before* firing it, so a window's deltas come exactly from the events
  inside it — no wall clocks, no sampling jitter;
* window merging (counter deltas add, probe samples max) is associative
  and commutative, which is what makes ``--jobs N`` telemetry
  byte-identical to a serial run (worker recorders are folded window-wise
  into the parent's — see :mod:`repro.parallel.runner`).

The exported section is versioned ``difane-telemetry/1`` and embedded in
the canonical metrics document by
:func:`repro.experiments.common.metrics_document`; the health detectors
(:mod:`repro.obs.health`) run over it and attach structured findings.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "TelemetryRecorder",
    "telemetry_section",
    "control_plane_section",
    "TELEMETRY_SCHEMA",
    "CONTROL_PLANE_SCHEMA",
    "DEFAULT_TELEMETRY_INTERVAL_S",
]

#: Version tag of the telemetry section inside the metrics document.
TELEMETRY_SCHEMA = "difane-telemetry/1"

#: Version tag of the control-plane section (shard membership, lease
#: events, migrations — see :meth:`repro.core.shards.ShardedControlPlane.export`).
CONTROL_PLANE_SCHEMA = "difane-control-plane/1"

#: Default sampling cadence in simulated seconds.  Chosen so the pinned
#: golden configurations (C1 soak at 0.3–1.0 s, A6 transient at 0.4 s)
#: produce a handful-to-dozens of windows — enough to see dynamics,
#: small enough to diff by eye.
DEFAULT_TELEMETRY_INTERVAL_S = 0.05

#: Counter prefixes never recorded into windows: wall-clock profiles are
#: not reproducible, and artifact-cache hits depend on harness warmth,
#: not on the simulated system (same exclusions as the metrics document).
EXCLUDED_PREFIXES = ("profile_", "artifact_cache_")

#: A probe returns gauge-like levels keyed by rendered metric name; it is
#: sampled at every window close of the scheduler it is registered on.
Probe = Callable[[], Dict[str, float]]


class TelemetryRecorder:
    """Window-wise counter deltas and probe samples over simulated time.

    The recorder itself is passive: an :class:`~repro.net.events.EventScheduler`
    whose ``telemetry`` binding points here calls :meth:`roll` whenever an
    event crosses the next window boundary and :meth:`flush` when a run
    ends.  A disabled recorder (the default context state) costs the
    scheduler one boolean test per run, nothing per event.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = DEFAULT_TELEMETRY_INTERVAL_S,
        enabled: bool = False,
        exclude_prefixes: Tuple[str, ...] = EXCLUDED_PREFIXES,
    ):
        if interval_s <= 0:
            raise ValueError(f"telemetry interval must be positive, got {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.enabled = enabled
        self.exclude_prefixes = tuple(exclude_prefixes)
        #: window index → (counter deltas, probe samples), both keyed by
        #: rendered metric name.
        self._windows: Dict[int, Tuple[Dict[str, float], Dict[str, float]]] = {}
        #: Counter values at the last sample (the delta baseline).
        self._last_values: Dict[str, float] = {}
        #: Per-class SLO specs (:class:`repro.obs.qos.SloSpec`) the health
        #: layer evaluates over these windows; empty (the default) keeps
        #: the exported section — and every pre-QoS golden — unchanged.
        self.slo_specs: List[object] = []

    # -- scheduler-facing sampling --------------------------------------------
    def deadline(self, index: int) -> float:
        """Absolute simulated time at which window ``index`` closes."""
        return (index + 1) * self.interval_s

    def roll(
        self, index: int, now: float, probes: Iterable[Probe] = ()
    ) -> Tuple[int, float]:
        """Close every window whose boundary is at or before ``now``.

        Called by the scheduler with the first event time at or past the
        current deadline; returns the new ``(index, deadline)`` cursor.
        All delta accrued since the previous sample came from events
        strictly before the first closed boundary, so attribution to the
        closing window is exact.
        """
        deadline = self.deadline(index)
        while now >= deadline:
            self._close(index, probes)
            index += 1
            deadline = self.deadline(index)
        return index, deadline

    def flush(self, index: int, probes: Iterable[Probe] = ()) -> int:
        """Attribute residual deltas to the (partial) window ``index``.

        Called at the end of every scheduler run so the tail of the
        timeline is never silently dropped; returns ``index`` unchanged
        (the window stays open for a continuing run).
        """
        self._close(index, probes)
        return index

    def _close(self, index: int, probes: Iterable[Probe]) -> None:
        deltas: Dict[str, float] = {}
        last = self._last_values
        exclude = self.exclude_prefixes
        for name, key, value in self.registry.counter_items():
            if name.startswith(exclude):
                continue
            delta = value - last.get(key, 0)
            if delta:
                deltas[key] = delta
                last[key] = value
        samples: Dict[str, float] = {}
        for probe in probes:
            samples.update(probe())
        if not deltas and not samples:
            return
        counters, levels = self._windows.setdefault(index, ({}, {}))
        for key, delta in deltas.items():
            counters[key] = counters.get(key, 0) + delta
        for key, value in samples.items():
            levels[key] = max(levels.get(key, value), value)

    # -- merging (parallel sweeps) --------------------------------------------
    def dump_windows(self) -> Dict[str, object]:
        """A picklable dump of the window store (worker → parent transport)."""
        return {
            "interval_s": self.interval_s,
            "windows": {
                index: {"counters": dict(counters), "samples": dict(samples)}
                for index, (counters, samples) in self._windows.items()
            },
        }

    def merge_dump(self, dump: Optional[Dict[str, object]]) -> None:
        """Fold a worker's :meth:`dump_windows` into this recorder.

        Counter deltas add and probe samples take the max — both
        associative and commutative, so the fold order (and therefore the
        worker count and scheduling) cannot change the result.
        """
        if not dump:
            return
        if dump["interval_s"] != self.interval_s:
            raise ValueError(
                f"cannot merge telemetry sampled at {dump['interval_s']}s "
                f"into a {self.interval_s}s recorder"
            )
        for index, window in dump["windows"].items():
            counters, levels = self._windows.setdefault(int(index), ({}, {}))
            for key, delta in window["counters"].items():
                counters[key] = counters.get(key, 0) + delta
            for key, value in window["samples"].items():
                levels[key] = max(levels.get(key, value), value)

    # -- export ----------------------------------------------------------------
    def export(self) -> Dict[str, object]:
        """The deterministic ``difane-telemetry/1`` section (sans findings)."""
        windows: List[Dict[str, object]] = []
        for index in sorted(self._windows):
            counters, samples = self._windows[index]
            entry: Dict[str, object] = {
                "index": index,
                "start": round(index * self.interval_s, 9),
                "end": round((index + 1) * self.interval_s, 9),
                "counters": dict(sorted(counters.items())),
            }
            if samples:
                entry["samples"] = dict(sorted(samples.items()))
            windows.append(entry)
        return {
            "schema": TELEMETRY_SCHEMA,
            "interval_s": self.interval_s,
            "windows": windows,
        }

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<TelemetryRecorder {state} interval={self.interval_s:g}s "
            f"{len(self._windows)} windows>"
        )


def telemetry_section(recorder: TelemetryRecorder) -> Dict[str, object]:
    """The telemetry section for the metrics document: windows + findings.

    With SLO specs attached (QoS runs) the section additionally carries
    the specs themselves, the per-class traffic totals, and the per-class
    error-budget summary — all strictly additive, so documents from runs
    without QoS are byte-identical to the pre-QoS format.
    """
    from repro.obs.health import evaluate_telemetry, qos_class_summary, slo_report

    section = recorder.export()
    if recorder.slo_specs:
        section["slo_specs"] = [spec.export() for spec in recorder.slo_specs]
    section["findings"] = evaluate_telemetry(section)
    classes = qos_class_summary(section)
    if classes:
        section["classes"] = classes
    if recorder.slo_specs:
        section["slo"] = slo_report(section)["summary"]
    return section


def control_plane_section(export: Dict[str, object]) -> Dict[str, object]:
    """Normalize a control-plane export into the metrics document section.

    ``export`` is what :meth:`ShardedControlPlane.export` returns — a
    plain dict already, but this chokepoint stamps (and pins) the schema
    tag and sorts the top-level keys so the section diffs stably across
    runs and releases.
    """
    section = dict(sorted(export.items()))
    section["schema"] = CONTROL_PLANE_SCHEMA
    return section
