"""Memory-bounded sketches: quantiles, fixed-width counts, heavy hitters.

A million-host soak cannot afford one :class:`DeliveryRecord` per packet
— the observability layer itself would be the memory bottleneck the
streaming workload generators exist to remove.  This module provides the
bounded substitutes, each deterministic and mergeable so the registry's
merge algebra (and therefore ``--jobs N`` byte-identity) carries over:

* :class:`QuantileSketch` — a KLL/MRL-style compactor hierarchy with a
  **tracked, provable rank-error bound**.  Compaction is deterministic
  (sorted buffer, alternating keep-parity, no RNG), so equal inputs give
  bit-equal sketches; the classical randomized-KLL guarantee is traded
  for the MRL-style deterministic one, which is what golden tests need.
* :class:`FixedWidthHistogram` — exact fixed-width counting bins with an
  overflow bucket; merge equals concatenation exactly.
* :class:`SpaceSavingSketch` — Space-Saving top-k heavy hitters with an
  explicit ``guarantee_threshold()``: every key whose true count exceeds
  it is certainly present in the summary, streaming or merged.

Why the quantile bound is sound: one compaction at level ``l`` sorts a
buffer of items of weight ``w = 2**l``, keeps every other item at weight
``2w`` and discards the rest.  For any fixed threshold ``x`` with ``j``
buffer items ``<= x``, the kept weighted count is ``2w*floor(j/2)`` or
``2w*ceil(j/2)`` (depending on the keep parity), both within ``w`` of
the true ``j*w`` — so one compaction shifts any rank query by at most
``w``, and the total error is bounded by the sum of the weights of the
compactions actually performed.  :attr:`QuantileSketch.error_weight`
tracks exactly that sum (merging adds the operands' budgets), and the
hypothesis suite checks every rank query against an exact oracle.

The process-wide ``--sketch`` flag (:func:`set_sketch_mode`) parallels
``--columnar``: experiments consult it to decide whether delivery
outcomes feed sketches via :class:`DeliverySketchObserver` instead of
accumulating per-packet records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "QuantileSketch",
    "FixedWidthHistogram",
    "SpaceSavingSketch",
    "DeliverySketchObserver",
    "EXPORT_QUANTILES",
    "set_sketch_mode",
    "sketch_enabled",
]

#: Quantiles pinned in every :meth:`QuantileSketch.export` (golden surface).
EXPORT_QUANTILES: Tuple[float, ...] = (0.0, 0.5, 0.9, 0.99, 0.999, 1.0)

# -- the process-wide mode flag (mirrors flowspace.batch.set_columnar) -------

_SKETCH_MODE = False


def set_sketch_mode(enabled: bool) -> None:
    """Toggle memory-bounded observability process-wide (CLI ``--sketch``).

    Experiments treat this as the default for their ``sketch`` knob; the
    sweep runner's worker initializer propagates it into worker processes
    exactly like the columnar flag.
    """
    global _SKETCH_MODE
    _SKETCH_MODE = bool(enabled)


def sketch_enabled() -> bool:
    """True when the process runs with sketch-based observability."""
    return _SKETCH_MODE


class QuantileSketch:
    """Deterministic KLL-style quantile sketch with a tracked error bound.

    ``k`` is the per-level buffer capacity; retained items are bounded by
    ``k * levels ≈ k * log2(count / k)`` whatever the stream length.  All
    state updates are deterministic, so the sketch is safe for golden
    tests, and :meth:`merge_from` is exact about its error accounting:
    ``merge(a, b)`` answers any rank query within
    ``a.error_weight + b.error_weight`` plus whatever compactions the
    merge itself performs — all folded into the merged ``error_weight``.
    """

    __slots__ = ("k", "count", "error_weight", "min", "max", "_levels", "_parity")
    kind = "sketch"

    def __init__(self, k: int = 256):
        if k < 8 or k % 2:
            raise ValueError(f"k must be an even integer >= 8, got {k}")
        self.k = k
        #: Total weight (= number of observations) summarized.
        self.count = 0
        #: Proven bound on ``|rank(x) - true_rank(x)|`` for every x: the
        #: sum of the item weights of all compactions performed so far.
        self.error_weight = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: ``_levels[l]`` holds items of weight ``2**l``.
        self._levels: List[List[float]] = [[]]
        #: Alternating keep-parity per level (the determinism device).
        self._parity: List[int] = [0]

    # -- ingest ------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.count += 1
        level0 = self._levels[0]
        level0.append(value)
        if len(level0) >= self.k:
            self._compress()

    def observe_repeated(self, value: float, count: int) -> None:
        """Ingest ``count`` copies of ``value``.

        Bit-identical to calling :meth:`observe` ``count`` times (same
        compaction points), so the columnar block path and the scalar
        record path build the same sketch — the property the streaming
        delivery observer relies on.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        value = float(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.count += count
        remaining = count
        while remaining:
            level0 = self._levels[0]
            room = self.k - len(level0)
            if room <= 0:
                self._compress()
                continue
            take = room if remaining > room else remaining
            level0.extend([value] * take)
            remaining -= take
        if len(self._levels[0]) >= self.k:
            self._compress()

    def _compress(self) -> None:
        """Compact every at-capacity level, lowest first (may cascade)."""
        levels = self._levels
        level = 0
        while level < len(levels):
            buffer = levels[level]
            if len(buffer) < self.k:
                level += 1
                continue
            buffer.sort()
            # An odd buffer keeps its largest item uncompacted at this
            # level (exact, no error contribution) so pairs stay whole.
            leftover = [buffer.pop()] if len(buffer) % 2 else []
            parity = self._parity[level]
            self._parity[level] ^= 1
            survivors = buffer[parity::2]
            levels[level] = leftover
            if level + 1 == len(levels):
                levels.append([])
                self._parity.append(0)
            levels[level + 1].extend(survivors)
            self.error_weight += 1 << level
            level += 1

    # -- queries -----------------------------------------------------------
    def rank(self, value: float) -> int:
        """Estimated weight of observations ``<= value``.

        Within :meth:`rank_error_bound` of the true count, for every
        ``value`` — the invariant the hypothesis oracle test pins.
        """
        total = 0
        for level, buffer in enumerate(self._levels):
            weight = 1 << level
            total += weight * sum(1 for item in buffer if item <= value)
        return total

    def rank_error_bound(self) -> int:
        """Proven absolute rank-error bound (in observation weight)."""
        return self.error_weight

    def relative_error_bound(self) -> float:
        """:meth:`rank_error_bound` as a fraction of the stream length."""
        return self.error_weight / self.count if self.count else 0.0

    def quantile_rank_bound(self) -> int:
        """Bound on ``|true_rank(quantile(q)) - q*count|`` for any q.

        The rank bound plus one item granularity at the heaviest level
        (the returned item's cumulative weight overshoots the target by
        at most its own weight).
        """
        return self.error_weight + (1 << (len(self._levels) - 1))

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile, clamped to the exact ``[min, max]``."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        weighted = sorted(
            (item, 1 << level)
            for level, buffer in enumerate(self._levels)
            for item in buffer
        )
        target = q * self.count
        cumulative = 0
        for item, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return min(max(item, self.min), self.max)
        return self.max

    def retained(self) -> int:
        """Items currently held across all levels (the memory footprint)."""
        return sum(len(buffer) for buffer in self._levels)

    # -- registry protocol -------------------------------------------------
    def export(self):
        return {
            "count": self.count,
            "k": self.k,
            "levels": len(self._levels),
            "retained": self.retained(),
            "rank_error_bound": self.error_weight,
            "min": self.min,
            "max": self.max,
            "quantiles": {f"{q:g}": self.quantile(q) for q in EXPORT_QUANTILES},
        }

    def fresh(self) -> "QuantileSketch":
        return QuantileSketch(self.k)

    def merge_from(self, other: "QuantileSketch") -> None:
        if other.k != self.k:
            raise ValueError("cannot merge quantile sketches with different k")
        self.count += other.count
        self.error_weight += other.error_weight
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        while len(self._levels) < len(other._levels):
            self._levels.append([])
            self._parity.append(0)
        for level, buffer in enumerate(other._levels):
            self._levels[level].extend(buffer)
        self._compress()

    def __repr__(self) -> str:
        return (
            f"<QuantileSketch k={self.k} count={self.count} "
            f"retained={self.retained()} err<={self.error_weight}>"
        )


class FixedWidthHistogram:
    """Exact fixed-width counting bins with an overflow bucket.

    Unlike :class:`~repro.obs.registry.Histogram` (whose exponential
    bounds suit latencies), this counts small integers/levels — hop
    counts, queue depths — in ``bins`` buckets of ``width`` starting at
    ``lo``; everything at or past the top lands in the overflow bucket.
    Values below ``lo`` clamp into bucket 0.  Merge is exact (bucket-wise
    addition), so it cannot perturb ``--jobs N`` determinism.
    """

    __slots__ = ("lo", "width", "bucket_counts", "count", "total", "min", "max")
    kind = "fixedhist"

    def __init__(self, width: float, lo: float = 0.0, bins: int = 64):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.lo = float(lo)
        self.width = float(width)
        self.bucket_counts = [0] * (bins + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @property
    def bins(self) -> int:
        return len(self.bucket_counts) - 1

    def _index(self, value: float) -> int:
        if value < self.lo:
            return 0
        index = int((value - self.lo) / self.width)
        return index if index < self.bins else self.bins

    def observe(self, value: float) -> None:
        self.observe_repeated(value, 1)

    def observe_repeated(self, value: float, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        value = float(value)
        self.bucket_counts[self._index(value)] += count
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def export(self):
        return {
            "lo": self.lo,
            "width": self.width,
            "bins": self.bins,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                ("+inf" if index == self.bins else str(index)): bucket_count
                for index, bucket_count in enumerate(self.bucket_counts)
                if bucket_count
            },
        }

    def fresh(self) -> "FixedWidthHistogram":
        return FixedWidthHistogram(self.width, self.lo, self.bins)

    def merge_from(self, other: "FixedWidthHistogram") -> None:
        if (other.lo, other.width, other.bins) != (self.lo, self.width, self.bins):
            raise ValueError("cannot merge fixed-width histograms with different shape")
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)


class SpaceSavingSketch:
    """Space-Saving top-k heavy hitters with an explicit guarantee.

    Summary entries are ``key -> (count, error)`` where ``count`` is an
    *overestimate* of the key's true count and ``error`` bounds the
    overshoot.  The containment contract, streaming and merged: every key
    whose true count exceeds :meth:`guarantee_threshold` is present.

    The threshold is maintained as a single scalar invariant — an upper
    bound on the true count of **any absent key** — updated on eviction
    (the victim's overestimate covers it), and on merge (keys absent from
    both sides are bounded by the sum of the operands' thresholds; keys
    truncated away by the top-k cut are covered by their merged
    overestimate).  Tie-breaks (eviction victim, top-k cut) order by
    ``(count, key)``, so the summary is deterministic.
    """

    __slots__ = ("k", "total", "_entries", "_absent_bound")
    kind = "topk"

    def __init__(self, k: int = 32):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        #: Total offered weight (sum of all offer counts).
        self.total = 0
        self._entries: Dict[str, List[int]] = {}
        self._absent_bound = 0

    def offer(self, key, count: int = 1) -> None:
        """Count ``count`` occurrences of ``key`` (keys coerce to str)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        key = str(key)
        self.total += count
        entry = self._entries.get(key)
        if entry is not None:
            entry[0] += count
            return
        if len(self._entries) < self.k:
            floor = self._absent_bound
            self._entries[key] = [floor + count, floor]
            return
        victim_key, victim = min(
            self._entries.items(), key=lambda item: (item[1][0], item[0])
        )
        del self._entries[victim_key]
        if victim[0] > self._absent_bound:
            self._absent_bound = victim[0]
        floor = self._absent_bound
        self._entries[key] = [floor + count, floor]

    def guarantee_threshold(self) -> int:
        """Any key with true count above this is certainly in the summary."""
        return self._absent_bound

    def __contains__(self, key) -> bool:
        return str(key) in self._entries

    def entries(self) -> List[Tuple[str, int, int]]:
        """``(key, count, error)`` triples, heaviest first (deterministic)."""
        ranked = sorted(
            self._entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [(key, count, error) for key, (count, error) in ranked]

    # -- registry protocol -------------------------------------------------
    def export(self):
        return {
            "k": self.k,
            "total": self.total,
            "guarantee_threshold": self._absent_bound,
            "entries": [
                {"key": key, "count": count, "error": error}
                for key, count, error in self.entries()
            ],
        }

    def fresh(self) -> "SpaceSavingSketch":
        return SpaceSavingSketch(self.k)

    def merge_from(self, other: "SpaceSavingSketch") -> None:
        if other.k != self.k:
            raise ValueError("cannot merge top-k sketches with different k")
        mine_bound, other_bound = self._absent_bound, other._absent_bound
        merged: Dict[str, List[int]] = {}
        for key, (count, error) in self._entries.items():
            theirs = other._entries.get(key)
            if theirs is None:
                # The key may have up to other_bound uncounted weight on
                # the other side; keep the overestimate an overestimate.
                merged[key] = [count + other_bound, error + other_bound]
            else:
                merged[key] = [count + theirs[0], error + theirs[1]]
        for key, (count, error) in other._entries.items():
            if key not in merged:
                merged[key] = [count + mine_bound, error + mine_bound]
        self.total += other.total
        bound = mine_bound + other_bound
        if len(merged) > self.k:
            ranked = sorted(merged.items(), key=lambda item: (-item[1][0], item[0]))
            for key, (count, _error) in ranked[self.k:]:
                if count > bound:
                    bound = count
            merged = dict(ranked[: self.k])
        self._entries = merged
        self._absent_bound = bound

    def __repr__(self) -> str:
        return (
            f"<SpaceSavingSketch k={self.k} total={self.total} "
            f"threshold={self._absent_bound}>"
        )


class DeliverySketchObserver:
    """Bounded-memory consumer for :meth:`DeliveryLog.stream_into`.

    Replaces the per-packet :class:`DeliveryRecord` rows a soak would
    otherwise retain: scalar records and columnar batch blocks feed the
    same registry-owned sketches (delay quantiles, hop histogram) and
    exact outcome counters.  A whole delivered block collapses to one
    ``observe_repeated`` call — every packet in a terminal block shares
    its creation and finish instants — so observing stays O(1) per block
    on the columnar hot path.

    Heavy-hitter tracking counts *offered* destinations (the workload's
    skew, which exists whether or not packets survive): experiments call
    :meth:`offer_destinations` with each burst's destination column at
    scheduling time.
    """

    def __init__(
        self,
        registry=None,
        quantile_k: int = 256,
        heavy_hitters_k: int = 32,
        hop_bins: int = 32,
    ):
        if registry is None:
            from repro.obs import context as _obs_context

            registry = _obs_context.current_registry()
        self.delay_sketch = registry.quantile_sketch(
            "stream_delivery_delay_seconds", k=quantile_k
        )
        self.hop_histogram = registry.fixed_histogram(
            "stream_delivery_hops", width=1.0, bins=hop_bins
        )
        self.hot_destinations = registry.top_k(
            "stream_hot_destinations", k=heavy_hitters_k
        )
        self.delivered = 0
        self.dropped = 0

    # -- DeliveryLog streaming protocol -------------------------------------
    def record(self, record) -> None:
        """Consume one scalar :class:`DeliveryRecord`."""
        if record.delivered:
            self.delivered += 1
            self.delay_sketch.observe(record.finished_at - record.created_at)
            self.hop_histogram.observe(record.hops)
        else:
            self.dropped += 1

    def block(self, block) -> None:
        """Consume one columnar batch block without materializing rows."""
        batch = block.batch
        count = len(batch)
        if not block.delivered:
            self.dropped += count
            return
        self.delivered += count
        delay = block.finished_at - (batch.created_at or 0.0)
        self.delay_sketch.observe_repeated(delay, count)
        hops, hop_counts = np.unique(batch.hops, return_counts=True)
        for hop, hop_count in zip(hops.tolist(), hop_counts.tolist()):
            self.hop_histogram.observe_repeated(hop, hop_count)

    # -- workload side -------------------------------------------------------
    def offer_destinations(self, destinations) -> None:
        """Count a burst's destination column into the heavy-hitter sketch."""
        values, counts = np.unique(np.asarray(destinations), return_counts=True)
        offer = self.hot_destinations.offer
        for value, count in zip(values.tolist(), counts.tolist()):
            offer(value, count)

    # -- telemetry ----------------------------------------------------------
    def probe(self) -> Dict[str, float]:
        """Per-window levels for the telemetry recorder.

        Only delivery-driven state appears here (counts, delay tail,
        error budget): identical between lazily-fed and pre-materialized
        schedules, which the streaming-equivalence test pins.
        """
        p99 = self.delay_sketch.quantile(0.99)
        return {
            "stream_delivered_packets": float(self.delivered),
            "stream_dropped_packets": float(self.dropped),
            "stream_delay_p99_seconds": float(p99) if p99 is not None else 0.0,
            "stream_sketch_error_weight": float(self.delay_sketch.error_weight),
        }
