"""Unified observability: metrics registry, packet tracing, profiling.

The three planes DIFANE's evaluation needs, as one layer instead of
five per-feature counter surfaces:

* :mod:`repro.obs.registry` — labelled counters/gauges/histograms with
  deterministic snapshots and an associative merge;
* :mod:`repro.obs.trace` — ring-buffered packet-lifecycle span events
  (ingress → cache-hit/redirect → authority → install → egress, plus
  drop/degradation causes) with JSONL export;
* :mod:`repro.obs.profile` — wall-time stage histograms around event
  callbacks, engine lookups and channel sends;
* :mod:`repro.obs.attribution` — the canonical drop-reason → bucket
  mapping shared by the registry labels and the chaos experiments;
* :mod:`repro.obs.context` — the per-run binding everything above hangs
  off (``fresh_run_context()`` → run → ``snapshot()``).
"""

from repro.obs.attribution import DROP_ATTRIBUTION, attribute_drops, attribute_reason
from repro.obs.context import (
    RunContext,
    current,
    current_profiler,
    current_registry,
    current_tracer,
    fresh_run_context,
    install,
)
from repro.obs.profile import Profiler, STAGE_HISTOGRAM
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.trace import PacketTracer, TraceEvent, TraceKind, records_like

__all__ = [
    "Counter",
    "DROP_ATTRIBUTION",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "PacketTracer",
    "Profiler",
    "RunContext",
    "STAGE_HISTOGRAM",
    "TraceEvent",
    "TraceKind",
    "attribute_drops",
    "attribute_reason",
    "current",
    "current_profiler",
    "current_registry",
    "current_tracer",
    "fresh_run_context",
    "install",
    "records_like",
]
