"""Unified observability: metrics registry, packet tracing, profiling.

The three planes DIFANE's evaluation needs, as one layer instead of
five per-feature counter surfaces:

* :mod:`repro.obs.registry` — labelled counters/gauges/histograms with
  deterministic snapshots and an associative merge;
* :mod:`repro.obs.trace` — ring-buffered packet-lifecycle span events
  (ingress → cache-hit/redirect → authority → install → egress, plus
  drop/degradation causes) with JSONL export;
* :mod:`repro.obs.telemetry` — simulated-time sampling of the registry
  into per-window time series (``difane-telemetry/1``);
* :mod:`repro.obs.flowtrace` — flow-causal analysis folding the flat
  trace stream into per-flow span trees and stage decompositions;
* :mod:`repro.obs.health` — detectors over telemetry windows
  (authority-load imbalance, cache churn, degraded mode) emitting
  structured findings;
* :mod:`repro.obs.export` — Prometheus text exposition and JSONL
  time-series export of a run's metrics and telemetry;
* :mod:`repro.obs.sketch` — memory-bounded mergeable sketches (KLL
  quantiles, fixed-width counts, Space-Saving top-k) behind the
  ``--sketch`` flag, for soaks too large to keep per-packet records;
* :mod:`repro.obs.profile` — wall-time stage histograms around event
  callbacks, engine lookups and channel sends;
* :mod:`repro.obs.attribution` — the canonical drop-reason → bucket
  mapping shared by the registry labels and the chaos experiments;
* :mod:`repro.obs.context` — the per-run binding everything above hangs
  off (``fresh_run_context()`` → run → ``snapshot()``).
"""

from repro.obs.attribution import DROP_ATTRIBUTION, attribute_drops, attribute_reason
from repro.obs.context import (
    RunContext,
    current,
    current_profiler,
    current_registry,
    current_telemetry,
    current_tracer,
    fresh_run_context,
    install,
)
from repro.obs.flowtrace import FlowTraceAnalysis
from repro.obs.profile import Profiler, STAGE_HISTOGRAM
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.sketch import (
    DeliverySketchObserver,
    FixedWidthHistogram,
    QuantileSketch,
    SpaceSavingSketch,
    set_sketch_mode,
    sketch_enabled,
)
from repro.obs.telemetry import (
    DEFAULT_TELEMETRY_INTERVAL_S,
    TELEMETRY_SCHEMA,
    TelemetryRecorder,
    telemetry_section,
)
from repro.obs.trace import PacketTracer, TraceEvent, TraceKind, records_like

__all__ = [
    "Counter",
    "DEFAULT_TELEMETRY_INTERVAL_S",
    "DROP_ATTRIBUTION",
    "DeliverySketchObserver",
    "FixedWidthHistogram",
    "FlowTraceAnalysis",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "PacketTracer",
    "Profiler",
    "QuantileSketch",
    "SpaceSavingSketch",
    "RunContext",
    "STAGE_HISTOGRAM",
    "TELEMETRY_SCHEMA",
    "TelemetryRecorder",
    "TraceEvent",
    "TraceKind",
    "attribute_drops",
    "attribute_reason",
    "current",
    "current_profiler",
    "current_registry",
    "current_telemetry",
    "current_tracer",
    "fresh_run_context",
    "install",
    "records_like",
    "set_sketch_mode",
    "sketch_enabled",
    "telemetry_section",
]
