"""Per-class QoS: flow classification, SLO specs and protection knobs.

DIFANE's aggregate counters cannot say whether *high-priority* flows
keep their redirect-latency and cache-residency guarantees when a flash
crowd evicts their rules.  This module supplies the vocabulary the rest
of the stack threads through:

* :class:`FlowClass` — a named wildcard region of flow space with its
  protection knobs (COST score weight, reserved cache entries, admission
  protection);
* :class:`FlowClassifier` — first-match-wins packet → class mapping with
  a default class fallback, memoized per packed header;
* :class:`SloSpec` — the per-class service-level objective (redirect
  latency quantile, cache miss rate, delivery rate) evaluated over
  telemetry windows by :mod:`repro.obs.health`;
* :class:`QosPolicy` — the run-wide bundle, installed process-wide via
  :func:`set_qos` exactly like the columnar/sketch mode switches.

Everything downstream is gated on :func:`current_qos` returning a
policy: with QoS off (the default) no ``qos_*`` counter is ever bound,
no label is rendered, and every pre-existing golden document stays
byte-identical — the same additive discipline as the COST-gated
telemetry probe keys.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.flowspace.rule import Match

__all__ = [
    "DEFAULT_CLASS",
    "FlowClass",
    "FlowClassifier",
    "SloSpec",
    "QosPolicy",
    "set_qos",
    "current_qos",
    "REDIRECT_LATENCY_BUCKETS",
    "BUCKET_LABELS",
    "BUCKET_BOUNDS",
    "delay_bucket",
    "bucket_quantile",
]

#: Name of the fallback class for packets no configured class matches.
DEFAULT_CLASS = "best-effort"

#: Upper bounds (seconds) of the per-class redirect-latency histogram
#: counters (``qos_redirect_delay_bucket_total{flow_class=...,le=...}``).
#: Chosen around the simulated fabric's delay scale: 20 µs/hop links, a
#: handful of hops per redirect, plus authority-queue wait under load.
#: Fixed constants — the bucket layout is part of the golden surface.
REDIRECT_LATENCY_BUCKETS = (
    100e-6, 150e-6, 200e-6, 300e-6, 500e-6, 1e-3, 2e-3, 5e-3,
)

#: Bucket labels in ascending bound order, ``+Inf`` last.
BUCKET_LABELS = tuple(
    f"{bound:g}" for bound in REDIRECT_LATENCY_BUCKETS
) + ("+Inf",)

#: Numeric upper bound per label position (``inf`` for the last).
BUCKET_BOUNDS = REDIRECT_LATENCY_BUCKETS + (math.inf,)


def delay_bucket(delay_s: float) -> str:
    """The label of the first bucket whose upper bound covers ``delay_s``."""
    for bound, label in zip(REDIRECT_LATENCY_BUCKETS, BUCKET_LABELS):
        if delay_s <= bound:
            return label
    return "+Inf"


def bucket_quantile(counts: Dict[str, float], quantile: float) -> Optional[float]:
    """The upper bound (seconds) of the bucket holding ``quantile``.

    ``counts`` maps bucket labels to per-window sample counts (deltas,
    not cumulative).  Returns ``None`` with no samples; ``inf`` when the
    quantile lands in the overflow bucket.  Resolution is the bucket
    grid — exactly what a Prometheus-style histogram offers — which is
    deterministic and mergeable, unlike a true per-sample quantile.
    """
    total = sum(counts.values())
    if total <= 0:
        return None
    need = quantile * total
    cumulative = 0.0
    for label, bound in zip(BUCKET_LABELS, BUCKET_BOUNDS):
        cumulative += counts.get(label, 0.0)
        if cumulative >= need - 1e-12:
            return bound
    return BUCKET_BOUNDS[-1]


class FlowClass:
    """A named region of flow space plus its protection knobs.

    ``weight`` scales the COST eviction score of cache rules serving the
    class (>1 keeps them resident longer); ``reserved_fraction`` of each
    ingress cache's capacity is held for the class (entries inside the
    reservation are never evicted by other classes' installs);
    ``protected`` exempts the class from admission-control shedding at
    the authority switches.
    """

    __slots__ = ("name", "match", "weight", "reserved_fraction", "protected")

    def __init__(
        self,
        name: str,
        match: Match,
        weight: float = 1.0,
        reserved_fraction: float = 0.0,
        protected: bool = False,
    ):
        if not name:
            raise ValueError("flow class needs a non-empty name")
        if not 0.0 <= reserved_fraction <= 1.0:
            raise ValueError(
                f"reserved_fraction must be in [0, 1], got {reserved_fraction}"
            )
        self.name = name
        self.match = match
        self.weight = float(weight)
        self.reserved_fraction = float(reserved_fraction)
        self.protected = bool(protected)

    def __repr__(self) -> str:
        return f"<FlowClass {self.name} weight={self.weight:g}>"


class FlowClassifier:
    """First-match-wins mapping from packed headers to class names.

    Several :class:`FlowClass` entries may share one name (e.g. one
    aligned prefix per edge switch, all called ``gold``); the default
    class catches everything else.  Results are memoized per packed
    header — streaming workloads repeat headers heavily, so the linear
    scan runs once per distinct flow.
    """

    def __init__(
        self,
        classes: Sequence[FlowClass] = (),
        default: str = DEFAULT_CLASS,
    ):
        self.classes: List[FlowClass] = list(classes)
        self.default = default
        self._memo: Dict[int, str] = {}

    def class_names(self) -> List[str]:
        """Configured class names, first-seen order, default last."""
        names: List[str] = []
        for cls in self.classes:
            if cls.name not in names:
                names.append(cls.name)
        if self.default not in names:
            names.append(self.default)
        return names

    def classify_bits(self, header_bits: int) -> str:
        """The class name of a packed header (memoized)."""
        name = self._memo.get(header_bits)
        if name is None:
            for cls in self.classes:
                if cls.match.matches_bits(header_bits):
                    name = cls.name
                    break
            else:
                name = self.default
            self._memo[header_bits] = name
        return name

    def classify(self, packet) -> str:
        """The class name of a packet (by its packed header bits)."""
        return self.classify_bits(packet.header_bits)


class SloSpec:
    """A per-class service-level objective over telemetry windows.

    Any target may be ``None`` (signal not part of this class's SLO).
    ``budget`` is the error budget: the fraction of *eligible* windows
    (windows where the class saw traffic) allowed to violate a target
    before the SLO counts as exhausted.
    """

    __slots__ = (
        "flow_class", "latency_target_s", "latency_quantile",
        "miss_rate_target", "delivery_target", "budget",
    )

    def __init__(
        self,
        flow_class: str,
        latency_target_s: Optional[float] = None,
        latency_quantile: float = 0.99,
        miss_rate_target: Optional[float] = None,
        delivery_target: Optional[float] = None,
        budget: float = 0.1,
    ):
        if not 0.0 < latency_quantile <= 1.0:
            raise ValueError(
                f"latency_quantile must be in (0, 1], got {latency_quantile}"
            )
        if budget < 0.0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.flow_class = flow_class
        self.latency_target_s = latency_target_s
        self.latency_quantile = float(latency_quantile)
        self.miss_rate_target = miss_rate_target
        self.delivery_target = delivery_target
        self.budget = float(budget)

    def export(self) -> Dict[str, object]:
        """The JSON-stable dict embedded in the telemetry section."""
        return {
            "budget": self.budget,
            "delivery_target": self.delivery_target,
            "flow_class": self.flow_class,
            "latency_quantile": self.latency_quantile,
            "latency_target_s": self.latency_target_s,
            "miss_rate_target": self.miss_rate_target,
        }

    def __repr__(self) -> str:
        return f"<SloSpec {self.flow_class} budget={self.budget:g}>"


class QosPolicy:
    """The run-wide QoS bundle: classifier + SLOs + enforcement knobs.

    ``admission_threshold`` (redirect-station queue depth) arms admission
    control at the authority switches: once the queue is at least that
    deep, redirects of unprotected classes are shed with exact drop
    attribution instead of queued behind protected traffic.  ``None``
    disables shedding (monitor-only).
    """

    def __init__(
        self,
        classifier: FlowClassifier,
        slos: Sequence[SloSpec] = (),
        admission_threshold: Optional[int] = None,
    ):
        if admission_threshold is not None and admission_threshold < 1:
            raise ValueError(
                f"admission_threshold must be >= 1, got {admission_threshold}"
            )
        self.classifier = classifier
        self.slos: List[SloSpec] = list(slos)
        self.admission_threshold = admission_threshold

    def class_weights(self) -> Dict[str, float]:
        """COST score weights per class (non-unit weights only)."""
        weights: Dict[str, float] = {}
        for cls in self.classifier.classes:
            if cls.weight != 1.0:
                weights[cls.name] = cls.weight
        return weights

    def reservations(self, capacity: int) -> Dict[str, int]:
        """Reserved cache entries per class for a cache of ``capacity``."""
        reserved: Dict[str, int] = {}
        for cls in self.classifier.classes:
            if cls.reserved_fraction > 0.0 and capacity > 0:
                entries = max(1, int(math.ceil(cls.reserved_fraction * capacity)))
                reserved[cls.name] = max(reserved.get(cls.name, 0), entries)
        return reserved

    def is_protected(self, class_name: str) -> bool:
        """True when ``class_name`` is exempt from admission shedding."""
        for cls in self.classifier.classes:
            if cls.name == class_name and cls.protected:
                return True
        return False


#: The process-wide policy (mirrors ``set_columnar`` / ``set_sketch_mode``).
#: Worker processes do not inherit it automatically — sweeps that need
#: QoS (the E9 ablation) install a policy inside each point function and
#: clear it in the ``finally``, exactly like the fresh run context.
_policy: Optional[QosPolicy] = None


def set_qos(policy: Optional[QosPolicy]) -> None:
    """Install (or clear, with ``None``) the process-wide QoS policy."""
    global _policy
    _policy = policy


def current_qos() -> Optional[QosPolicy]:
    """The active QoS policy, or ``None`` when QoS is off (the default)."""
    return _policy
