"""Tuple-space search: the classic software classifier (Srinivasan et al.).

A DIFANE deployment's software elements (authority-switch slow paths,
trace-driven simulators, the NOX controller's policy lookup) classify
packets in software.  Linear search is O(rules); **tuple-space search**
exploits that real rule sets use few distinct *mask shapes* ("tuples"):
rules are grouped by their exact mask, each group is a hash table keyed
by the masked header bits, and a lookup probes one hash per group —
O(#tuples) with tiny constants.  Open vSwitch's megaflow classifier is
exactly this structure.

:class:`TupleSpaceTable` implements the same semantics as
:class:`~repro.flowspace.table.RuleTable` (priority order, insertion-order
tie-break) and is property-tested equivalent to it; the perf benchmark
measures the speedup on ClassBench rule sets.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Optional, Tuple

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule

__all__ = ["TupleSpaceTable"]


class _TupleGroup:
    """All rules sharing one mask: a hash from masked bits to rule list."""

    __slots__ = ("mask", "buckets", "max_priority")

    def __init__(self, mask: int):
        self.mask = mask
        #: masked header bits -> rules in lookup order.
        self.buckets: Dict[int, List[Tuple[Tuple[int, int], Rule]]] = {}
        #: Highest priority present in the group (pruning bound).
        self.max_priority = -1

    def insert(self, key: Tuple[int, int], rule: Rule) -> None:
        """Add ``rule`` under its lookup-order ``key``.

        The rule's mask must equal the group's: a mismatched rule would be
        hashed under the wrong bucket key and silently never (or wrongly)
        match, so it is rejected here rather than corrupting lookups.
        """
        if rule.match.ternary.mask != self.mask:
            raise ValueError(
                f"rule mask {rule.match.ternary.mask:#x} does not agree with "
                f"tuple-group mask {self.mask:#x}"
            )
        masked = rule.match.ternary.value  # already normalized to the mask
        bucket = self.buckets.setdefault(masked, [])
        # Keys are unique (the sequence half strictly increases), so the
        # tuple compare never reaches the rule and insort keeps the
        # bucket ordered in O(len) instead of a full re-sort.
        insort(bucket, (key, rule))
        if rule.priority > self.max_priority:
            self.max_priority = rule.priority

    def remove(self, rule: Rule) -> bool:
        """Remove ``rule`` by identity; True when it was present."""
        masked = rule.match.ternary.value
        bucket = self.buckets.get(masked)
        if not bucket:
            return False
        for index, (_, existing) in enumerate(bucket):
            if existing is rule:
                del bucket[index]
                if not bucket:
                    del self.buckets[masked]
                self._recompute_bound()
                return True
        return False

    def _recompute_bound(self) -> None:
        self.max_priority = max(
            (rule.priority for bucket in self.buckets.values()
             for _, rule in bucket),
            default=-1,
        )

    def lookup(self, header_bits: int) -> Optional[Tuple[Tuple[int, int], Rule]]:
        """Best (key, rule) of this group for ``header_bits``, if any."""
        bucket = self.buckets.get(header_bits & self.mask)
        if not bucket:
            return None
        return bucket[0]  # best (key-ordered) rule of the bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


class TupleSpaceTable:
    """A priority classifier with per-mask hash groups.

    Drop-in semantic equivalent of :class:`RuleTable` for lookups:
    ``lookup_bits`` returns the identical winner (same priority order,
    same first-inserted tie-break).  Iteration order is *not* specified —
    use :class:`RuleTable` when you need ordered traversal.
    """

    def __init__(self, layout: HeaderLayout, rules: Optional[Iterable[Rule]] = None):
        self.layout = layout
        self._groups: Dict[int, _TupleGroup] = {}
        #: Groups sorted by max_priority descending (pruned scan order);
        #: rebuilt lazily at the next lookup after any mutation.
        self._scan_order: List[_TupleGroup] = []
        self._scan_dirty = False
        self._sequence = 0
        self._size = 0
        if rules:
            self._bulk_load(rules)

    # -- mutation ---------------------------------------------------------------
    def _bulk_load(self, rules: Iterable[Rule]) -> None:
        """Construction fast path: group once, sort each bucket once.

        Incremental :meth:`add` pays an ordered insert per rule plus a
        scan-order rebuild per batch; building a 10K-rule classifier one
        ``add`` at a time spent ~70x longer re-sorting than this single
        grouped pass (see ``benchmarks/results/perf-engines.txt``).
        Semantics are identical: the same ``(−priority, sequence)`` keys
        land in the same buckets in the same order.
        """
        groups = self._groups
        for rule in rules:
            if rule.match.layout != self.layout:
                raise ValueError("rule layout differs from table layout")
            mask = rule.match.ternary.mask
            group = groups.get(mask)
            if group is None:
                group = _TupleGroup(mask)
                groups[mask] = group
            key = (-rule.priority, self._sequence)
            self._sequence += 1
            group.buckets.setdefault(rule.match.ternary.value, []).append((key, rule))
            if rule.priority > group.max_priority:
                group.max_priority = rule.priority
            self._size += 1
        for group in groups.values():
            for bucket in group.buckets.values():
                bucket.sort(key=lambda item: item[0])
        self._scan_dirty = True

    def add(self, rule: Rule) -> None:
        """Insert ``rule`` (same ordering semantics as RuleTable.add)."""
        if rule.match.layout != self.layout:
            raise ValueError("rule layout differs from table layout")
        mask = rule.match.ternary.mask
        group = self._groups.get(mask)
        if group is None:
            group = _TupleGroup(mask)
            self._groups[mask] = group
        key = (-rule.priority, self._sequence)
        self._sequence += 1
        group.insert(key, rule)
        self._size += 1
        self._scan_dirty = True

    def remove(self, rule: Rule) -> bool:
        """Remove ``rule`` by identity."""
        group = self._groups.get(rule.match.ternary.mask)
        if group is None:
            return False
        removed = group.remove(rule)
        if removed:
            self._size -= 1
            if not len(group):
                del self._groups[rule.match.ternary.mask]
            self._scan_dirty = True
        return removed

    def _resort(self) -> None:
        self._scan_order = sorted(
            self._groups.values(), key=lambda g: -g.max_priority
        )
        self._scan_dirty = False

    # -- lookup ----------------------------------------------------------------------
    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        """The winning rule for ``header_bits`` (RuleTable-equivalent).

        Scans groups in descending max-priority order and stops as soon as
        the current best cannot be beaten — the standard tuple-space
        pruning.
        """
        if self._scan_dirty:
            self._resort()
        best_key: Optional[Tuple[int, int]] = None
        best_rule: Optional[Rule] = None
        for group in self._scan_order:
            if best_rule is not None and group.max_priority < best_rule.priority:
                break
            hit = group.lookup(header_bits)
            if hit is None:
                continue
            key, rule = hit
            if best_key is None or key < best_key:
                best_key = key
                best_rule = rule
        return best_rule

    def lookup(self, packet: Packet) -> Optional[Rule]:
        """Winner for a packet."""
        return self.lookup_bits(packet.header_bits)

    # -- introspection -----------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of distinct mask shapes (the classifier's width)."""
        return len(self._groups)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"<TupleSpaceTable {self._size} rules in {self.tuple_count} tuples>"
