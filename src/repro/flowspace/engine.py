"""Pluggable match engines — the classifier lookup substrate.

DIFANE's core argument is that packet classification belongs in the data
plane at hardware speed.  In this reproduction every classifier owner
(:class:`~repro.flowspace.table.RuleTable`, the TCAM model, the pipeline,
the baselines) used to carry its own linear scan; this module extracts the
lookup substrate into a single :class:`MatchEngine` interface with three
conforming backends so the storage/lookup strategy is a deployment knob
rather than a code path:

* :class:`LinearEngine` — the priority-ordered linear scan.  Semantics
  oracle: every other engine is property-tested winner-for-winner
  equivalent to it.
* :class:`TupleSpaceEngine` — tuple-space search (Srinivasan et al.; the
  structure behind Open vSwitch megaflows): rules grouped by mask shape,
  one hash probe per group.
* :class:`DecisionTreeEngine` — a HiCuts-style binary decision tree over
  header bits, reusing the partitioner's cut-selection machinery from
  :mod:`repro.core.partition`; lookups walk the tree and scan a small leaf.

All engines implement identical semantics: the winner is the matching rule
with the highest priority, ties broken by insertion order
(first-installed-wins, the OpenFlow convention).  Engines are selected by
name through :func:`create_engine`; the process-wide default (settable from
the CLI's ``--engine`` flag) is managed by :func:`set_default_engine`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Rule
from repro.flowspace.tuplespace import TupleSpaceTable

__all__ = [
    "MatchEngine",
    "LinearEngine",
    "TupleSpaceEngine",
    "DecisionTreeEngine",
    "ENGINE_CHOICES",
    "create_engine",
    "set_default_engine",
    "get_default_engine",
]

#: Ordering key of a rule inside an engine: priority descending, then
#: insertion sequence ascending.  Smaller key = wins lookup.
_Key = Tuple[int, int]


class MatchEngine:
    """The interface every lookup backend implements.

    An engine owns rule *storage* and *lookup*; policy concerns (capacity,
    eviction, counters, analysis) stay with the owner.  Subclasses must
    implement :meth:`add`, :meth:`remove`, :meth:`lookup_bits`,
    :meth:`rules`, :meth:`clear` and :meth:`__len__`; :meth:`batch_lookup`
    and :meth:`remove_if` have generic implementations they may override.
    """

    #: Registry name (set by subclasses; used in reprs and errors).
    name = "abstract"

    def __init__(self, layout: HeaderLayout):
        self.layout = layout

    # -- mutation ----------------------------------------------------------
    def add(self, rule: Rule) -> None:
        """Insert ``rule``; later lookups must honour its priority."""
        raise NotImplementedError

    def add_all(self, rules: Iterable[Rule]) -> None:
        """Insert a batch of rules; equivalent to ``add`` in order.

        Engines with per-insert ordering costs override this with a
        construction fast path (group/sort once) — the observable state
        afterwards must be identical to one-at-a-time ``add`` calls.
        """
        for rule in rules:
            self.add(rule)

    def remove(self, rule: Rule) -> bool:
        """Remove ``rule`` (by identity); returns whether it was present."""
        raise NotImplementedError

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        """Remove and return every rule satisfying ``predicate``."""
        doomed = [rule for rule in self.rules() if predicate(rule)]
        for rule in doomed:
            self.remove(rule)
        return doomed

    def clear(self) -> None:
        """Remove every rule (sequence state is reset too)."""
        raise NotImplementedError

    # -- lookup ------------------------------------------------------------
    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        """The winning rule for packed ``header_bits``, or ``None``."""
        raise NotImplementedError

    def batch_lookup(self, header_bits_seq: Iterable[int]) -> List[Optional[Rule]]:
        """Classify a burst of packed headers in one call.

        Engines override this when they can hoist per-lookup setup (dirty
        checks, attribute loads) out of the loop; the contract is
        element-wise identical to :meth:`lookup_bits`.
        """
        lookup = self.lookup_bits
        return [lookup(bits) for bits in header_bits_seq]

    # -- views -------------------------------------------------------------
    def rules(self) -> List[Rule]:
        """Every stored rule, in lookup (priority, then insertion) order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, rule: Rule) -> bool:
        return any(existing is rule for existing in self.rules())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {len(self)} rules>"

    # -- shared helpers ----------------------------------------------------
    def _check_layout(self, rule: Rule) -> None:
        if rule.match.layout != self.layout:
            raise ValueError("rule layout differs from engine layout")


class LinearEngine(MatchEngine):
    """Priority-ordered list with linear-scan lookup (the semantics oracle).

    Identical behaviour to the historical ``RuleTable`` internals, plus a
    ``rule_id → rule`` index so removal no longer identity-scans the whole
    list: membership is O(1) and locating the list slot is a binary search
    on the (unique) ordering key.
    """

    name = "linear"

    def __init__(self, layout: HeaderLayout, rules: Optional[Iterable[Rule]] = None):
        super().__init__(layout)
        self._rules: List[Rule] = []
        self._sequence = 0
        #: rule_id -> insertion sequence (the tie-break half of the key).
        self._order: Dict[int, int] = {}
        #: rule_id -> rule, for O(1) identity membership.
        self._by_id: Dict[int, Rule] = {}
        if rules:
            for rule in rules:
                self.add(rule)

    def _key(self, rule: Rule) -> _Key:
        return (-rule.priority, self._order[rule.rule_id])

    # -- mutation ----------------------------------------------------------
    def add(self, rule: Rule) -> None:
        self._check_layout(rule)
        self._order[rule.rule_id] = self._sequence
        self._by_id[rule.rule_id] = rule
        self._sequence += 1
        self._rules.insert(self._bisect(self._key(rule)), rule)

    def _bisect(self, key: _Key) -> int:
        """First index whose key is greater than ``key``."""
        low, high = 0, len(self._rules)
        while low < high:
            mid = (low + high) // 2
            if self._key(self._rules[mid]) <= key:
                low = mid + 1
            else:
                high = mid
        return low

    def remove(self, rule: Rule) -> bool:
        if self._by_id.get(rule.rule_id) is not rule:
            return False
        index = self._bisect(self._key(rule)) - 1
        # Keys are unique, so the slot immediately left of the upper bound
        # is the rule itself.
        assert self._rules[index] is rule
        del self._rules[index]
        del self._order[rule.rule_id]
        del self._by_id[rule.rule_id]
        return True

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        kept: List[Rule] = []
        removed: List[Rule] = []
        for rule in self._rules:
            (removed if predicate(rule) else kept).append(rule)
        self._rules = kept
        for rule in removed:
            del self._order[rule.rule_id]
            del self._by_id[rule.rule_id]
        return removed

    def clear(self) -> None:
        self._rules.clear()
        self._order.clear()
        self._by_id.clear()
        self._sequence = 0

    # -- lookup ------------------------------------------------------------
    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        for rule in self._rules:
            if rule.match.matches_bits(header_bits):
                return rule
        return None

    def batch_lookup(self, header_bits_seq: Iterable[int]) -> List[Optional[Rule]]:
        rules = self._rules
        results: List[Optional[Rule]] = []
        append = results.append
        for bits in header_bits_seq:
            winner = None
            for rule in rules:
                if rule.match.matches_bits(bits):
                    winner = rule
                    break
            append(winner)
        return results

    # -- views -------------------------------------------------------------
    def rules(self) -> List[Rule]:
        return list(self._rules)

    def ordered_view(self) -> Sequence[Rule]:
        """The live ordered list (no copy); callers must not mutate it."""
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return self._by_id.get(rule.rule_id) is rule


class TupleSpaceEngine(TupleSpaceTable, MatchEngine):
    """Tuple-space search behind the :class:`MatchEngine` interface.

    Adopts :class:`~repro.flowspace.tuplespace.TupleSpaceTable` (which was
    previously dead code) and adds the interface surface the engine layer
    needs: ordered :meth:`rules`, :meth:`clear`, predicate removal and
    batch lookup.
    """

    name = "tuplespace"

    def __init__(self, layout: HeaderLayout, rules: Optional[Iterable[Rule]] = None):
        TupleSpaceTable.__init__(self, layout, rules)

    def add_all(self, rules: Iterable[Rule]) -> None:
        self._bulk_load(rules)

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        doomed = [rule for rule in self.rules() if predicate(rule)]
        for rule in doomed:
            self.remove(rule)
        return doomed

    def clear(self) -> None:
        self._groups.clear()
        self._scan_order = []
        self._scan_dirty = False
        self._size = 0
        self._sequence = 0

    def batch_lookup(self, header_bits_seq: Iterable[int]) -> List[Optional[Rule]]:
        lookup = self.lookup_bits
        return [lookup(bits) for bits in header_bits_seq]

    def rules(self) -> List[Rule]:
        entries = [
            (key, rule)
            for group in self._groups.values()
            for bucket in group.buckets.values()
            for key, rule in bucket
        ]
        entries.sort(key=lambda item: item[0])
        return [rule for _, rule in entries]

    def __contains__(self, rule: Rule) -> bool:
        group = self._groups.get(rule.match.ternary.mask)
        if group is None:
            return False
        bucket = group.buckets.get(rule.match.ternary.value)
        return any(existing is rule for _, existing in bucket or ())


class DecisionTreeEngine(MatchEngine):
    """Bit-cut decision-tree lookup (HiCuts-style), built lazily.

    Reuses the partitioner's cut-selection machinery
    (:func:`repro.core.partition._choose_cut` — minimize straddling rules,
    then balance) to build a binary tree over header bits; each leaf holds
    the rules overlapping its region in lookup order, so a lookup walks
    ~log(n/leaf) bits and scans a small leaf.

    Wildcard-heavy rules copy into both children of every cut, so an
    unconstrained tree blows up superlinearly on ClassBench-style
    policies.  The build budgets total duplication at ``space_factor``
    extra copies per rule (HiCuts' space-factor measure) and passes the
    budget *proportionally* down the recursion — a global depth-first pool
    starves late subtrees into giant leaves, which is exactly where
    probes land.

    Mutations after a build go to a linear *overlay* (adds) or are masked
    by the authoritative base store (removes); the tree is rebuilt lazily
    once the overlay outgrows ``rebuild_slack`` — so churny tables degrade
    gracefully toward linear behaviour between rebuilds instead of paying
    a full O(n·width) rebuild per install.
    """

    name = "dtree"

    def __init__(
        self,
        layout: HeaderLayout,
        rules: Optional[Iterable[Rule]] = None,
        leaf_size: int = 16,
        max_depth: Optional[int] = None,
        space_factor: int = 8,
    ):
        super().__init__(layout)
        self.leaf_size = leaf_size
        #: Depth cap; every cut fixes one header bit, so ``layout.width``
        #: (the default) is the natural ceiling, not a tuning knob.
        self.max_depth = layout.width if max_depth is None else max_depth
        self.space_factor = space_factor
        #: Authoritative ordered storage (also the overlay's membership oracle).
        self._base = LinearEngine(layout)
        #: The built tree: nested (bit, zero_child, one_child) tuples with
        #: list leaves of (key, rule); ``None`` = no tree yet.
        self._root = None
        #: rule_ids the current tree covers.
        self._tree_ids: frozenset = frozenset()
        #: Rules added since the last build, in lookup order (key, rule).
        self._overlay: List[Tuple[_Key, Rule]] = []
        #: Tree entries removed since the last build.
        self._tombstones = 0
        if rules:
            for rule in rules:
                self.add(rule)

    # -- mutation ----------------------------------------------------------
    def add(self, rule: Rule) -> None:
        self._check_layout(rule)
        self._base.add(rule)
        if self._root is not None:
            key = self._base._key(rule)
            index = 0
            for index, (existing_key, _) in enumerate(self._overlay):
                if existing_key > key:
                    break
            else:
                index = len(self._overlay)
            self._overlay.insert(index, (key, rule))

    def remove(self, rule: Rule) -> bool:
        removed = self._base.remove(rule)
        if removed and self._root is not None:
            if rule.rule_id in self._tree_ids:
                self._tombstones += 1
            else:
                self._overlay = [
                    entry for entry in self._overlay if entry[1] is not rule
                ]
        return removed

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        removed = self._base.remove_if(predicate)
        if removed and self._root is not None:
            doomed_ids = {rule.rule_id for rule in removed}
            self._tombstones += len(doomed_ids & self._tree_ids)
            self._overlay = [
                entry for entry in self._overlay
                if entry[1].rule_id not in doomed_ids
            ]
        return removed

    def clear(self) -> None:
        self._base.clear()
        self._root = None
        self._tree_ids = frozenset()
        self._overlay = []
        self._tombstones = 0

    # -- the tree ----------------------------------------------------------
    def _stale(self) -> bool:
        slack = max(32, len(self._base) // 4)
        return len(self._overlay) + self._tombstones > slack

    def _ensure_tree(self) -> None:
        if self._root is None or self._stale():
            self.build()

    def build(self) -> None:
        """(Re)build the decision tree over the current rule set."""
        # Imported lazily: core.partition depends on flowspace, so a
        # module-level import here would be circular.
        import numpy as np

        from repro.core.partition import (
            _Node,
            _choose_cut,
            _rule_bit_matrix,
            _split,
        )
        from repro.flowspace.ternary import Ternary

        ordered = self._base.ordered_view()
        entries = [(self._base._key(rule), rule) for rule in ordered]
        rules = [rule for _, rule in entries]
        matrix = _rule_bit_matrix(rules, self.layout.width)
        root = _Node(Ternary.wildcard(self.layout.width), np.arange(len(rules)), 0)

        def grow(node, budget):
            if (
                len(node.indices) <= self.leaf_size
                or node.depth >= self.max_depth
            ):
                return [entries[i] for i in node.indices]
            cut = _choose_cut(node, matrix, "split-aware")
            if cut is None:
                return [entries[i] for i in node.indices]
            left, right = _split(node, matrix, cut)
            n_left, n_right = len(left.indices), len(right.indices)
            duplicated = n_left + n_right - len(node.indices)
            if duplicated >= len(node.indices) or duplicated > budget:
                # Every rule straddles the cut, or this subtree's share of
                # the duplication budget is spent: stop and scan linearly.
                return [entries[i] for i in node.indices]
            # Split the remaining budget proportionally to child size so
            # no subtree is starved into a giant leaf.
            remaining = budget - duplicated
            left_budget = remaining * n_left // (n_left + n_right)
            return (
                cut,
                grow(left, left_budget),
                grow(right, remaining - left_budget),
            )

        self._root = grow(root, max(self.space_factor * len(rules), 256))
        self._tree_ids = frozenset(rule.rule_id for rule in rules)
        self._overlay = []
        self._tombstones = 0

    # -- lookup ------------------------------------------------------------
    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        self._ensure_tree()
        return self._lookup_built(header_bits)

    def _lookup_built(self, header_bits: int) -> Optional[Rule]:
        alive = self._base._by_id
        node = self._root
        while type(node) is tuple:
            bit, zero_child, one_child = node
            node = one_child if (header_bits >> bit) & 1 else zero_child
        best: Optional[Tuple[_Key, Rule]] = None
        for key, rule in node:
            if alive.get(rule.rule_id) is rule and rule.match.matches_bits(
                header_bits
            ):
                best = (key, rule)
                break  # leaves are key-sorted: first live match wins
        for key, rule in self._overlay:
            if best is not None and best[0] < key:
                break  # overlay is key-sorted too
            if rule.match.matches_bits(header_bits):
                best = (key, rule)
                break
        return best[1] if best is not None else None

    def batch_lookup(self, header_bits_seq: Iterable[int]) -> List[Optional[Rule]]:
        self._ensure_tree()
        lookup = self._lookup_built
        return [lookup(bits) for bits in header_bits_seq]

    # -- views -------------------------------------------------------------
    def rules(self) -> List[Rule]:
        return self._base.rules()

    def __len__(self) -> int:
        return len(self._base)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._base


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

_ENGINES: Dict[str, type] = {
    "linear": LinearEngine,
    "tuplespace": TupleSpaceEngine,
    "dtree": DecisionTreeEngine,
}

#: Valid values for the CLI's ``--engine`` flag.
ENGINE_CHOICES = tuple(_ENGINES)

_default_engine = "linear"

#: Anything :func:`create_engine` accepts: a registry name, ``None`` (use
#: the process default), an engine instance, or an engine factory/class.
EngineSpec = Union[None, str, MatchEngine, Callable[[HeaderLayout], MatchEngine]]


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (the CLI's ``--engine`` flag)."""
    global _default_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; choose from {ENGINE_CHOICES}")
    _default_engine = name


def get_default_engine() -> str:
    """The current process-wide default engine name."""
    return _default_engine


def create_engine(spec: EngineSpec, layout: HeaderLayout) -> MatchEngine:
    """Resolve an engine spec to a fresh (or given) engine instance.

    ``None`` resolves to the process default, a string through the
    registry, a :class:`MatchEngine` instance is used as-is (caller keeps
    ownership), and any other callable is invoked with ``layout``.
    """
    if spec is None:
        spec = _default_engine
    if isinstance(spec, str):
        try:
            factory = _ENGINES[spec]
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; choose from {ENGINE_CHOICES}"
            ) from None
        return factory(layout)
    if isinstance(spec, MatchEngine):
        return spec
    return spec(layout)
