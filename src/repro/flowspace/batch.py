"""Columnar packet batches — the struct-of-arrays hot-path representation.

A :class:`PacketBatch` holds a same-instant burst of packets as one numpy
column per header field plus parallel bookkeeping arrays (flow ids, packet
ids, sizes, hops, via-flags), instead of one :class:`Packet` object per
packet.  The burst path (inject → classify → forward → deliver) moves the
whole batch through one scheduler event per hop and classifies it with
vectorized mask compares (see :mod:`repro.flowspace.vectormatch`), which
is where the ≥10x injected-packets/s of ``bench_perf_core`` comes from.

Batches are *views with teeth*: :meth:`packets` materializes the exact
scalar :class:`Packet` list (same packet ids, same attribute values), so
the legacy per-packet path is always reachable and the columnar path can
be property-tested packet-for-packet against it.

Representable layouts
---------------------
Columns are ``uint64``, so every field must be at most 63 bits wide
(FIVE_TUPLE and OPENFLOW_10 qualify; the IPv6 layout's 128-bit addresses
do not).  Unsupported layouts still batch — the packed header words are
kept as Python ints and classification falls back to the engine's
``batch_lookup`` — they just don't vectorize.

Mode flag
---------
The columnar fast path is opt-in per process (CLI ``--columnar``),
mirroring :func:`repro.flowspace.engine.set_default_engine`.  With the
flag off (the default), batch entry points degrade to the scalar oracle
path with identical observable behaviour — that equivalence is pinned by
``tests/test_columnar.py`` and the golden CI job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet, reserve_packet_ids

__all__ = [
    "PacketBatch",
    "set_columnar",
    "columnar_enabled",
    "layout_vectorizes",
]

#: Widest field (bits) that fits a uint64 column without sign trouble.
_MAX_COLUMN_BITS = 63

_columnar = False


def set_columnar(enabled: bool) -> None:
    """Set the process-wide columnar mode (the CLI's ``--columnar`` flag)."""
    global _columnar
    _columnar = bool(enabled)


def columnar_enabled() -> bool:
    """True when the columnar burst fast path is active."""
    return _columnar


def layout_vectorizes(layout: HeaderLayout) -> bool:
    """True when every field of ``layout`` fits a uint64 column."""
    return all(spec.width <= _MAX_COLUMN_BITS for spec in layout.fields)


class PacketBatch:
    """A same-instant burst of packets in struct-of-arrays form.

    Per-packet data lives in parallel numpy arrays; attributes that are
    uniform across a burst by construction (creation time, ingress switch,
    encapsulation state) are shared scalars.  Mutating helpers
    (:meth:`set_field`, ``hops += 1``, the via-flag arrays) match the
    scalar :class:`Packet` bookkeeping operation-for-operation.

    Attributes
    ----------
    fields:
        ``{field name: uint64 column}`` when the layout vectorizes, else
        ``None`` (the packed words in ``_bits`` are then authoritative).
    flow_ids:
        Object array of per-packet flow ids (``None`` allowed, matching
        ``Packet.flow_id``).
    packet_ids:
        int64 array drawn from the same global counter scalar packets use,
        so a burst consumes ids exactly as its scalar materialization would.
    """

    __slots__ = (
        "layout", "fields", "flow_ids", "packet_ids", "size_bytes", "hops",
        "via_authority", "via_controller", "created_at", "ingress_switch",
        "encap_destination", "_bits",
    )

    def __init__(
        self,
        layout: HeaderLayout,
        fields: Optional[Dict[str, np.ndarray]],
        flow_ids: np.ndarray,
        packet_ids: np.ndarray,
        size_bytes: np.ndarray,
        hops: np.ndarray,
        via_authority: np.ndarray,
        via_controller: np.ndarray,
        created_at: Optional[float] = None,
        ingress_switch: Optional[str] = None,
        encap_destination: Optional[str] = None,
        bits: Optional[List[int]] = None,
    ):
        self.layout = layout
        self.fields = fields
        self.flow_ids = flow_ids
        self.packet_ids = packet_ids
        self.size_bytes = size_bytes
        self.hops = hops
        self.via_authority = via_authority
        self.via_controller = via_controller
        self.created_at = created_at
        self.ingress_switch = ingress_switch
        self.encap_destination = encap_destination
        #: Lazily packed header words (list of Python ints; the layout may
        #: be wider than 64 bits, so these cannot live in numpy).
        self._bits = bits

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_fields(
        cls,
        layout: HeaderLayout,
        count: int,
        flow_ids: Optional[Sequence[int]] = None,
        size_bytes: int = 64,
        **field_columns,
    ) -> "PacketBatch":
        """Build a batch from per-field value columns.

        Each keyword is a field name mapped to a scalar (broadcast) or a
        length-``count`` sequence; unset fields are zero, like
        :meth:`Packet.from_fields`.  Packet ids are reserved from the
        global counter in batch order.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        vectorizes = layout_vectorizes(layout)
        columns: Optional[Dict[str, np.ndarray]] = {} if vectorizes else None
        wide_values: Dict[str, Sequence[int]] = {}
        for name, values in field_columns.items():
            layout.field(name)  # raises KeyError on unknown fields
            if vectorizes:
                columns[name] = np.broadcast_to(
                    np.asarray(values, dtype=np.uint64), (count,)
                ).copy()
            else:
                # Python ints only: packed words exceed 64 bits, so numpy
                # integer types would overflow in the shift below.
                wide_values[name] = (
                    [int(values)] * count
                    if np.isscalar(values)
                    else [int(value) for value in values]
                )
        if vectorizes:
            for spec in layout.fields:
                if spec.name not in columns:
                    columns[spec.name] = np.zeros(count, dtype=np.uint64)
            bits = None
        else:
            bits = [
                layout.pack_values(**{n: v[i] for n, v in wide_values.items()})
                for i in range(count)
            ]
        if flow_ids is None:
            flow_array = np.full(count, None, dtype=object)
        else:
            flow_array = np.empty(count, dtype=object)
            flow_array[:] = list(flow_ids)
        return cls(
            layout,
            columns,
            flow_array,
            np.array(reserve_packet_ids(count), dtype=np.int64),
            np.full(count, size_bytes, dtype=np.int64),
            np.zeros(count, dtype=np.int32),
            np.zeros(count, dtype=bool),
            np.zeros(count, dtype=bool),
            bits=bits,
        )

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Adopt an existing scalar burst (shared attributes must be uniform).

        The packets keep their ids; shared scalars (creation time, ingress,
        encapsulation) are taken from the first packet and must agree
        across the burst — batches model same-instant single-ingress
        bursts, which is the only shape the injection APIs produce.
        """
        packets = list(packets)
        if not packets:
            raise ValueError("cannot batch zero packets")
        first = packets[0]
        layout = first.layout
        for packet in packets:
            if (
                packet.layout != layout
                or packet.created_at != first.created_at
                or packet.ingress_switch != first.ingress_switch
                or packet.encap_destination != first.encap_destination
            ):
                raise ValueError("burst packets must share layout and shared scalars")
        count = len(packets)
        bits = [packet.header_bits for packet in packets]
        columns: Optional[Dict[str, np.ndarray]] = None
        if layout_vectorizes(layout):
            columns = _columns_from_bits(layout, bits)
        flow_array = np.empty(count, dtype=object)
        flow_array[:] = [packet.flow_id for packet in packets]
        return cls(
            layout,
            columns,
            flow_array,
            np.array([packet.packet_id for packet in packets], dtype=np.int64),
            np.array([packet.size_bytes for packet in packets], dtype=np.int64),
            np.array([packet.hops for packet in packets], dtype=np.int32),
            np.array([packet.via_authority for packet in packets], dtype=bool),
            np.array([packet.via_controller for packet in packets], dtype=bool),
            created_at=first.created_at,
            ingress_switch=first.ingress_switch,
            encap_destination=first.encap_destination,
            bits=bits,
        )

    # -- scalar view -----------------------------------------------------------
    def packets(self) -> List[Packet]:
        """Materialize the exact scalar view of this batch.

        Every attribute — including ``packet_id`` — round-trips, so a
        columnar run and its scalar oracle see identical packets.
        """
        bits = self.header_bits_list()
        flow_ids = self.flow_ids
        packet_ids = self.packet_ids
        sizes = self.size_bytes
        hops = self.hops
        via_a = self.via_authority
        via_c = self.via_controller
        layout = self.layout
        created_at = self.created_at
        ingress = self.ingress_switch
        encap = self.encap_destination
        out = []
        for i in range(len(packet_ids)):
            packet = Packet.__new__(Packet)
            packet.layout = layout
            packet.header_bits = bits[i]
            packet.flow_id = flow_ids[i]
            packet.size_bytes = int(sizes[i])
            packet.packet_id = int(packet_ids[i])
            packet.created_at = created_at
            packet.ingress_switch = ingress
            packet.encap_destination = encap
            packet.hops = int(hops[i])
            packet.via_authority = bool(via_a[i])
            packet.via_controller = bool(via_c[i])
            out.append(packet)
        return out

    # -- packed header words ------------------------------------------------------
    def header_bits_list(self) -> List[int]:
        """The packed header word of every packet (cached until a rewrite)."""
        if self._bits is None:
            total = np.zeros(len(self), dtype=object)
            layout = self.layout
            for name, column in self.fields.items():
                offset = layout.offset(name)
                if offset:
                    total |= column.astype(object) << offset
                else:
                    total |= column.astype(object)
            self._bits = [int(word) for word in total]
        return self._bits

    # -- mutation ---------------------------------------------------------------
    def set_field(self, name: str, value: int) -> None:
        """Vectorized ``SetField`` rewrite (matches the scalar bit splice)."""
        spec = self.layout.field(name)
        masked = value & ((1 << spec.width) - 1)
        if self.fields is not None:
            self.fields[name][:] = np.uint64(masked)
            self._bits = None
            return
        offset = self.layout.offset(name)
        field_mask = ((1 << spec.width) - 1) << offset
        shifted = (value << offset) & field_mask
        self._bits = [
            (word & ~field_mask) | shifted for word in self.header_bits_list()
        ]

    def encapsulate(self, destination: str) -> None:
        """Tunnel the whole batch toward ``destination``."""
        self.encap_destination = destination

    def decapsulate(self) -> None:
        """Strip the tunnel header from the whole batch."""
        self.encap_destination = None

    # -- sub-batches -----------------------------------------------------------------
    def select(self, indices) -> "PacketBatch":
        """A sub-batch of the packets at ``indices`` (copies, own identity)."""
        indices = np.asarray(indices)
        fields = None
        if self.fields is not None:
            fields = {name: column[indices] for name, column in self.fields.items()}
        bits = None
        if self._bits is not None:
            existing = self._bits
            bits = [existing[i] for i in indices.tolist()]
        return PacketBatch(
            self.layout,
            fields,
            self.flow_ids[indices],
            self.packet_ids[indices],
            self.size_bytes[indices],
            self.hops[indices],
            self.via_authority[indices],
            self.via_controller[indices],
            created_at=self.created_at,
            ingress_switch=self.ingress_switch,
            encap_destination=self.encap_destination,
            bits=bits,
        )

    # -- dunder -------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packet_ids)

    def __repr__(self) -> str:
        encap = f" encap={self.encap_destination}" if self.encap_destination else ""
        return f"<PacketBatch n={len(self)} ingress={self.ingress_switch}{encap}>"


def _columns_from_bits(
    layout: HeaderLayout, bits: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Unpack packed header words into per-field uint64 columns."""
    words = np.array(bits, dtype=object)
    columns: Dict[str, np.ndarray] = {}
    for spec in layout.fields:
        offset = layout.offset(spec.name)
        mask = (1 << spec.width) - 1
        columns[spec.name] = ((words >> offset) & mask).astype(np.uint64)
    return columns
