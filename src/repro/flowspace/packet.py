"""Concrete packet headers.

A :class:`Packet` is a concrete point in flow space: one value per header
field of a :class:`~repro.flowspace.fields.HeaderLayout`, packed into a
single integer for fast ternary matching.  The simulator annotates packets
with bookkeeping (flow id, ingress/egress, timestamps, encapsulation state)
without touching the header bits.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Optional

from repro.flowspace.fields import HeaderLayout, OPENFLOW_10_LAYOUT, format_ip

__all__ = ["Packet", "reserve_packet_ids"]

_packet_ids = itertools.count()


def reserve_packet_ids(count: int) -> list:
    """Draw ``count`` consecutive ids from the global packet counter.

    The columnar batch path reserves ids at batch-construction time so a
    batch and its scalar materialization carry identical packet ids —
    the equivalence tests compare them directly.
    """
    ids = _packet_ids
    return [next(ids) for _ in range(count)]


class Packet:
    """A concrete packet: packed header bits plus simulator metadata.

    Parameters
    ----------
    layout:
        The header layout the bits are packed against.
    header_bits:
        The packed header word (use :meth:`from_fields` for named fields).
    flow_id:
        Optional opaque flow identifier used by traffic generators; packets
        of the same flow share it.
    size_bytes:
        Wire size used for serialization-delay accounting.
    """

    __slots__ = (
        "layout",
        "header_bits",
        "flow_id",
        "size_bytes",
        "packet_id",
        "created_at",
        "ingress_switch",
        "encap_destination",
        "hops",
        "via_authority",
        "via_controller",
    )

    def __init__(
        self,
        layout: HeaderLayout,
        header_bits: int,
        flow_id: Optional[int] = None,
        size_bytes: int = 64,
    ):
        self.layout = layout
        self.header_bits = header_bits
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        self.packet_id = next(_packet_ids)
        # Simulator bookkeeping, filled in as the packet travels.
        self.created_at: Optional[float] = None
        self.ingress_switch: Optional[str] = None
        self.encap_destination: Optional[str] = None
        self.hops: int = 0
        self.via_authority: bool = False
        self.via_controller: bool = False

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_fields(
        cls,
        layout: HeaderLayout = OPENFLOW_10_LAYOUT,
        flow_id: Optional[int] = None,
        size_bytes: int = 64,
        **field_values: int,
    ) -> "Packet":
        """Build a packet from named field values (unset fields are zero)."""
        return cls(layout, layout.pack_values(**field_values), flow_id, size_bytes)

    @classmethod
    def random(cls, layout: HeaderLayout, rng: random.Random) -> "Packet":
        """A packet with uniformly random header bits (for property tests)."""
        bits = rng.getrandbits(layout.width) if layout.width else 0
        return cls(layout, bits)

    # -- field access ------------------------------------------------------------
    def field(self, name: str) -> int:
        """Concrete value of field ``name``."""
        spec = self.layout.field(name)
        offset = self.layout.offset(name)
        return (self.header_bits >> offset) & ((1 << spec.width) - 1)

    def fields(self) -> Dict[str, int]:
        """All field values as a dict."""
        return self.layout.unpack(self.header_bits)

    def flow_key(self) -> int:
        """A key identifying the microflow — the full header bits."""
        return self.header_bits

    # -- encapsulation (DIFANE redirects tunnel packets to authority switches) --
    def encapsulate(self, destination: str) -> None:
        """Mark the packet as tunnelled to ``destination`` (an authority switch)."""
        self.encap_destination = destination

    def decapsulate(self) -> None:
        """Strip the tunnel header."""
        self.encap_destination = None

    @property
    def is_encapsulated(self) -> bool:
        """True while the packet is inside a redirect tunnel."""
        return self.encap_destination is not None

    # -- rendering -----------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of interesting header fields."""
        parts = []
        for name, value in self.fields().items():
            if value == 0:
                continue
            if name in ("nw_src", "nw_dst"):
                parts.append(f"{name}={format_ip(value)}")
            else:
                parts.append(f"{name}={value}")
        return "Packet(" + (", ".join(parts) if parts else "zero") + ")"

    def __repr__(self) -> str:
        return f"<Packet #{self.packet_id} flow={self.flow_id} bits={self.header_bits:#x}>"
