"""Ternary (0 / 1 / don't-care) bit strings — the core match primitive.

A :class:`Ternary` is an immutable value describing a set of concrete bit
strings of a fixed ``width``.  Bit *i* is

* **cared** (exact) when bit *i* of ``mask`` is 1 — concrete strings must
  carry ``value``'s bit there, and
* **wildcard** when bit *i* of ``mask`` is 0 — concrete strings may carry
  either bit.

This is exactly the representation a TCAM stores, and it is the currency of
header-space analysis: DIFANE's flow-space partitioning, authority-rule
clipping, and independent cache-rule generation are all implemented as
operations over ternary strings (see :mod:`repro.core.partition` and
:mod:`repro.core.cachegen`).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.flowspace.bits import bit_at, mask_of_width, popcount

__all__ = ["Ternary"]


class Ternary:
    """An immutable ternary match over ``width`` bits.

    Parameters
    ----------
    value:
        The cared bit values.  Bits outside ``mask`` are normalized to 0 so
        that equal matches compare equal.
    mask:
        1-bits mark exact-match positions, 0-bits mark wildcards.
    width:
        Total number of bits in the match window.
    """

    __slots__ = ("value", "mask", "width", "_hash")

    def __init__(self, value: int, mask: int, width: int):
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        full = mask_of_width(width)
        if mask & ~full:
            raise ValueError(f"mask {mask:#x} exceeds width {width}")
        if value & ~full:
            raise ValueError(f"value {value:#x} exceeds width {width}")
        object.__setattr__(self, "value", value & mask)
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "_hash", None)

    # -- immutability -----------------------------------------------------
    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Ternary is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restoration
        # (it setattrs each slot); rebuild through the constructor instead.
        # Rules cross pickle boundaries in sharded / multi-process runs.
        return (Ternary, (self.value, self.mask, self.width))

    # -- constructors ------------------------------------------------------
    @classmethod
    def wildcard(cls, width: int) -> "Ternary":
        """The fully wildcarded match (matches every ``width``-bit string)."""
        return cls(0, 0, width)

    @classmethod
    def exact(cls, value: int, width: int) -> "Ternary":
        """An exact match on a single concrete ``width``-bit string."""
        return cls(value, mask_of_width(width), width)

    @classmethod
    def from_string(cls, text: str) -> "Ternary":
        """Parse a string of ``0``, ``1`` and ``x``/``*`` characters.

        The leftmost character is the most significant bit, mirroring how
        classifier rules are written in papers:  ``Ternary.from_string("1x0")``
        matches ``100`` and ``110``.
        """
        value = 0
        mask = 0
        for ch in text:
            value <<= 1
            mask <<= 1
            if ch == "1":
                value |= 1
                mask |= 1
            elif ch == "0":
                mask |= 1
            elif ch in ("x", "X", "*"):
                pass
            else:
                raise ValueError(f"invalid ternary character {ch!r} in {text!r}")
        return cls(value, mask, len(text))

    @classmethod
    def from_prefix(cls, value: int, prefix_len: int, width: int) -> "Ternary":
        """Build a prefix match: the top ``prefix_len`` bits of ``value``."""
        if not 0 <= prefix_len <= width:
            raise ValueError(f"prefix length {prefix_len} out of range for width {width}")
        mask = mask_of_width(prefix_len) << (width - prefix_len) if prefix_len else 0
        return cls(value & mask, mask, width)

    # -- basic predicates ---------------------------------------------------
    def is_exact(self) -> bool:
        """True when every bit is cared (a single concrete string)."""
        return self.mask == mask_of_width(self.width)

    def is_wildcard(self) -> bool:
        """True when no bit is cared (matches everything)."""
        return self.mask == 0

    def cared_bits(self) -> int:
        """Number of exact-match (non-wildcard) bit positions."""
        return popcount(self.mask)

    def wildcard_bits(self) -> int:
        """Number of wildcard bit positions."""
        return self.width - self.cared_bits()

    def size(self) -> int:
        """Number of concrete bit strings this ternary matches (2^wildcards)."""
        return 1 << self.wildcard_bits()

    def matches(self, packet_bits: int) -> bool:
        """True when the concrete string ``packet_bits`` is in this set."""
        return (packet_bits & self.mask) == self.value

    def _check_width(self, other: "Ternary") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- set relations ------------------------------------------------------
    def intersects(self, other: "Ternary") -> bool:
        """True when some concrete string matches both ternaries.

        Two ternaries are compatible iff they agree on every bit both care
        about — the classic single-instruction TCAM overlap test.
        """
        self._check_width(other)
        common = self.mask & other.mask
        return (self.value ^ other.value) & common == 0

    def intersection(self, other: "Ternary") -> Optional["Ternary"]:
        """The ternary describing strings matched by both, or ``None``."""
        self._check_width(other)
        if not self.intersects(other):
            return None
        return Ternary(self.value | other.value, self.mask | other.mask, self.width)

    def covers(self, other: "Ternary") -> bool:
        """True when every string of ``other`` is matched by ``self``.

        ``self`` subsumes ``other`` iff ``self`` cares about a subset of
        ``other``'s bits and agrees on them.
        """
        self._check_width(other)
        if self.mask & ~other.mask:
            return False
        return (self.value ^ other.value) & self.mask == 0

    def subtract(self, other: "Ternary") -> List["Ternary"]:
        """Return disjoint ternaries covering ``self`` minus ``other``.

        Uses the standard header-space decomposition: walk the bits where
        ``other`` cares but ``self`` does not, flipping one at a time.  The
        result is a list of pairwise-disjoint ternaries whose union is
        exactly ``self \\ other``; it is empty when ``other`` covers
        ``self``.
        """
        self._check_width(other)
        if not self.intersects(other):
            return [self]
        remainder: List[Ternary] = []
        value, mask = self.value, self.mask
        # Bits that other constrains beyond self.
        extra = other.mask & ~self.mask
        for position in _iter_bits_high_to_low(extra, self.width):
            other_bit = bit_at(other.value, position)
            flipped_value = value | ((1 - other_bit) << position)
            flipped_mask = mask | (1 << position)
            remainder.append(Ternary(flipped_value, flipped_mask, self.width))
            # Continue inside the half that still intersects `other`.
            value = value | (other_bit << position)
            mask = flipped_mask
        return remainder

    # -- enumeration & sampling ----------------------------------------------
    def enumerate(self, limit: Optional[int] = None) -> Iterator[int]:
        """Yield the concrete strings matched, up to an optional ``limit``.

        Intended for tests and tiny matches; guard with ``size()`` first for
        anything wide.
        """
        free_positions = [i for i in range(self.width) if not bit_at(self.mask, i)]
        total = 1 << len(free_positions)
        count = total if limit is None else min(limit, total)
        for combo in range(count):
            bits = self.value
            for index, position in enumerate(free_positions):
                if bit_at(combo, index):
                    bits |= 1 << position
            yield bits

    def sample(self, rng: random.Random) -> int:
        """Return a uniformly random concrete string matched by this ternary."""
        bits = self.value
        for position in range(self.width):
            if not bit_at(self.mask, position) and rng.random() < 0.5:
                bits |= 1 << position
        return bits

    # -- structure helpers -----------------------------------------------------
    def bit(self, position: int) -> str:
        """The symbol at ``position`` (0 = LSB): ``'0'``, ``'1'`` or ``'x'``."""
        if not 0 <= position < self.width:
            raise IndexError(f"bit {position} out of range for width {self.width}")
        if not bit_at(self.mask, position):
            return "x"
        return "1" if bit_at(self.value, position) else "0"

    def with_bit(self, position: int, symbol: str) -> "Ternary":
        """Return a copy with ``position`` forced to ``'0'``, ``'1'`` or ``'x'``."""
        if not 0 <= position < self.width:
            raise IndexError(f"bit {position} out of range for width {self.width}")
        bit_mask = 1 << position
        if symbol == "x":
            return Ternary(self.value & ~bit_mask, self.mask & ~bit_mask, self.width)
        if symbol == "1":
            return Ternary(self.value | bit_mask, self.mask | bit_mask, self.width)
        if symbol == "0":
            return Ternary(self.value & ~bit_mask, self.mask | bit_mask, self.width)
        raise ValueError(f"invalid ternary symbol {symbol!r}")

    def concat(self, other: "Ternary") -> "Ternary":
        """Concatenate: ``self`` becomes the high-order bits of the result."""
        return Ternary(
            (self.value << other.width) | other.value,
            (self.mask << other.width) | other.mask,
            self.width + other.width,
        )

    def extract(self, offset: int, width: int) -> "Ternary":
        """Extract ``width`` bits starting at ``offset`` (LSB-relative)."""
        if offset < 0 or offset + width > self.width:
            raise ValueError(
                f"slice [{offset}, {offset + width}) out of range for width {self.width}"
            )
        window = mask_of_width(width)
        return Ternary((self.value >> offset) & window, (self.mask >> offset) & window, width)

    # -- dunder plumbing ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ternary):
            return NotImplemented
        return (
            self.width == other.width
            and self.mask == other.mask
            and self.value == other.value
        )

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.value, self.mask, self.width))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        return "".join(self.bit(i) for i in reversed(range(self.width)))

    def __repr__(self) -> str:
        if self.width <= 64:
            return f"Ternary('{self}')"
        return f"Ternary(value={self.value:#x}, mask={self.mask:#x}, width={self.width})"


def _iter_bits_high_to_low(bits: int, width: int):
    """Yield set-bit positions of ``bits`` from most to least significant."""
    for position in range(width - 1, -1, -1):
        if bit_at(bits, position):
            yield position
