"""Header-space algebra: unions of ternary strings.

A :class:`HeaderSpace` is a (possibly overlapping) union of
:class:`~repro.flowspace.ternary.Ternary` strings over the same width.  It
supports the set operations DIFANE's algorithms need:

* the *uncovered remainder* computation used when generating independent
  cache rules (rule minus all higher-priority overlaps),
* partition coverage checks (do the partitions exactly tile the flow
  space?), and
* shadowing analysis (is a rule completely covered by higher-priority
  rules?).

The representation keeps a list of ternaries; ``subtract`` maintains the
invariant that the result's members are pairwise disjoint, which keeps
``total_size`` exact and membership checks cheap.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.flowspace.ternary import Ternary

__all__ = ["HeaderSpace"]


class HeaderSpace:
    """A union of ternary strings of one width."""

    __slots__ = ("width", "_members")

    def __init__(self, width: int, members: Optional[Iterable[Ternary]] = None):
        self.width = width
        self._members: List[Ternary] = []
        if members:
            for member in members:
                self.add(member)

    # -- constructors -------------------------------------------------------
    @classmethod
    def full(cls, width: int) -> "HeaderSpace":
        """The entire ``width``-bit flow space."""
        return cls(width, [Ternary.wildcard(width)])

    @classmethod
    def empty(cls, width: int) -> "HeaderSpace":
        """The empty set."""
        return cls(width)

    @classmethod
    def of(cls, *members: Ternary) -> "HeaderSpace":
        """Union of the given ternaries (must share a width)."""
        if not members:
            raise ValueError("HeaderSpace.of needs at least one member; use empty()")
        return cls(members[0].width, members)

    def copy(self) -> "HeaderSpace":
        """An independent copy sharing no mutable state."""
        space = HeaderSpace(self.width)
        space._members = list(self._members)
        return space

    # -- mutation ---------------------------------------------------------------
    def add(self, member: Ternary) -> None:
        """Add one ternary to the union (dropping it if already covered)."""
        if member.width != self.width:
            raise ValueError(f"member width {member.width} != space width {self.width}")
        for existing in self._members:
            if existing.covers(member):
                return
        # Drop existing members the newcomer covers, to keep the list tight.
        self._members = [m for m in self._members if not member.covers(m)]
        self._members.append(member)

    # -- queries --------------------------------------------------------------------
    @property
    def members(self) -> Sequence[Ternary]:
        """The current ternary members (read-only view)."""
        return tuple(self._members)

    def is_empty(self) -> bool:
        """True when no concrete string is in the set."""
        return not self._members

    def contains_bits(self, bits: int) -> bool:
        """Membership test for a concrete header string."""
        return any(member.matches(bits) for member in self._members)

    def covers(self, ternary: Ternary) -> bool:
        """True when every string of ``ternary`` is in this space.

        Implemented as ``ternary - self == ∅`` so it is exact even when the
        cover requires several members.
        """
        remainder = [ternary]
        for member in self._members:
            next_remainder: List[Ternary] = []
            for piece in remainder:
                next_remainder.extend(piece.subtract(member))
            remainder = next_remainder
            if not remainder:
                return True
        return not remainder

    def intersects(self, ternary: Ternary) -> bool:
        """True when ``ternary`` overlaps any member."""
        return any(member.intersects(ternary) for member in self._members)

    def total_size(self) -> int:
        """Exact number of concrete strings in the set.

        Computed by disjointing the members first, so overlapping members
        are not double counted.
        """
        disjoint: List[Ternary] = []
        for member in self._members:
            pieces = [member]
            for existing in disjoint:
                next_pieces: List[Ternary] = []
                for piece in pieces:
                    next_pieces.extend(piece.subtract(existing))
                pieces = next_pieces
                if not pieces:
                    break
            disjoint.extend(pieces)
        return sum(piece.size() for piece in disjoint)

    def sample(self, rng: random.Random) -> Optional[int]:
        """A concrete member string, or ``None`` when empty.

        Sampling is weighted by member size so points are near-uniform when
        members are disjoint (the invariant ``subtract`` maintains).
        """
        if not self._members:
            return None
        weights = [member.size() for member in self._members]
        chosen = rng.choices(self._members, weights=weights, k=1)[0]
        return chosen.sample(rng)

    # -- algebra ------------------------------------------------------------------------
    def subtract(self, ternary: Ternary) -> "HeaderSpace":
        """A new space equal to ``self`` minus ``ternary``.

        Members of the result are pairwise disjoint whenever ``self``'s
        members were (each member's subtraction yields disjoint pieces).
        """
        result = HeaderSpace(self.width)
        for member in self._members:
            for piece in member.subtract(ternary):
                result._members.append(piece)
        return result

    def subtract_all(self, ternaries: Iterable[Ternary]) -> "HeaderSpace":
        """Subtract every ternary in ``ternaries`` in sequence."""
        space = self
        for ternary in ternaries:
            space = space.subtract(ternary)
            if space.is_empty():
                break
        return space

    def intersection(self, ternary: Ternary) -> "HeaderSpace":
        """A new space equal to ``self`` ∩ ``ternary``."""
        result = HeaderSpace(self.width)
        for member in self._members:
            overlap = member.intersection(ternary)
            if overlap is not None:
                result._members.append(overlap)
        return result

    # -- dunder -------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._members)

    def __repr__(self) -> str:
        if len(self._members) <= 4:
            inner = ", ".join(str(m) for m in self._members)
        else:
            inner = f"{len(self._members)} members"
        return f"HeaderSpace<{self.width}>({inner})"
