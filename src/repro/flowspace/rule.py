"""Prioritized wildcard rules.

A :class:`Rule` couples a :class:`Match` (a ternary over a header layout)
with a priority and an action list, plus the bookkeeping a real switch
keeps per TCAM entry: packet/byte counters, idle/hard timeouts, and — for
DIFANE — the rule *kind* (cache / authority / partition / primary policy)
that determines which pipeline stage it lives in.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import List, Optional

from repro.flowspace.action import Action, ActionList
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.ternary import Ternary

__all__ = ["Match", "Rule", "RuleKind"]

_rule_ids = itertools.count()


class Match:
    """A wildcard match over a named header layout.

    Thin immutable wrapper pairing a packed :class:`Ternary` with its
    :class:`HeaderLayout`, so set operations stay bit-level fast while
    presentation and field access stay name-based.
    """

    __slots__ = ("layout", "ternary")

    def __init__(self, layout: HeaderLayout, ternary: Ternary):
        if ternary.width != layout.width:
            raise ValueError(
                f"ternary width {ternary.width} != layout width {layout.width}"
            )
        self.layout = layout
        self.ternary = ternary

    @classmethod
    def build(cls, layout: HeaderLayout, **field_matches) -> "Match":
        """Build from per-field patterns (see ``HeaderLayout.pack_match``)."""
        return cls(layout, layout.pack_match(**field_matches))

    @classmethod
    def any(cls, layout: HeaderLayout) -> "Match":
        """The match-everything wildcard."""
        return cls(layout, Ternary.wildcard(layout.width))

    # -- relations -----------------------------------------------------------
    def matches_packet(self, packet: Packet) -> bool:
        """True when ``packet``'s header bits fall inside this match."""
        if packet.layout != self.layout:
            raise ValueError("packet and match use different header layouts")
        return self.ternary.matches(packet.header_bits)

    def matches_bits(self, header_bits: int) -> bool:
        """True when the packed ``header_bits`` fall inside this match."""
        return self.ternary.matches(header_bits)

    def intersects(self, other: "Match") -> bool:
        """True when the two matches overlap somewhere in flow space."""
        self._check_layout(other)
        return self.ternary.intersects(other.ternary)

    def intersection(self, other: "Match") -> Optional["Match"]:
        """The overlap region as a match, or ``None`` if disjoint."""
        self._check_layout(other)
        overlap = self.ternary.intersection(other.ternary)
        return None if overlap is None else Match(self.layout, overlap)

    def covers(self, other: "Match") -> bool:
        """True when this match contains every point of ``other``."""
        self._check_layout(other)
        return self.ternary.covers(other.ternary)

    def subtract(self, other: "Match") -> List["Match"]:
        """Disjoint matches covering ``self`` minus ``other``."""
        self._check_layout(other)
        return [Match(self.layout, t) for t in self.ternary.subtract(other.ternary)]

    def field(self, name: str) -> Ternary:
        """The sub-ternary constraining field ``name``."""
        return self.layout.field_ternary(self.ternary, name)

    def _check_layout(self, other: "Match") -> None:
        if self.layout != other.layout:
            raise ValueError("matches use different header layouts")

    # -- dunder ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.layout == other.layout and self.ternary == other.ternary

    def __hash__(self) -> int:
        return hash((self.layout, self.ternary))

    def __str__(self) -> str:
        return self.layout.describe_match(self.ternary)

    def __repr__(self) -> str:
        return f"Match({self})"


class RuleKind(Enum):
    """Which DIFANE pipeline stage a rule belongs to.

    The DIFANE switch evaluates stages in this order; within a stage the
    usual priority ordering applies (paper §2: cache rules, then authority
    rules, then partition rules).
    """

    #: An operator policy rule, before distribution (lives at the controller).
    POLICY = "policy"
    #: A reactively-installed rule at an ingress switch.
    CACHE = "cache"
    #: A rule stored at an authority switch for its partition.
    AUTHORITY = "authority"
    #: A rule at every ingress switch mapping a partition to its authority
    #: switch (action is ``Encapsulate``).
    PARTITION = "partition"
    #: Baseline: an exact-match microflow rule installed by a controller.
    MICROFLOW = "microflow"


class Rule:
    """A prioritized wildcard rule with counters and timeouts.

    Higher ``priority`` wins.  ``origin`` tracks the policy rule a derived
    (clipped / cached / split) rule came from so experiments can account
    duplication and so counters can be folded back per original rule —
    DIFANE needs this to report aggregate statistics to the operator.
    """

    __slots__ = (
        "match",
        "priority",
        "actions",
        "kind",
        "rule_id",
        "origin",
        "weight",
        "packet_count",
        "byte_count",
        "installed_at",
        "last_hit_at",
        "idle_timeout",
        "hard_timeout",
        "refetch_penalty_s",
        "flow_class",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions,
        kind: RuleKind = RuleKind.POLICY,
        origin: Optional["Rule"] = None,
        weight: float = 0.0,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
    ):
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        if isinstance(actions, Action):
            actions = ActionList(actions)
        elif not isinstance(actions, ActionList):
            actions = ActionList(*actions)
        self.match = match
        self.priority = priority
        self.actions = actions
        self.kind = kind
        self.rule_id = next(_rule_ids)
        self.origin = origin
        #: Expected traffic share; used by cache-priming experiments.
        self.weight = weight
        self.packet_count = 0
        self.byte_count = 0
        self.installed_at: Optional[float] = None
        self.last_hit_at: Optional[float] = None
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        #: Measured cost of re-fetching this rule after eviction (redirect
        #: RTT to the owning authority switch, seconds); stamped by the
        #: authority on cache installs, consumed by cost-aware eviction.
        self.refetch_penalty_s: Optional[float] = None
        #: QoS flow class served by this (cache) rule; stamped by the
        #: authority when a QoS policy is active (see :mod:`repro.obs.qos`),
        #: consumed by class-weighted scoring and residency reservations.
        self.flow_class: Optional[str] = None

    # -- derivation --------------------------------------------------------------
    def root_origin(self) -> "Rule":
        """Follow the ``origin`` chain back to the operator's policy rule."""
        rule = self
        while rule.origin is not None:
            rule = rule.origin
        return rule

    def derive(
        self,
        match: Optional[Match] = None,
        priority: Optional[int] = None,
        actions=None,
        kind: Optional[RuleKind] = None,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
    ) -> "Rule":
        """A copy of this rule with some attributes replaced; origin = self.

        Derived rules keep their own counters; aggregate reporting folds
        them back through :meth:`root_origin`.
        """
        return Rule(
            match=match if match is not None else self.match,
            priority=priority if priority is not None else self.priority,
            actions=actions if actions is not None else self.actions,
            kind=kind if kind is not None else self.kind,
            origin=self,
            weight=self.weight,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
        )

    def clip_to(self, region: Ternary) -> Optional["Rule"]:
        """Restrict this rule to ``region``; ``None`` when disjoint.

        This is the partitioning primitive: a rule overlapping a flow-space
        partition is *split*, and the fragment stored at an authority switch
        is the rule clipped to the partition's region.
        """
        overlap = self.match.ternary.intersection(region)
        if overlap is None:
            return None
        if overlap == self.match.ternary:
            # Entirely inside the region — no split needed; reuse the match.
            return self.derive()
        return self.derive(match=Match(self.match.layout, overlap))

    # -- matching / accounting ------------------------------------------------------
    def matches(self, packet: Packet) -> bool:
        """True when the rule's match covers ``packet``."""
        return self.match.matches_packet(packet)

    def record_hit(self, packet: Packet, now: Optional[float] = None) -> None:
        """Update counters after this rule processed ``packet``."""
        self.packet_count += 1
        self.byte_count += packet.size_bytes
        if now is not None:
            self.last_hit_at = now

    def is_expired(self, now: float) -> bool:
        """True when an idle or hard timeout has elapsed at time ``now``."""
        if self.hard_timeout is not None and self.installed_at is not None:
            if now - self.installed_at >= self.hard_timeout:
                return True
        if self.idle_timeout is not None:
            reference = self.last_hit_at
            if reference is None:
                reference = self.installed_at
            if reference is not None and now - reference >= self.idle_timeout:
                return True
        return False

    # -- dunder -------------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<Rule #{self.rule_id} {self.kind.value} prio={self.priority} "
            f"{self.match} -> {self.actions}>"
        )
