"""Flow-space substrate: ternary matches, packets, rules, and set arithmetic.

This subpackage is the foundation everything else in the reproduction is
built on.  It models the match semantics of an OpenFlow 1.0 style switch:

* :mod:`repro.flowspace.ternary` — bit-level ternary (0/1/don't-care) match
  strings with intersection, subsumption and subtraction.
* :mod:`repro.flowspace.fields` — the header tuple layout (src/dst IP, ports,
  protocol, ...) and conversions from human-friendly notation (CIDR prefixes,
  port ranges) to ternary matches.
* :mod:`repro.flowspace.packet` — concrete packet headers.
* :mod:`repro.flowspace.rule` — prioritized wildcard rules with actions.
* :mod:`repro.flowspace.table` — prioritized rule tables with lookup,
  shadow analysis and semantic-equivalence checking.
* :mod:`repro.flowspace.headerspace` — unions of ternary strings (header
  space algebra) used by the partitioning and cache-generation algorithms.
"""

from repro.flowspace.ternary import Ternary
from repro.flowspace.fields import (
    FieldSpec,
    HeaderLayout,
    OPENFLOW_10_LAYOUT,
    FIVE_TUPLE_LAYOUT,
    IPV6_FIVE_TUPLE_LAYOUT,
    TWO_FIELD_LAYOUT,
    ip_prefix_to_ternary,
    ternary_to_ip_prefix,
    parse_ip,
    format_ip,
)
from repro.flowspace.ranges import range_to_ternaries, ternary_to_range
from repro.flowspace.packet import Packet
from repro.flowspace.action import (
    Action,
    Forward,
    Drop,
    SendToController,
    Encapsulate,
    SetField,
    ActionList,
)
from repro.flowspace.rule import Match, Rule
from repro.flowspace.engine import (
    ENGINE_CHOICES,
    DecisionTreeEngine,
    LinearEngine,
    MatchEngine,
    TupleSpaceEngine,
    create_engine,
    get_default_engine,
    set_default_engine,
)
from repro.flowspace.table import RuleTable
from repro.flowspace.tuplespace import TupleSpaceTable
from repro.flowspace.headerspace import HeaderSpace

__all__ = [
    "Ternary",
    "FieldSpec",
    "HeaderLayout",
    "OPENFLOW_10_LAYOUT",
    "FIVE_TUPLE_LAYOUT",
    "IPV6_FIVE_TUPLE_LAYOUT",
    "TWO_FIELD_LAYOUT",
    "ip_prefix_to_ternary",
    "ternary_to_ip_prefix",
    "parse_ip",
    "format_ip",
    "range_to_ternaries",
    "ternary_to_range",
    "Packet",
    "Action",
    "Forward",
    "Drop",
    "SendToController",
    "Encapsulate",
    "SetField",
    "ActionList",
    "Match",
    "Rule",
    "RuleTable",
    "TupleSpaceTable",
    "MatchEngine",
    "LinearEngine",
    "TupleSpaceEngine",
    "DecisionTreeEngine",
    "ENGINE_CHOICES",
    "create_engine",
    "get_default_engine",
    "set_default_engine",
    "HeaderSpace",
]
