"""Range ↔ ternary conversion (port ranges, the "range expansion" problem).

Classifier rules frequently constrain transport ports with ranges
(``tp_dst ∈ [1024, 65535]``).  A TCAM can only store ternary strings, so a
range must be *expanded* into a minimal set of prefix matches — the classic
range-expansion blowup (a worst-case range over ``w`` bits needs ``2w - 2``
prefixes).  The ClassBench-style workload generator and the policy
synthesizers use these helpers to produce realistic multi-entry rules.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.flowspace.bits import is_contiguous_prefix_mask, mask_of_width, popcount
from repro.flowspace.ternary import Ternary

__all__ = ["range_to_ternaries", "ternary_to_range", "range_expansion_cost"]


def range_to_ternaries(low: int, high: int, width: int) -> List[Ternary]:
    """Expand the inclusive integer range ``[low, high]`` into prefix ternaries.

    Returns the minimal set of prefix matches whose union is exactly the
    range, ordered from ``low`` upward.  This is the canonical greedy
    algorithm: repeatedly take the largest aligned power-of-two block that
    starts at the current position and does not overrun ``high``.
    """
    limit = mask_of_width(width)
    if not 0 <= low <= high <= limit:
        raise ValueError(f"invalid range [{low}, {high}] for width {width}")
    result: List[Ternary] = []
    position = low
    while position <= high:
        # Largest block size allowed by alignment of `position`.
        if position == 0:
            align_block = 1 << width
        else:
            align_block = position & -position
        # Largest block size that still fits under `high`.
        remaining = high - position + 1
        block = align_block
        while block > remaining:
            block >>= 1
        prefix_len = width - block.bit_length() + 1
        result.append(Ternary.from_prefix(position, prefix_len, width))
        position += block
        if position > limit:
            break
    return result


def ternary_to_range(ternary: Ternary) -> Optional[Tuple[int, int]]:
    """Return the inclusive ``(low, high)`` range of a *prefix* ternary.

    Returns ``None`` when the ternary is not a contiguous prefix match (a
    non-prefix ternary describes a non-contiguous set of integers).
    """
    if not is_contiguous_prefix_mask(ternary.mask, ternary.width):
        return None
    free = ternary.width - popcount(ternary.mask)
    low = ternary.value
    high = ternary.value | mask_of_width(free)
    return (low, high)


def range_expansion_cost(low: int, high: int, width: int) -> int:
    """Number of TCAM entries the range ``[low, high]`` expands into."""
    return len(range_to_ternaries(low, high, width))
