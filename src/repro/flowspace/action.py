"""Rule actions.

Actions are small immutable value objects attached to rules.  The DIFANE
pipeline distinguishes ordinary forwarding actions (``Forward``, ``Drop``)
from the architectural actions its rule kinds use:

* ``Encapsulate`` — partition rules at ingress switches tunnel cache-miss
  packets to an authority switch;
* ``SendToController`` — what Ethane/NOX-style rules do on a miss (used by
  the baseline, *never* by DIFANE — that is the point of the paper);
* ``TriggerCacheInstall`` is not an action: authority rules carry a flag on
  the rule itself (see :class:`repro.flowspace.rule.Rule`).

Equality is structural; the classification oracle compares the *resolved*
final actions of a distributed lookup against the single-table original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Action",
    "Forward",
    "Drop",
    "SendToController",
    "Encapsulate",
    "SetField",
    "ActionList",
]


class Action:
    """Base class for all actions.  Subclasses are frozen dataclasses."""

    #: True for actions that terminate forwarding decisions at this switch.
    terminal: bool = True


@dataclass(frozen=True)
class Forward(Action):
    """Forward the packet out of a (logical) port.

    In flow-level experiments the ``port`` is a symbolic egress identifier
    (e.g. the name of the next-hop switch or an egress point); the network
    layer resolves it to a link.
    """

    port: str

    def __str__(self) -> str:
        return f"fwd({self.port})"


@dataclass(frozen=True)
class Drop(Action):
    """Discard the packet."""

    def __str__(self) -> str:
        return "drop"


@dataclass(frozen=True)
class SendToController(Action):
    """Punt the packet to the central controller (baseline behaviour only)."""

    def __str__(self) -> str:
        return "to-controller"


@dataclass(frozen=True)
class Encapsulate(Action):
    """Tunnel the packet to another switch (DIFANE redirect to authority).

    ``destination`` names the primary authority switch that owns the
    flow-space partition the packet falls into; ``backups`` lists replica
    authority switches the ingress switch may fail over to **in the data
    plane** when the primary becomes unreachable (paper §4.3 — failover
    needs no controller round trip because the backups are pre-installed
    in the partition rule).
    """

    destination: str
    backups: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.backups:
            return f"encap({self.destination}|{','.join(self.backups)})"
        return f"encap({self.destination})"


@dataclass(frozen=True)
class SetField(Action):
    """Rewrite one header field, then continue (non-terminal).

    Used by policy generators to model NAT/load-balancer style rules whose
    semantics must survive caching unchanged.
    """

    field_name: str
    value: int
    terminal: bool = field(default=False, init=False)

    def __str__(self) -> str:
        return f"set({self.field_name}={self.value})"


class ActionList:
    """An ordered, immutable sequence of actions applied left to right."""

    __slots__ = ("actions",)

    def __init__(self, *actions: Action):
        flattened = []
        for action in actions:
            if isinstance(action, ActionList):
                flattened.extend(action.actions)
            else:
                flattened.append(action)
        self.actions: Tuple[Action, ...] = tuple(flattened)

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ActionList):
            return self.actions == other.actions
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.actions)

    def __str__(self) -> str:
        return "[" + ", ".join(str(a) for a in self.actions) + "]"

    __repr__ = __str__

    @property
    def is_drop(self) -> bool:
        """True when the final disposition is a drop."""
        return any(isinstance(a, Drop) for a in self.actions)

    def final_forward(self):
        """The last ``Forward`` action, or ``None`` (dropped/punted)."""
        for action in reversed(self.actions):
            if isinstance(action, Forward):
                return action
        return None
