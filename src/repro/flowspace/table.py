"""Prioritized rule tables.

A :class:`RuleTable` is the software model of a classifier: rules ordered
by priority (ties broken by insertion order, matching OpenFlow's
first-installed-wins convention for equal priorities), linear-search
lookup, plus the analysis helpers the DIFANE algorithms and the test
oracles rely on: shadow detection, overlap enumeration, and randomized
semantic-equivalence checking.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.headerspace import HeaderSpace
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Match, Rule

__all__ = ["RuleTable"]


class RuleTable:
    """An ordered wildcard-rule classifier.

    The table maintains rules sorted by ``(-priority, sequence)`` where
    ``sequence`` is insertion order, so iteration visits rules in exactly
    the order a lookup considers them.
    """

    def __init__(self, layout: HeaderLayout, rules: Optional[Iterable[Rule]] = None):
        self.layout = layout
        self._rules: List[Rule] = []
        self._sequence = 0
        self._order: dict = {}
        if rules:
            for rule in rules:
                self.add(rule)

    # -- mutation -------------------------------------------------------------
    def add(self, rule: Rule) -> None:
        """Insert ``rule`` in priority position."""
        if rule.match.layout != self.layout:
            raise ValueError("rule layout differs from table layout")
        self._order[rule.rule_id] = self._sequence
        self._sequence += 1
        index = self._insertion_index(rule)
        self._rules.insert(index, rule)

    def remove(self, rule: Rule) -> bool:
        """Remove ``rule`` (by identity); returns whether it was present."""
        for index, existing in enumerate(self._rules):
            if existing is rule:
                del self._rules[index]
                self._order.pop(rule.rule_id, None)
                return True
        return False

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        """Remove and return every rule satisfying ``predicate``."""
        kept: List[Rule] = []
        removed: List[Rule] = []
        for rule in self._rules:
            (removed if predicate(rule) else kept).append(rule)
        self._rules = kept
        for rule in removed:
            self._order.pop(rule.rule_id, None)
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._order.clear()

    def _insertion_index(self, rule: Rule) -> int:
        """Index preserving (-priority, insertion sequence) order."""
        sequence = self._order[rule.rule_id]
        low, high = 0, len(self._rules)
        while low < high:
            mid = (low + high) // 2
            existing = self._rules[mid]
            existing_key = (-existing.priority, self._order[existing.rule_id])
            if existing_key <= (-rule.priority, sequence):
                low = mid + 1
            else:
                high = mid
        return low

    # -- lookup ------------------------------------------------------------------
    def lookup(self, packet: Packet) -> Optional[Rule]:
        """The highest-priority rule matching ``packet``, or ``None``."""
        return self.lookup_bits(packet.header_bits)

    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        """The highest-priority rule matching the packed ``header_bits``."""
        for rule in self._rules:
            if rule.match.matches_bits(header_bits):
                return rule
        return None

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Like :meth:`lookup` but also updates the winning rule's counters."""
        winner = self.lookup(packet)
        if winner is not None:
            winner.record_hit(packet)
        return winner

    # -- analysis --------------------------------------------------------------------
    def dependencies_of(self, rule: Rule) -> List[Rule]:
        """Higher-priority rules whose match overlaps ``rule``'s.

        These are the rules a correct cache of ``rule`` must account for:
        caching ``rule`` verbatim would steal their packets.
        """
        result = []
        for other in self._rules:
            if other is rule:
                break
            if other.match.intersects(rule.match):
                result.append(other)
        return result

    def shadowed_rules(self) -> List[Rule]:
        """Rules that can never match any packet.

        A rule is shadowed when the union of strictly-higher-priority
        overlapping matches covers it entirely; such rules are dead weight
        in a TCAM and the partitioner prunes them.
        """
        shadowed = []
        covered_so_far: List[Rule] = []
        for rule in self._rules:
            space = HeaderSpace.of(rule.match.ternary)
            space = space.subtract_all(
                other.match.ternary
                for other in covered_so_far
                if other.match.intersects(rule.match)
            )
            if space.is_empty():
                shadowed.append(rule)
            covered_so_far.append(rule)
        return shadowed

    def uncovered_region(self, rule: Rule) -> HeaderSpace:
        """The part of ``rule``'s match not claimed by higher-priority rules.

        This is exactly the region in which ``rule`` wins a lookup — the
        basis of DIFANE's independent cache-rule generation.
        """
        space = HeaderSpace.of(rule.match.ternary)
        for other in self._rules:
            if other is rule:
                break
            if other.match.intersects(rule.match):
                space = space.subtract(other.match.ternary)
                if space.is_empty():
                    break
        return space

    def semantically_equal(
        self,
        oracle: Callable[[int], Optional[Rule]],
        rng: random.Random,
        samples: int = 200,
    ) -> Tuple[bool, Optional[int]]:
        """Randomized equivalence check against another classifier.

        Draws points both uniformly over the header space and *adversarially*
        from rule boundaries (corners of every match), comparing the action
        list and origin policy rule of the winners.  Returns ``(True, None)``
        or ``(False, counterexample_bits)``.
        """
        points: List[int] = []
        for _ in range(samples):
            points.append(rng.getrandbits(self.layout.width))
        for rule in self._rules:
            points.append(rule.match.ternary.value)  # lowest corner
            points.append(rule.match.ternary.sample(rng))
        for bits in points:
            mine = self.lookup_bits(bits)
            theirs = oracle(bits)
            if not _same_outcome(mine, theirs):
                return (False, bits)
        return (True, None)

    # -- views -------------------------------------------------------------------------
    @property
    def rules(self) -> Sequence[Rule]:
        """The rules in lookup order (read-only view)."""
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return any(existing is rule for existing in self._rules)

    def __repr__(self) -> str:
        return f"RuleTable({len(self._rules)} rules, layout={self.layout!r})"


def _same_outcome(mine: Optional[Rule], theirs: Optional[Rule]) -> bool:
    """Two lookup winners agree when their resolved policy behaviour agrees."""
    if mine is None or theirs is None:
        return mine is None and theirs is None
    if mine.root_origin() is theirs.root_origin():
        return True
    return mine.actions == theirs.actions
