"""Prioritized rule tables.

A :class:`RuleTable` is the software model of a classifier: rules ordered
by priority (ties broken by insertion order, matching OpenFlow's
first-installed-wins convention for equal priorities), plus the analysis
helpers the DIFANE algorithms and the test oracles rely on: shadow
detection, overlap enumeration, and randomized semantic-equivalence
checking.

Storage and lookup are delegated to a pluggable
:class:`~repro.flowspace.engine.MatchEngine` (linear scan, tuple-space
search, or decision tree — see :mod:`repro.flowspace.engine`); the table
keeps the analysis layer and the stable public API.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.flowspace.engine import EngineSpec, create_engine
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.headerspace import HeaderSpace
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule

__all__ = ["RuleTable"]


class RuleTable:
    """An ordered wildcard-rule classifier.

    Lookup visits rules in ``(-priority, insertion sequence)`` order
    regardless of the backing engine; :attr:`rules` exposes exactly that
    order.

    Parameters
    ----------
    layout:
        Header layout shared by every rule.
    rules:
        Initial rules, inserted in iteration order.
    engine:
        Lookup backend: an engine name (``"linear"``, ``"tuplespace"``,
        ``"dtree"``), a :class:`~repro.flowspace.engine.MatchEngine`
        instance, a factory, or ``None`` for the process default.
    """

    def __init__(
        self,
        layout: HeaderLayout,
        rules: Optional[Iterable[Rule]] = None,
        engine: EngineSpec = None,
    ):
        self.layout = layout
        self.engine = create_engine(engine, layout)
        #: Monotonic mutation stamp: bumped on every add/remove/clear so
        #: derived structures (the TCAM's compiled vector matcher) know
        #: when their compiled view of the rule list went stale.
        self.version = 0
        if rules:
            for rule in rules:
                self.add(rule)

    # -- mutation -------------------------------------------------------------
    def add(self, rule: Rule) -> None:
        """Insert ``rule`` in priority position."""
        if rule.match.layout != self.layout:
            raise ValueError("rule layout differs from table layout")
        self.engine.add(rule)
        self.version += 1

    def remove(self, rule: Rule) -> bool:
        """Remove ``rule`` (by identity); returns whether it was present."""
        removed = self.engine.remove(rule)
        if removed:
            self.version += 1
        return removed

    def remove_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        """Remove and return every rule satisfying ``predicate``."""
        removed = self.engine.remove_if(predicate)
        if removed:
            self.version += 1
        return removed

    def clear(self) -> None:
        """Remove every rule (insertion-sequence state resets too)."""
        self.engine.clear()
        self.version += 1

    # -- lookup ------------------------------------------------------------------
    def lookup(self, packet: Packet) -> Optional[Rule]:
        """The highest-priority rule matching ``packet``, or ``None``."""
        return self.engine.lookup_bits(packet.header_bits)

    def lookup_bits(self, header_bits: int) -> Optional[Rule]:
        """The highest-priority rule matching the packed ``header_bits``."""
        return self.engine.lookup_bits(header_bits)

    def batch_lookup(self, header_bits_seq: Iterable[int]) -> List[Optional[Rule]]:
        """Element-wise :meth:`lookup_bits` over a burst of headers."""
        return self.engine.batch_lookup(header_bits_seq)

    def classify(self, packet: Packet) -> Optional[Rule]:
        """Like :meth:`lookup` but also updates the winning rule's counters."""
        winner = self.lookup(packet)
        if winner is not None:
            winner.record_hit(packet)
        return winner

    # -- analysis --------------------------------------------------------------------
    def dependencies_of(self, rule: Rule) -> List[Rule]:
        """Higher-priority rules whose match overlaps ``rule``'s.

        These are the rules a correct cache of ``rule`` must account for:
        caching ``rule`` verbatim would steal their packets.
        """
        result = []
        for other in self.engine.rules():
            if other is rule:
                break
            if other.match.intersects(rule.match):
                result.append(other)
        return result

    def shadowed_rules(self) -> List[Rule]:
        """Rules that can never match any packet.

        A rule is shadowed when the union of strictly-higher-priority
        overlapping matches covers it entirely; such rules are dead weight
        in a TCAM and the partitioner prunes them.
        """
        shadowed = []
        covered_so_far: List[Rule] = []
        for rule in self.engine.rules():
            space = HeaderSpace.of(rule.match.ternary)
            space = space.subtract_all(
                other.match.ternary
                for other in covered_so_far
                if other.match.intersects(rule.match)
            )
            if space.is_empty():
                shadowed.append(rule)
            covered_so_far.append(rule)
        return shadowed

    def uncovered_region(self, rule: Rule) -> HeaderSpace:
        """The part of ``rule``'s match not claimed by higher-priority rules.

        This is exactly the region in which ``rule`` wins a lookup — the
        basis of DIFANE's independent cache-rule generation.
        """
        space = HeaderSpace.of(rule.match.ternary)
        for other in self.engine.rules():
            if other is rule:
                break
            if other.match.intersects(rule.match):
                space = space.subtract(other.match.ternary)
                if space.is_empty():
                    break
        return space

    def semantically_equal(
        self,
        oracle: Callable[[int], Optional[Rule]],
        rng: random.Random,
        samples: int = 200,
    ) -> Tuple[bool, Optional[int]]:
        """Randomized equivalence check against another classifier.

        Draws points both uniformly over the header space and *adversarially*
        from rule boundaries (corners of every match), comparing the action
        list and origin policy rule of the winners.  Returns ``(True, None)``
        or ``(False, counterexample_bits)``.
        """
        points: List[int] = []
        for _ in range(samples):
            points.append(rng.getrandbits(self.layout.width))
        for rule in self.engine.rules():
            points.append(rule.match.ternary.value)  # lowest corner
            points.append(rule.match.ternary.sample(rng))
        for bits in points:
            mine = self.lookup_bits(bits)
            theirs = oracle(bits)
            if not _same_outcome(mine, theirs):
                return (False, bits)
        return (True, None)

    # -- views -------------------------------------------------------------------------
    @property
    def rules(self) -> Sequence[Rule]:
        """The rules in lookup order (read-only view)."""
        return tuple(self.engine.rules())

    def __len__(self) -> int:
        return len(self.engine)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.engine.rules())

    def __contains__(self, rule: Rule) -> bool:
        return rule in self.engine

    def __repr__(self) -> str:
        return (
            f"RuleTable({len(self.engine)} rules, engine={self.engine.name}, "
            f"layout={self.layout!r})"
        )


def _same_outcome(mine: Optional[Rule], theirs: Optional[Rule]) -> bool:
    """Two lookup winners agree when their resolved policy behaviour agrees."""
    if mine is None or theirs is None:
        return mine is None and theirs is None
    if mine.root_origin() is theirs.root_origin():
        return True
    return mine.actions == theirs.actions
