"""Vectorized wildcard matching over columnar packet batches.

A :class:`VectorMatcher` compiles a priority-ordered rule list into
per-field ``(mask, value)`` pairs and classifies a whole
:class:`~repro.flowspace.batch.PacketBatch` with numpy compares: for each
rule, in lookup order, the still-unmatched packets whose cared fields all
agree are assigned that rule.  This is semantically identical to the
engines' per-packet lookup (highest priority wins, insertion order breaks
ties) because rules are visited in exactly the engine's lookup order.

Cost model: O(rules × cared-fields) numpy operations over the batch, with
early exit once every packet matched.  That wins when batches are wide and
the winning rules sit near the front (cache-hit traffic); for very large
tables the TCAM falls back to the engine's ``batch_lookup`` (see
``Tcam.match_batch``), which is O(1) dispatches but per-packet Python.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.rule import Rule

__all__ = ["VectorMatcher"]


class VectorMatcher:
    """Compiled vector classifier for one rule list (in lookup order)."""

    __slots__ = ("rules", "_cared")

    def __init__(self, layout: HeaderLayout, rules: Sequence[Rule]):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        names = layout.names()
        cared: List[List[Tuple[str, int, int]]] = []
        for rule in self.rules:
            ternary = rule.match.ternary
            per_field = []
            for name in names:
                sub = layout.field_ternary(ternary, name)
                if sub.mask:
                    per_field.append((name, sub.mask, sub.value))
            cared.append(per_field)
        self._cared = cared

    def match(self, columns) -> np.ndarray:
        """Winner rule index per packet (``-1`` = miss) over field columns.

        ``columns`` is the batch's ``{field name: uint64 array}`` mapping.
        """
        first = next(iter(columns.values())) if columns else None
        count = len(first) if first is not None else 0
        winners = np.full(count, -1, dtype=np.int64)
        if count == 0:
            return winners
        unmatched = np.ones(count, dtype=bool)
        for index, per_field in enumerate(self._cared):
            if not unmatched.any():
                break
            ok = unmatched
            for name, mask, value in per_field:
                column = columns[name]
                ok = ok & ((column & np.uint64(mask)) == np.uint64(value))
            if ok is unmatched:
                # Full wildcard rule: everything still unmatched wins here.
                ok = unmatched.copy()
            if not ok.any():
                continue
            winners[ok] = index
            unmatched &= ~ok
        return winners

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"<VectorMatcher {len(self.rules)} rules>"
