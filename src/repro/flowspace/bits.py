"""Low-level bit helpers shared by the ternary-match machinery.

Everything in the flow-space layer represents header bits as Python
integers.  These helpers keep the bit-twiddling in one audited place so the
algorithmic modules stay readable.
"""

from __future__ import annotations


def mask_of_width(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_at(value: int, position: int) -> int:
    """Return the bit of ``value`` at ``position`` (0 = least significant)."""
    return (value >> position) & 1


def set_bit(value: int, position: int, bit: int) -> int:
    """Return ``value`` with the bit at ``position`` forced to ``bit``."""
    if bit:
        return value | (1 << position)
    return value & ~(1 << position)


def popcount(value: int) -> int:
    """Population count (number of set bits) of a non-negative integer."""
    return bin(value).count("1")


def is_contiguous_prefix_mask(mask: int, width: int) -> bool:
    """True if ``mask`` selects a contiguous run of high-order bits.

    A prefix mask of length L over ``width`` bits has its L most significant
    bits set and the rest clear — the shape of an IP CIDR mask.  The empty
    mask (fully wildcarded) counts as a length-0 prefix.
    """
    if mask == 0:
        return True
    full = mask_of_width(width)
    if mask & ~full:
        return False
    # A contiguous high-order run means the complement (within width) is of
    # the form 2^k - 1.
    inverted = full & ~mask
    return (inverted & (inverted + 1)) == 0


def prefix_length(mask: int, width: int) -> int:
    """Length of the prefix selected by a contiguous high-order ``mask``.

    Raises :class:`ValueError` when the mask is not a prefix mask.
    """
    if not is_contiguous_prefix_mask(mask, width):
        raise ValueError(f"mask {mask:#x} is not a prefix mask of width {width}")
    return popcount(mask)


def lowest_set_bit(value: int) -> int:
    """Index of the least-significant set bit; -1 when ``value`` is zero."""
    if value == 0:
        return -1
    return (value & -value).bit_length() - 1


def highest_set_bit(value: int) -> int:
    """Index of the most-significant set bit; -1 when ``value`` is zero."""
    if value == 0:
        return -1
    return value.bit_length() - 1


def iter_set_bits(value: int):
    """Yield indices of the set bits of ``value`` from least significant up."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def reverse_bits(value: int, width: int) -> int:
    """Reverse the bit order of ``value`` within a ``width``-bit window."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
