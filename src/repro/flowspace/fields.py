"""Header field layout for the OpenFlow 1.0 style match tuple.

DIFANE rules match on the standard flow tuple.  We model the header as a
fixed, named layout of bit fields packed into one wide bit string so that
the partitioning and header-space machinery can treat the whole header as a
single ternary value, while user-facing code speaks in field names, CIDR
prefixes and port numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.flowspace.bits import is_contiguous_prefix_mask, mask_of_width, popcount
from repro.flowspace.ternary import Ternary

__all__ = [
    "FieldSpec",
    "HeaderLayout",
    "OPENFLOW_10_LAYOUT",
    "FIVE_TUPLE_LAYOUT",
    "TWO_FIELD_LAYOUT",
    "ip_prefix_to_ternary",
    "ternary_to_ip_prefix",
    "parse_ip",
    "format_ip",
]


@dataclass(frozen=True)
class FieldSpec:
    """One named header field.

    Attributes
    ----------
    name:
        Field identifier, e.g. ``"nw_src"``.
    width:
        Field width in bits.
    """

    name: str
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")


class HeaderLayout:
    """An ordered collection of :class:`FieldSpec` packed into one bit string.

    The first field occupies the most significant bits, so a printed ternary
    reads left-to-right in field order.  Layouts are immutable and hashable;
    rules, packets and tables all carry a reference to the layout they were
    built against and refuse to mix layouts.
    """

    def __init__(self, fields: Sequence[FieldSpec]):
        if not fields:
            raise ValueError("a header layout needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in layout: {names}")
        self._fields: Tuple[FieldSpec, ...] = tuple(fields)
        self._width = sum(f.width for f in fields)
        # Offset of each field's least-significant bit within the packed word.
        offsets: Dict[str, int] = {}
        cursor = self._width
        for field in self._fields:
            cursor -= field.width
            offsets[field.name] = cursor
        self._offsets = offsets
        self._by_name = {f.name: f for f in self._fields}

    # -- introspection -----------------------------------------------------
    @property
    def fields(self) -> Tuple[FieldSpec, ...]:
        """The fields in layout order (most significant first)."""
        return self._fields

    @property
    def width(self) -> int:
        """Total packed width in bits."""
        return self._width

    def field(self, name: str) -> FieldSpec:
        """Look up a field by name; raises :class:`KeyError` if unknown."""
        return self._by_name[name]

    def offset(self, name: str) -> int:
        """LSB offset of ``name`` within the packed header word."""
        return self._offsets[name]

    def names(self) -> List[str]:
        """Field names in layout order."""
        return [f.name for f in self._fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeaderLayout):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.width}" for f in self._fields)
        return f"HeaderLayout({inner})"

    # -- packing -------------------------------------------------------------
    def pack_values(self, **field_values: int) -> int:
        """Pack concrete per-field integers into one header word.

        Unspecified fields default to zero.  Raises on unknown fields or
        out-of-range values.
        """
        word = 0
        for name, value in field_values.items():
            spec = self._by_name.get(name)
            if spec is None:
                raise KeyError(f"unknown field {name!r} (layout has {self.names()})")
            if value < 0 or value > mask_of_width(spec.width):
                raise ValueError(f"value {value} out of range for field {name} ({spec.width} bits)")
            word |= value << self._offsets[name]
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Split a packed header word back into per-field integers."""
        return {
            f.name: (word >> self._offsets[f.name]) & mask_of_width(f.width)
            for f in self._fields
        }

    def pack_match(self, **field_matches) -> Ternary:
        """Pack per-field matches into one ternary over the full header.

        Each keyword value may be:

        * an ``int`` — exact match on the field,
        * a :class:`Ternary` of the field's width,
        * a string of ``0/1/x`` characters of the field's width,
        * a ``(value, prefix_len)`` tuple — prefix match,
        * ``None`` — fully wildcarded (same as omitting the field).
        """
        result = Ternary.wildcard(0)
        for spec in self._fields:
            provided = field_matches.pop(spec.name, None)
            result = result.concat(self._coerce_field(spec, provided))
        if field_matches:
            raise KeyError(f"unknown fields {sorted(field_matches)} (layout has {self.names()})")
        return result

    def field_ternary(self, match: Ternary, name: str) -> Ternary:
        """Extract the sub-ternary for field ``name`` from a packed match."""
        if match.width != self._width:
            raise ValueError(f"match width {match.width} != layout width {self._width}")
        spec = self._by_name[name]
        return match.extract(self._offsets[name], spec.width)

    def field_of_bit(self, position: int) -> str:
        """Name of the field containing packed bit ``position`` (LSB-based)."""
        if not 0 <= position < self._width:
            raise IndexError(f"bit {position} outside header of width {self._width}")
        for field in self._fields:
            offset = self._offsets[field.name]
            if offset <= position < offset + field.width:
                return field.name
        raise AssertionError("unreachable: layout offsets are exhaustive")

    def describe_match(self, match: Ternary) -> str:
        """Render a packed match as ``field=pattern`` pairs, skipping wildcards."""
        parts = []
        for field in self._fields:
            sub = self.field_ternary(match, field.name)
            if sub.is_wildcard():
                continue
            if field.width == 32 and is_contiguous_prefix_mask(sub.mask, 32):
                parts.append(f"{field.name}={ternary_to_ip_prefix(sub)}")
            elif sub.is_exact():
                parts.append(f"{field.name}={sub.value}")
            else:
                parts.append(f"{field.name}={sub}")
        return ", ".join(parts) if parts else "*"

    # -- helpers ---------------------------------------------------------------
    def _coerce_field(self, spec: FieldSpec, provided) -> Ternary:
        if provided is None:
            return Ternary.wildcard(spec.width)
        if isinstance(provided, Ternary):
            if provided.width != spec.width:
                raise ValueError(
                    f"ternary width {provided.width} != field {spec.name} width {spec.width}"
                )
            return provided
        if isinstance(provided, str):
            if "/" in provided and spec.width == 32:
                return ip_prefix_to_ternary(provided)
            ternary = Ternary.from_string(provided)
            if ternary.width != spec.width:
                raise ValueError(
                    f"pattern {provided!r} width {ternary.width} != field width {spec.width}"
                )
            return ternary
        if isinstance(provided, tuple):
            value, prefix_len = provided
            return Ternary.from_prefix(value, prefix_len, spec.width)
        if isinstance(provided, int):
            return Ternary.exact(provided, spec.width)
        raise TypeError(f"cannot interpret {provided!r} as a match for field {spec.name}")


# ---------------------------------------------------------------------------
# Standard layouts
# ---------------------------------------------------------------------------

#: The OpenFlow 1.0 inspired match tuple used throughout the reproduction.
#: (We omit ingress port — DIFANE's flow-space partitioning operates on the
#: header fields; per-port behaviour is modelled at the switch layer.)
OPENFLOW_10_LAYOUT = HeaderLayout(
    [
        FieldSpec("dl_src", 48),
        FieldSpec("dl_dst", 48),
        FieldSpec("dl_type", 16),
        FieldSpec("nw_src", 32),
        FieldSpec("nw_dst", 32),
        FieldSpec("nw_proto", 8),
        FieldSpec("tp_src", 16),
        FieldSpec("tp_dst", 16),
    ]
)

#: The classic 5-tuple layout used by the ClassBench-style generator and the
#: partitioning experiments — matches the dimensionality the paper's
#: evaluation policies use.
FIVE_TUPLE_LAYOUT = HeaderLayout(
    [
        FieldSpec("nw_src", 32),
        FieldSpec("nw_dst", 32),
        FieldSpec("nw_proto", 8),
        FieldSpec("tp_src", 16),
        FieldSpec("tp_dst", 16),
    ]
)

#: The IPv6 5-tuple.  The paper's TCAM-pressure argument sharpens with
#: IPv6 (128-bit addresses quadruple the address bits per entry); every
#: algorithm here is width-generic, so DIFANE runs unchanged over this
#: 296-bit header — see ``tests/test_ipv6.py`` for the demonstration.
IPV6_FIVE_TUPLE_LAYOUT = HeaderLayout(
    [
        FieldSpec("nw_src", 128),
        FieldSpec("nw_dst", 128),
        FieldSpec("nw_proto", 8),
        FieldSpec("tp_src", 16),
        FieldSpec("tp_dst", 16),
    ]
)

#: A compact two-field layout, handy for unit tests and worked examples
#: (mirrors the F1/F2 pictures papers draw).
TWO_FIELD_LAYOUT = HeaderLayout([FieldSpec("f1", 8), FieldSpec("f2", 8)])


# ---------------------------------------------------------------------------
# IP notation helpers
# ---------------------------------------------------------------------------

def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 notation into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 value {value} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_prefix_to_ternary(prefix: str) -> Ternary:
    """Convert CIDR notation (``"10.0.0.0/8"``) to a 32-bit prefix ternary."""
    if "/" in prefix:
        address, _, length_text = prefix.partition("/")
        length = int(length_text)
    else:
        address, length = prefix, 32
    if not 0 <= length <= 32:
        raise ValueError(f"invalid prefix length in {prefix!r}")
    return Ternary.from_prefix(parse_ip(address), length, 32)


def ternary_to_ip_prefix(ternary: Ternary) -> str:
    """Render a 32-bit prefix ternary back to CIDR notation."""
    if ternary.width != 32:
        raise ValueError(f"expected a 32-bit ternary, got width {ternary.width}")
    if not is_contiguous_prefix_mask(ternary.mask, 32):
        raise ValueError(f"{ternary!r} is not a prefix match")
    length = popcount(ternary.mask)
    return f"{format_ip(ternary.value)}/{length}"
