"""C1/C2 — chaos soaks: steady traffic under randomized fault schedules.

The headline robustness experiment: a campus fabric carries steady
traffic while a seeded :class:`~repro.net.chaos.ChaosSchedule` kills and
repairs switches (including an authority switch), flaps links, spikes
per-link loss, and browns out the control plane.  Nothing is scripted on
the recovery side — failure detection emerges from heartbeats, failover
from replicated partition rules, degraded service from the NOX-style
packet-in fallback, and message delivery from retransmission + dedup.

What the run must demonstrate (the acceptance criteria of the chaos
layer):

* **zero invariant violations** — after every controller reconvergence
  (and at the end) every partition is owned by live authority switches
  and every ingress partition rule points at the current primary;
* **zero silent drops** — every lost packet is attributed to link loss,
  a routing black-hole, policy intent, or the degraded path; and every
  injected packet terminates (delivered or attributed) by the end of the
  drain window.

C2 (:func:`run_rebalance_soak`) is the self-healing variant: a
Zipf-skewed workload concentrates redirect load on one authority until
the imbalance detector fires and the :class:`~repro.core.shards.Rebalancer`
migrates hot partitions live; an authority kill then orphans partitions
and the same migration path re-homes them onto spare switches — much
faster than waiting out the heartbeat deadline, which is exactly the
comparison against the ``rebalance=False`` static baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.analysis.series import Series
from repro.analysis.timeline import rate_timeline
from repro.core.controller import DifaneNetwork, PartitionInvariantError
from repro.experiments.common import ExperimentResult
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.chaos import ChaosSchedule, ChaosSpec
from repro.net.failures import FailureInjector
from repro.net.topology import Topology, TopologyBuilder
from repro.obs import context as _obs_context
from repro.obs.attribution import attribute_drops
from repro.openflow.channel import ChannelFaultModel
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets, zipf_host_pair_packets

__all__ = [
    "run_chaos_soak",
    "run_chaos_replicates",
    "run_rebalance_soak",
    "attribute_drops",
]

LAYOUT = FIVE_TUPLE_LAYOUT


def _campus_with_loss(loss: float) -> Topology:
    """A small dual-homed campus whose switch–switch links are lossy."""
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=2,
        access_per_distribution=2, hosts_per_access=2,
    )
    if loss > 0:
        graph = topo.graph
        for a, b, data in graph.edges(data=True):
            roles = (graph.nodes[a].get("role"), graph.nodes[b].get("role"))
            if roles == ("switch", "switch"):
                data["spec"] = dataclasses.replace(
                    data["spec"], loss_probability=loss
                )
    return topo


def run_chaos_soak(
    rate: float = 4_000.0,
    duration: float = 1.0,
    seed: int = 7,
    loss: float = 0.01,
    heartbeat_interval_s: float = 0.02,
    miss_threshold: int = 3,
    control_latency_s: float = 2e-3,
    base_channel_drop: float = 0.05,
    spec: Optional[ChaosSpec] = None,
    bin_width_s: float = 0.05,
    cache_capacity: int = 128,
    replication: int = 2,
) -> ExperimentResult:
    """Run the soak; see the module docstring for what it asserts.

    ``cache_capacity`` and ``replication`` expose the resilience knobs
    the telemetry acceptance scenarios turn: tiny caches keep redirect
    traffic flowing for the whole soak (so an authority kill shows up in
    the per-window load series), and ``replication=1`` removes the
    failover backstop (so a kill orphans partitions and the degraded
    path — and its critical finding — actually exercises).
    """
    topo = _campus_with_loss(loss)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, seed=seed)
    authorities = ["dist0", "dist1"]
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_switches=authorities,
        replication=replication,
        partitions_per_authority=2,
        cache_capacity=cache_capacity,
        redirect_rate=None,
        loss_seed=seed,
    )
    network = dn.network
    controller = dn.controller

    # Control plane: shared fault model (brownouts throttle every session),
    # unbounded retransmission (no control message is ever abandoned),
    # heartbeat failure detection, invariant check on every reconvergence.
    fault_model = ChannelFaultModel(drop_probability=base_channel_drop, seed=seed)
    violations: List[Tuple[float, str]] = []

    def check_invariants(_switch: Optional[str] = None) -> None:
        try:
            controller.assert_all_partitions_owned()
        except PartitionInvariantError as error:
            violations.append((network.scheduler.now, str(error)))

    controller.connect_control_plane(
        latency_s=control_latency_s,
        fault_model=fault_model,
        heartbeat_interval_s=heartbeat_interval_s,
        miss_threshold=miss_threshold,
        max_retries=None,
        on_detect=check_invariants,
    )

    # The chaos schedule: kills draw from host-free switches so no traffic
    # source is ever stranded; one authority dies (and comes back) too.
    injector = FailureInjector(network)
    spec = spec or ChaosSpec(seed=seed, duration_s=duration)
    hostless = [
        name for name in topo.switches()
        if name not in authorities
        and not any(
            topo.graph.nodes[n].get("role") == "host"
            for n in topo.graph.neighbors(name)
        )
    ]
    schedule = ChaosSchedule.randomized(
        network, injector, spec,
        kill_candidates=hostless,
        authority_candidates=authorities,
        fault_model=fault_model,
    )

    # Steady traffic: random host pairs, one packet per microflow.
    count = int(rate * duration)
    for timed in host_pair_packets(
        topo, host_ips, LAYOUT, count=count, rate=rate, seed=seed,
        deterministic_arrivals=True,
    ):
        dn.send_at(timed.time, timed.source_host, timed.packet)

    # Drain: everything the schedule breaks resolves by 0.9 × duration;
    # leave room for the last detections, retransmissions and repairs.
    drain = max(0.3, (miss_threshold + 2) * heartbeat_interval_s + 0.1)
    dn.run(until=duration + drain)
    check_invariants()

    delivered = network.delivered()
    dropped = network.dropped()
    attribution = attribute_drops(dropped)
    unaccounted = count - len(network.deliveries)

    detection_latencies = _detection_latencies(injector, controller)
    channel_totals = controller.control_plane_counters()
    degraded = sum(s.degraded_packets for s in dn.switches())
    failovers = sum(s.failovers for s in dn.switches())

    series: List[Series] = [
        rate_timeline(network.deliveries, bin_width_s, label="delivered/s"),
        rate_timeline(network.deliveries, bin_width_s,
                      delivered_only=False, label="offered/s"),
    ]
    # With telemetry on, the per-window authority load becomes part of
    # the result: the series the balance claim (and the imbalance
    # detector) is judged on.  An authority kill shows up as one curve
    # collapsing to zero while the survivor absorbs the redirects.
    recorder = getattr(_obs_context.current(), "telemetry", None)
    telemetry_windows = None
    if recorder is not None and recorder.enabled:
        from repro.analysis.dashboard import authority_load_series

        section = recorder.export()
        telemetry_windows = len(section["windows"])
        for load in authority_load_series(section):
            load.label = f"authority load: {load.label}"
            series.append(load)
    table_rows = [
        ["delivered", len(delivered)],
        ["dropped", len(dropped)],
    ]
    for bucket in sorted(attribution):
        table_rows.append([f"dropped: {bucket}", attribution[bucket]])
    table_rows.extend([
        ["degraded packet-ins", degraded],
        ["data-plane failovers", failovers],
        ["invariant violations", len(violations)],
        ["unaccounted packets", unaccounted],
    ])

    monitor = controller.monitor
    notes: Dict[str, object] = {
        "seed": seed,
        "rate": rate,
        "duration": duration,
        "loss": loss,
        "heartbeat_interval_s": heartbeat_interval_s,
        "miss_threshold": miss_threshold,
        "delivered": len(delivered),
        "dropped": len(dropped),
        "drop_attribution": dict(sorted(attribution.items())),
        "unattributed_drops": int(attribution.get("unattributed", 0)),
        "unaccounted_packets": int(unaccounted),
        "invariant_violations": len(violations),
        "detection_latencies_s": detection_latencies,
        "detections": len(monitor.detections),
        "false_positives": monitor.false_positives,
        "recoveries": len(monitor.recoveries),
        "degraded_packets": degraded,
        "failovers": failovers,
        "control_counters": channel_totals,
        "chaos_events": len(schedule.planned),
        "_violations": violations,
        "_planned": list(schedule.planned),
        "_applied": list(injector.events),
    }
    if telemetry_windows is not None:
        notes["telemetry_windows"] = telemetry_windows

    return ExperimentResult(
        name="C1-chaos-soak",
        title="Chaos soak: lossy links, kills, flaps and brownouts under load",
        series=series,
        table_headers=["metric", "value"],
        table_rows=table_rows,
        notes=notes,
    )


def run_rebalance_soak(
    rate: float = 4_000.0,
    duration: float = 1.0,
    seed: int = 11,
    alpha: float = 1.6,
    heartbeat_interval_s: float = 0.05,
    miss_threshold: int = 3,
    control_latency_s: float = 2e-3,
    base_channel_drop: float = 0.02,
    rebalance: bool = True,
    n_shards: int = 2,
    lease_interval_s: float = 0.02,
    rebalance_interval_s: float = 0.02,
    spare_count: int = 2,
    spec: Optional[ChaosSpec] = None,
    bin_width_s: float = 0.01,
) -> ExperimentResult:
    """C2 — self-healing soak: skew, imbalance, migration, authority kill.

    A Zipf(``alpha``) destination skew over an uncached fabric (every
    packet redirects) concentrates partition load on one authority; the
    rebalancer consumes the resulting health findings and migrates hot
    partitions until Jain fairness clears the detector threshold.  The
    chaos spec then kills one authority switch (and, with shards on, one
    controller shard): orphaned partitions heal through the same
    two-phase migration path onto spare switches, long before the static
    heartbeat deadline (``miss_threshold × heartbeat_interval_s``)
    would even *detect* the failure.

    ``rebalance=False`` is the PR 2 static baseline — same topology,
    workload and chaos plan, recovery only via heartbeat-driven
    failover — so the pair of runs pins the time-to-full-service
    improvement as a golden metric.
    """
    from repro.core.placement import choose_spare_switches
    from repro.core.shards import attach_sharded_control_plane
    from repro.obs.health import IMBALANCE_FAIRNESS_THRESHOLD

    topo = _campus_with_loss(0.0)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, seed=seed)
    authorities = ["dist0", "dist1"]
    spares = choose_spare_switches(topo, authorities, spare_count)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_switches=authorities,
        replication=1,             # no backup replicas: a kill orphans
        partitions_per_authority=2,
        cache_capacity=0,          # every packet redirects: clean load signal
        redirect_rate=None,
        loss_seed=seed,
    )
    network = dn.network
    controller = dn.controller

    fault_model = ChannelFaultModel(drop_probability=base_channel_drop, seed=seed)
    violations: List[Tuple[float, str]] = []

    def check_invariants(_arg: Optional[object] = None) -> None:
        try:
            controller.assert_all_partitions_owned()
        except PartitionInvariantError as error:
            violations.append((network.scheduler.now, str(error)))

    controller.connect_control_plane(
        latency_s=control_latency_s,
        fault_model=fault_model,
        heartbeat_interval_s=heartbeat_interval_s,
        miss_threshold=miss_threshold,
        max_retries=None,
        on_detect=check_invariants,
    )

    def migration_settled(_migration: Optional[object] = None) -> None:
        # One heal can span several migrations (one per orphaned
        # partition, batched in a single rebalance cycle); ownership is
        # only required to be whole again once the batch settles, so
        # skip the boundary check while sibling migrations are in flight.
        if plane is not None and (
            plane.migrator.active
            or plane.pending_migrations
            or plane.pending_failovers
        ):
            return
        check_invariants()

    plane = None
    if rebalance:
        plane = attach_sharded_control_plane(
            controller,
            n_shards=n_shards,
            seed=seed,
            lease_interval_s=lease_interval_s,
            miss_threshold=miss_threshold,
            latency_s=control_latency_s,
            fault_model=fault_model,
            max_retries=None,
            spares=spares,
            rebalance=True,
            rebalance_interval_s=rebalance_interval_s,
            on_migration_complete=migration_settled,
        )

    injector = FailureInjector(network)
    spec = spec or ChaosSpec(
        seed=seed, duration_s=duration,
        switch_kills=0, authority_kills=1, link_flaps=0,
        loss_bursts=0, brownouts=0, shard_kills=1,
    )
    schedule = ChaosSchedule.randomized(
        network, injector, spec,
        kill_candidates=[],
        authority_candidates=authorities,
        fault_model=fault_model,
        shard_plane=plane,
        shard_candidates=sorted(plane.shards) if plane is not None else (),
    )

    count = int(rate * duration)
    for timed in zipf_host_pair_packets(
        topo, host_ips, LAYOUT, count=count, rate=rate, alpha=alpha,
        seed=seed, deterministic_arrivals=True,
    ):
        dn.send_at(timed.time, timed.source_host, timed.packet)

    # Sample the cumulative degraded-punt level every bin so recovery
    # time is measurable without enabling full telemetry.
    degraded_samples: List[Tuple[float, int]] = []

    def sample_degraded() -> None:
        degraded_samples.append(
            (
                round(network.scheduler.now, 9),
                sum(s.degraded_packets for s in dn.switches()),
            )
        )

    drain = max(0.3, (miss_threshold + 2) * heartbeat_interval_s + 0.1)
    total_time = duration + drain
    for index in range(1, int(total_time / bin_width_s) + 2):
        network.scheduler.schedule_at(index * bin_width_s, sample_degraded)

    dn.run(until=total_time)
    check_invariants()

    delivered = network.delivered()
    dropped = network.dropped()
    attribution = attribute_drops(dropped)
    unaccounted = count - len(network.deliveries)
    degraded = sum(s.degraded_packets for s in dn.switches())
    failovers = sum(s.failovers for s in dn.switches())
    channel_totals = controller.control_plane_counters()

    # Recovery metric: time from the authority kill until the *last*
    # degraded-path activity — with migration healing this closes in a
    # couple of rebalance cycles; statically it waits out the heartbeat
    # deadline plus failover.
    kill_times = [
        when for when, kind, target in schedule.planned
        if kind == "kill-switch" and target in authorities
    ]
    authority_kill_at = min(kill_times) if kill_times else None
    last_degraded_at = None
    previous_level = 0
    for when, level in degraded_samples:
        if level > previous_level:
            last_degraded_at = when
        previous_level = level
    if authority_kill_at is None or last_degraded_at is None:
        time_to_full_service = 0.0
    else:
        time_to_full_service = max(0.0, last_degraded_at - authority_kill_at)

    # Fairness story (rebalance mode): when did the imbalance detector
    # trip, and when did the window fairness clear the threshold again?
    fairness_series = Series(
        "window fairness", x_label="time (s)", y_label="Jain fairness"
    )
    fairness_tripped_at = None
    fairness_recovered_at = None
    final_fairness = None
    migrations_completed = migrations_aborted = 0
    hot_migrations = orphan_migrations = 0
    if plane is not None and plane.rebalancer is not None:
        for entry in plane.rebalancer.history:
            fairness_series.append(entry["time"], entry["fairness"])
            if "authority-imbalance" in entry["findings"]:
                if fairness_tripped_at is None:
                    fairness_tripped_at = entry["time"]
            elif (
                fairness_tripped_at is not None
                and fairness_recovered_at is None
                and entry["fairness"] >= IMBALANCE_FAIRNESS_THRESHOLD
            ):
                fairness_recovered_at = entry["time"]
        if plane.rebalancer.history:
            final_fairness = plane.rebalancer.history[-1]["fairness"]
        for migration in plane.migrator.finished:
            if migration.phase == "done":
                migrations_completed += 1
                if migration.reason == "hot":
                    hot_migrations += 1
                elif migration.reason == "orphan":
                    orphan_migrations += 1
            else:
                migrations_aborted += 1

    series: List[Series] = [
        rate_timeline(network.deliveries, 0.05, label="delivered/s"),
    ]
    if len(fairness_series):
        series.append(fairness_series)

    table_rows = [
        ["delivered", len(delivered)],
        ["dropped", len(dropped)],
        ["degraded packet punts", degraded],
        ["invariant violations", len(violations)],
        ["time to full service (s)", round(time_to_full_service, 6)],
        ["migrations completed", migrations_completed],
    ]

    monitor = controller.monitor
    notes: Dict[str, object] = {
        "seed": seed,
        "rate": rate,
        "duration": duration,
        "alpha": alpha,
        "rebalance": rebalance,
        "heartbeat_interval_s": heartbeat_interval_s,
        "miss_threshold": miss_threshold,
        "static_detection_floor_s": miss_threshold * heartbeat_interval_s,
        "spares": list(spares),
        "delivered": len(delivered),
        "dropped": len(dropped),
        "drop_attribution": dict(sorted(attribution.items())),
        "unaccounted_packets": int(unaccounted),
        "invariant_violations": len(violations),
        "degraded_packets": degraded,
        "failovers": failovers,
        "detections": len(monitor.detections),
        "recoveries": len(monitor.recoveries),
        "authority_kill_at": authority_kill_at,
        "time_to_full_service_s": round(time_to_full_service, 6),
        "fairness_tripped_at": fairness_tripped_at,
        "fairness_recovered_at": fairness_recovered_at,
        "final_fairness": final_fairness,
        "migrations_completed": migrations_completed,
        "migrations_aborted": migrations_aborted,
        "hot_migrations": hot_migrations,
        "orphan_migrations": orphan_migrations,
        "control_counters": channel_totals,
        "chaos_events": len(schedule.planned),
        "_violations": violations,
        "_planned": list(schedule.planned),
    }
    if plane is not None:
        notes["control_plane"] = plane.export()

    recorder = getattr(_obs_context.current(), "telemetry", None)
    if recorder is not None and recorder.enabled:
        notes["telemetry_windows"] = len(recorder.export()["windows"])

    name = "C2-rebalance-soak" if rebalance else "C2-static-soak"
    title = (
        "Self-healing soak: hot/orphan partition migration under skew and kills"
        if rebalance
        else "Static baseline: heartbeat-only failover under skew and kills"
    )
    return ExperimentResult(
        name=name,
        title=title,
        series=series,
        table_headers=["metric", "value"],
        table_rows=table_rows,
        notes=notes,
    )


def _chaos_replicate(seed: int, **soak_kwargs) -> Dict[str, object]:
    """One replicate of the soak: the portable summary of its notes.

    Everything returned is plain data (no Series, no Rule references), so
    replicates can cross a process boundary; the keys cover exactly what
    the robustness claims are judged on.
    """
    result = run_chaos_soak(seed=seed, **soak_kwargs)
    notes = result.notes
    return {
        "seed": seed,
        "delivered": notes["delivered"],
        "dropped": notes["dropped"],
        "drop_attribution": dict(notes["drop_attribution"]),
        "unattributed_drops": notes["unattributed_drops"],
        "unaccounted_packets": notes["unaccounted_packets"],
        "invariant_violations": notes["invariant_violations"],
        "detections": notes["detections"],
        "false_positives": notes["false_positives"],
        "recoveries": notes["recoveries"],
        "degraded_packets": notes["degraded_packets"],
        "failovers": notes["failovers"],
        "chaos_events": notes["chaos_events"],
    }


def run_chaos_replicates(
    replicates: int = 8,
    root_seed: int = 7,
    jobs: Optional[int] = None,
    **soak_kwargs,
) -> List[Dict[str, object]]:
    """Sweep ``replicates`` independent soaks, one derived seed per point.

    Seeds come from :func:`repro.parallel.seeds.derive_seed` over the
    replicate index, so the schedule of replicate ``i`` depends only on
    ``(root_seed, i)`` — never on worker count or completion order — and
    a parallel sweep reproduces the serial one exactly.
    """
    from repro.parallel.runner import SweepRunner

    return SweepRunner(jobs).map_seeded(
        _chaos_replicate,
        [("chaos-replicate", index) for index in range(replicates)],
        base_params=soak_kwargs,
        root_seed=root_seed,
    )


def _detection_latencies(
    injector: FailureInjector, controller
) -> List[float]:
    """Kill-to-detection delay for every detected authority failure."""
    monitor = controller.monitor
    if monitor is None:
        return []
    kills: Dict[str, List[float]] = {}
    for when, kind, target in injector.events:
        if kind == "switch-down":
            kills.setdefault(target, []).append(when)
    latencies: List[float] = []
    for detected_at, switch in monitor.detections:
        candidates = [t for t in kills.get(switch, []) if t <= detected_at]
        if candidates:
            latencies.append(detected_at - max(candidates))
    return latencies
