"""E4 — first-packet delay: data-plane detour vs controller round trip.

The paper's latency claim: a cache-miss packet in DIFANE pays one extra
*data-plane* hop through the authority switch (sub-millisecond), while in
NOX it pays a control-channel round trip plus controller queueing
(≈10 ms).  Packets after the first hit the installed rule and see plain
forwarding delay in both systems.

We run both architectures over the same three-tier campus topology and
flow workload (two packets per flow, the second after the install has
surely landed) and report the delay populations:

* ``DIFANE first`` / ``DIFANE subsequent``
* ``NOX first`` / ``NOX subsequent``

as CDX series plus summary rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import Series
from repro.analysis.stats import cdf, summarize
from repro.baselines.nox import NoxNetwork
from repro.core.controller import DifaneNetwork
from repro.experiments.common import (
    CALIBRATION,
    Calibration,
    ExperimentResult,
    resolve_engine,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.topology import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets

__all__ = ["run_delay"]

LAYOUT = FIVE_TUPLE_LAYOUT


def _delays(records) -> Dict[str, List[float]]:
    first = [r.delay for r in records if r.via_authority or r.via_controller]
    rest = [r.delay for r in records if not (r.via_authority or r.via_controller)]
    return {"first": first, "subsequent": rest}


def _cdf_series(label: str, values: List[float]) -> Series:
    series = Series(label, x_label="delay (ms)", y_label="CDF")
    for value, fraction in cdf([v * 1e3 for v in values]):
        series.append(value, fraction)
    return series


def _delay_point(
    system: str,
    flows: int,
    rate: float,
    calibration: Calibration,
    seed: int,
    engine: str,
) -> Dict[str, List[float]]:
    """One sweep point: first/subsequent delay populations for one system.

    ``system`` is ``"difane"`` or ``"nox"``.  Module-level and seeded by
    explicit parameters so the sweep runner can run the two systems in
    separate worker processes without changing any output.
    """
    topo_args = dict(core_count=2, distribution_count=3,
                     access_per_distribution=3, hosts_per_access=2)
    # Per-hop pipeline latency calibrated to the paper's kernel prototype.
    hop_delay = 60e-6

    topo = TopologyBuilder.three_tier_campus(**topo_args)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    if system == "difane":
        facade = DifaneNetwork.build(
            topo,
            rules,
            LAYOUT,
            authority_count=2,
            cache_capacity=4096,
            redirect_rate=calibration.authority_redirect_rate,
            forwarding_delay_s=hop_delay,
            engine=engine,
        )
    elif system == "nox":
        facade = NoxNetwork.build(
            topo,
            rules,
            LAYOUT,
            controller_rate=calibration.controller_rate,
            control_latency_s=calibration.control_latency_s,
            forwarding_delay_s=hop_delay,
            engine=engine,
        )
    else:
        raise ValueError(f"unknown system {system!r}")

    # Two identical packets per flow, the second well after the install.
    timed = host_pair_packets(
        topo, host_ips, LAYOUT, count=flows, rate=rate, seed=seed, flow_packets=1
    )
    late = host_pair_packets(
        topo, host_ips, LAYOUT, count=flows, rate=rate, seed=seed, flow_packets=1
    )
    gap = flows / rate + 10 * calibration.control_latency_s
    for timed_packet in late:
        timed_packet.time += gap
    for timed_packet in timed + late:
        facade.send_at(timed_packet.time, timed_packet.source_host, timed_packet.packet)
    facade.run()
    return _delays(facade.network.delivered())


def run_delay(
    flows: int = 200,
    rate: float = 2_000.0,
    calibration: Calibration = CALIBRATION,
    seed: int = 7,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Measure first- and subsequent-packet delay under both architectures.

    ``rate`` is kept far below every capacity so queueing delay is
    negligible and the comparison isolates path/architecture latency.
    ``jobs`` runs the two systems in parallel worker processes with
    identical output (see :mod:`repro.parallel.runner`).
    """
    from repro.parallel.runner import SweepRunner

    engine = resolve_engine(engine)
    difane, nox = SweepRunner(jobs).map(
        _delay_point,
        [
            dict(system=system, flows=flows, rate=rate,
                 calibration=calibration, seed=seed, engine=engine)
            for system in ("difane", "nox")
        ],
    )

    series = [
        _cdf_series("DIFANE first", difane["first"]),
        _cdf_series("DIFANE subsequent", difane["subsequent"]),
        _cdf_series("NOX first", nox["first"]),
        _cdf_series("NOX subsequent", nox["subsequent"]),
    ]
    rows = []
    for label, values in (
        ("DIFANE first", difane["first"]),
        ("DIFANE subsequent", difane["subsequent"]),
        ("NOX first", nox["first"]),
        ("NOX subsequent", nox["subsequent"]),
    ):
        if values:
            summary = summarize([v * 1e3 for v in values])
            rows.append([label, len(values), f"{summary.median:.3f}",
                         f"{summary.mean:.3f}", f"{summary.p99:.3f}"])
        else:
            rows.append([label, 0, "-", "-", "-"])

    return ExperimentResult(
        name="E4-delay",
        title="Packet delay (ms): DIFANE data-plane detour vs NOX controller RTT",
        series=series,
        table_headers=["population", "n", "median", "mean", "p99"],
        table_rows=rows,
        notes={
            "difane_first_median_ms": _median_ms(difane["first"]),
            "nox_first_median_ms": _median_ms(nox["first"]),
        },
    )


def _median_ms(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return summarize([v * 1e3 for v in values]).median
