"""E4 — first-packet delay: data-plane detour vs controller round trip.

The paper's latency claim: a cache-miss packet in DIFANE pays one extra
*data-plane* hop through the authority switch (sub-millisecond), while in
NOX it pays a control-channel round trip plus controller queueing
(≈10 ms).  Packets after the first hit the installed rule and see plain
forwarding delay in both systems.

We run both architectures over the same three-tier campus topology and
flow workload (two packets per flow, the second after the install has
surely landed) and report the delay populations:

* ``DIFANE first`` / ``DIFANE subsequent``
* ``NOX first`` / ``NOX subsequent``

as CDX series plus summary rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import Series
from repro.analysis.stats import cdf, summarize
from repro.baselines.nox import NoxNetwork
from repro.core.controller import DifaneNetwork
from repro.experiments.common import (
    CALIBRATION,
    Calibration,
    ExperimentResult,
    resolve_engine,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.topology import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets

__all__ = ["run_delay"]

LAYOUT = FIVE_TUPLE_LAYOUT


def _delays(records) -> Dict[str, List[float]]:
    first = [r.delay for r in records if r.via_authority or r.via_controller]
    rest = [r.delay for r in records if not (r.via_authority or r.via_controller)]
    return {"first": first, "subsequent": rest}


def _cdf_series(label: str, values: List[float]) -> Series:
    series = Series(label, x_label="delay (ms)", y_label="CDF")
    for value, fraction in cdf([v * 1e3 for v in values]):
        series.append(value, fraction)
    return series


def run_delay(
    flows: int = 200,
    rate: float = 2_000.0,
    calibration: Calibration = CALIBRATION,
    seed: int = 7,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Measure first- and subsequent-packet delay under both architectures.

    ``rate`` is kept far below every capacity so queueing delay is
    negligible and the comparison isolates path/architecture latency.
    """
    engine = resolve_engine(engine)
    topo_args = dict(core_count=2, distribution_count=3,
                     access_per_distribution=3, hosts_per_access=2)

    def workload(topo, host_ips):
        """Two identical packets per flow, the second after install."""
        timed = host_pair_packets(
            topo, host_ips, LAYOUT, count=flows, rate=rate, seed=seed, flow_packets=1
        )
        # Second packet of each flow, well after the install completed.
        late = host_pair_packets(
            topo, host_ips, LAYOUT, count=flows, rate=rate, seed=seed, flow_packets=1
        )
        gap = flows / rate + 10 * calibration.control_latency_s
        for timed_packet in late:
            timed_packet.time += gap
        return timed + late

    # Per-hop pipeline latency calibrated to the paper's kernel prototype.
    hop_delay = 60e-6

    # DIFANE.
    topo = TopologyBuilder.three_tier_campus(**topo_args)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    dn = DifaneNetwork.build(
        topo,
        rules,
        LAYOUT,
        authority_count=2,
        cache_capacity=4096,
        redirect_rate=calibration.authority_redirect_rate,
        forwarding_delay_s=hop_delay,
        engine=engine,
    )
    for timed_packet in workload(topo, host_ips):
        dn.send_at(timed_packet.time, timed_packet.source_host, timed_packet.packet)
    dn.run()
    difane = _delays(dn.network.delivered())

    # NOX.
    topo = TopologyBuilder.three_tier_campus(**topo_args)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    nn = NoxNetwork.build(
        topo,
        rules,
        LAYOUT,
        controller_rate=calibration.controller_rate,
        control_latency_s=calibration.control_latency_s,
        forwarding_delay_s=hop_delay,
        engine=engine,
    )
    for timed_packet in workload(topo, host_ips):
        nn.send_at(timed_packet.time, timed_packet.source_host, timed_packet.packet)
    nn.run()
    nox = _delays(nn.network.delivered())

    series = [
        _cdf_series("DIFANE first", difane["first"]),
        _cdf_series("DIFANE subsequent", difane["subsequent"]),
        _cdf_series("NOX first", nox["first"]),
        _cdf_series("NOX subsequent", nox["subsequent"]),
    ]
    rows = []
    for label, values in (
        ("DIFANE first", difane["first"]),
        ("DIFANE subsequent", difane["subsequent"]),
        ("NOX first", nox["first"]),
        ("NOX subsequent", nox["subsequent"]),
    ):
        if values:
            summary = summarize([v * 1e3 for v in values])
            rows.append([label, len(values), f"{summary.median:.3f}",
                         f"{summary.mean:.3f}", f"{summary.p99:.3f}"])
        else:
            rows.append([label, 0, "-", "-", "-"])

    return ExperimentResult(
        name="E4-delay",
        title="Packet delay (ms): DIFANE data-plane detour vs NOX controller RTT",
        series=series,
        table_headers=["population", "n", "median", "mean", "p99"],
        table_rows=rows,
        notes={
            "difane_first_median_ms": _median_ms(difane["first"]),
            "nox_first_median_ms": _median_ms(nox["first"]),
        },
    )


def _median_ms(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return summarize([v * 1e3 for v in values]).median
