"""E8 — path stretch of cache-miss packets, by authority placement.

A cache-miss packet detours ingress → authority → egress instead of the
shortest ingress → egress path.  Stretch = detour latency / shortest-path
latency.  The paper shows this is modest and placement-sensitive; we
sweep the placement strategies of :mod:`repro.core.placement` on a Waxman
random topology and report the stretch distribution per strategy.

Analytic evaluation: stretch depends only on routing distances and the
partition→authority mapping, so no event simulation is needed — we
enumerate random flows, find each flow's owning authority switch through
the actual partitioner, and read distances from the routing table.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.analysis.series import Series
from repro.analysis.stats import cdf, summarize
from repro.core.partition import assign_partitions, partition_policy
from repro.core.placement import choose_authority_switches
from repro.experiments.common import ExperimentResult
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.routing import compute_routes
from repro.net.topology import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

__all__ = ["run_stretch"]

LAYOUT = FIVE_TUPLE_LAYOUT


def run_stretch(
    strategies: Optional[Sequence[str]] = None,
    authority_count: int = 3,
    switch_count: int = 24,
    flows: int = 400,
    seed: int = 17,
) -> ExperimentResult:
    """Compute stretch CDFs per placement strategy.

    Every sampled flow: random (ingress, egress) host pair plus the
    authority switch owning the flow's partition; stretch is the ratio of
    routed latencies.  Flows whose ingress equals egress are skipped.
    """
    strategies = list(strategies) if strategies else ["random", "degree", "central", "spread"]
    topo = TopologyBuilder.waxman(switch_count, hosts_per_switch=1, seed=seed)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    routes = compute_routes(topo)
    partition_result = partition_policy(rules, LAYOUT, num_partitions=authority_count * 2)

    rng = random.Random(seed)
    hosts = sorted(host_ips)
    flow_samples = []
    for _ in range(flows):
        src, dst = rng.sample(hosts, 2)
        header = LAYOUT.pack_values(
            nw_src=host_ips[src], nw_dst=host_ips[dst], nw_proto=6,
            tp_src=rng.randint(1024, 65535), tp_dst=80,
        )
        flow_samples.append((src, dst, header))

    series_list = []
    rows = []
    for strategy in strategies:
        authorities = choose_authority_switches(
            topo, authority_count, strategy=strategy, seed=seed
        )
        assignment = assign_partitions(partition_result.partitions, authorities)
        stretches = []
        for src, dst, header in flow_samples:
            ingress = topo.host_attachment(src)
            egress = topo.host_attachment(dst)
            partition = partition_result.find_partition(header)
            authority = assignment[partition.partition_id][0]
            # Hop-count stretch (the paper's metric); +1 on each leg counts
            # the host links so same-switch pairs stay finite.
            direct = routes.hop_count(ingress, egress) + 2
            detour = (
                routes.hop_count(ingress, authority)
                + routes.hop_count(authority, egress)
                + 2
            )
            stretches.append(max(detour / direct, 1.0))
        series = Series(strategy, x_label="stretch", y_label="CDF")
        for value, fraction in cdf(stretches):
            series.append(value, fraction)
        series_list.append(series)
        summary = summarize(stretches)
        rows.append([strategy, f"{summary.median:.2f}", f"{summary.mean:.2f}",
                     f"{summary.p95:.2f}", f"{summary.maximum:.2f}"])

    return ExperimentResult(
        name="E8-stretch",
        title="First-packet path stretch by authority placement",
        series=series_list,
        table_headers=["placement", "median", "mean", "p95", "max"],
        table_rows=rows,
        notes={"switches": switch_count, "authorities": authority_count, "flows": flows},
    )
