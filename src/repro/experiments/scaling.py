"""E3 — setup throughput scales with the number of authority switches.

The architectural payoff: DIFANE's miss-handling capacity is the *sum* of
its authority switches, because the flow space is partitioned across them
and misses go directly to the owning switch.  NOX's capacity is one
controller, however many switches punt to it.

Topology: a hub switch; ``k`` authority switches and ``n_ingress`` ingress
switches (each with a source host) around it; 16 destination hosts on a
far switch so that flow-space partitions — which cut on destination bits
for a routing policy — spread traffic across all k authority switches.

Offered load per point is ``1.5 × k × (per-switch capacity)``, i.e. always
50% beyond aggregate capacity, so the measured goodput *is* the capacity.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.analysis.series import Series
from repro.baselines.nox import NoxNetwork
from repro.core.controller import DifaneNetwork
from repro.experiments.common import (
    CALIBRATION,
    Calibration,
    ExperimentResult,
    resolve_engine,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.packet import Packet
from repro.net.topology import Topology
from repro.workloads.policies import routing_policy_for_topology

__all__ = ["run_scaling"]

LAYOUT = FIVE_TUPLE_LAYOUT


def _build_topology(k_authorities: int, n_ingress: int, n_dst_hosts: int) -> Topology:
    topo = Topology()
    topo.add_switch("hub")
    for index in range(k_authorities):
        name = topo.add_switch(f"auth{index}")
        topo.add_link("hub", name)
    for index in range(n_ingress):
        name = topo.add_switch(f"in{index}")
        topo.add_link("hub", name)
        topo.add_host(f"src{index}", name)
    egress = topo.add_switch("egress")
    topo.add_link("hub", egress)
    for index in range(n_dst_hosts):
        topo.add_host(f"dst{index}", egress)
    return topo


def _inject_unique_flows(facade, host_ips, n_ingress: int, count: int, rate: float, seed: int) -> None:
    """Spray ``count`` unique single-packet flows over ingresses and dsts."""
    rng = random.Random(seed)
    dst_hosts = sorted(h for h in host_ips if h.startswith("dst"))
    for index in range(count):
        src = f"src{index % n_ingress}"
        dst = rng.choice(dst_hosts)
        packet = Packet.from_fields(
            LAYOUT,
            flow_id=index,
            nw_src=0x0A000000 | index,
            nw_dst=host_ips[dst],
            nw_proto=6,
            tp_src=1024 + (index % 60000),
            tp_dst=80,
        )
        facade.send_at(index / rate, src, packet)


def _span_goodput(delivered, scale: float) -> float:
    """Full-scale goodput over the delivery span (see throughput module)."""
    if len(delivered) < 2:
        return 0.0
    span = delivered[-1].finished_at - delivered[0].finished_at
    if span <= 0:
        return 0.0
    return (len(delivered) - 1) / span / scale


def _scaling_point(
    k: int,
    flows_per_point: int,
    n_ingress: int,
    scale: float,
    calibration: Calibration,
    engine: str,
) -> tuple:
    """One sweep point: saturated goodput of both architectures at ``k``.

    Module-level and fully parameterized (seeds derive from ``k``, never
    from execution order) so the sweep runner can fan points out across
    worker processes with byte-identical results.
    """
    offered_scaled = 1.5 * k * calibration.authority_redirect_rate * scale

    topo = _build_topology(k, n_ingress, n_dst_hosts=16)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    dn = DifaneNetwork.build(
        topo,
        rules,
        LAYOUT,
        authority_switches=[f"auth{i}" for i in range(k)],
        cache_capacity=0,
        partitions_per_authority=4,
        redirect_rate=calibration.authority_redirect_rate * scale,
        engine=engine,
    )
    _inject_unique_flows(dn, host_ips, n_ingress, flows_per_point, offered_scaled, seed=k)
    dn.run()
    difane_goodput = _span_goodput(dn.network.delivered(), scale)

    topo = _build_topology(k, n_ingress, n_dst_hosts=16)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    nn = NoxNetwork.build(
        topo,
        rules,
        LAYOUT,
        controller_rate=calibration.controller_rate * scale,
        controller_queue=calibration.controller_queue,
        control_latency_s=calibration.control_latency_s,
        engine=engine,
    )
    _inject_unique_flows(nn, host_ips, n_ingress, flows_per_point, offered_scaled, seed=k)
    nn.run()
    return difane_goodput, _span_goodput(nn.network.delivered(), scale)


def run_scaling(
    authority_counts: Optional[Sequence[int]] = None,
    flows_per_point: int = 1500,
    n_ingress: int = 4,
    scale: float = 0.01,
    calibration: Calibration = CALIBRATION,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Measure saturated goodput as authority switches are added.

    Returns two series over ``k``: DIFANE (≈ linear in k) and NOX (flat at
    the controller's capacity however large k grows).  ``jobs`` fans the
    ``k`` points out over worker processes (output is identical to the
    serial run; see :mod:`repro.parallel.runner`).
    """
    from repro.parallel.runner import SweepRunner

    authority_counts = list(authority_counts) if authority_counts else [1, 2, 3, 4]
    engine = resolve_engine(engine)
    difane_series = Series(
        "DIFANE", x_label="# authority switches", y_label="goodput (flows/s)"
    )
    nox_series = Series(
        "NOX", x_label="# authority switches", y_label="goodput (flows/s)"
    )

    goodputs = SweepRunner(jobs).map(
        _scaling_point,
        [
            dict(k=k, flows_per_point=flows_per_point, n_ingress=n_ingress,
                 scale=scale, calibration=calibration, engine=engine)
            for k in authority_counts
        ],
    )
    for k, (difane_goodput, nox_goodput) in zip(authority_counts, goodputs):
        difane_series.append(k, difane_goodput)
        nox_series.append(k, nox_goodput)

    result = ExperimentResult(
        name="E3-scaling",
        title="Flow-setup throughput vs number of authority switches",
        series=[difane_series, nox_series],
        notes={"scale": scale, "flows_per_point": flows_per_point, "n_ingress": n_ingress},
    )
    return result
