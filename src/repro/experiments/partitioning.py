"""E5 / E6 / E10 — evaluating the flow-space partitioner on real-shaped policies.

* **E5**: per-authority-switch TCAM entries as the number of partitions
  grows.  The paper's claim: ≈ ``N/k`` plus a modest split overhead, so
  small-TCAM switches can host big policies if you add enough of them.
* **E6**: the split overhead itself — total entries over the original rule
  count — grows slowly with k.
* **E10** (ablation): the split-aware cut heuristic vs. a naive
  balance-only heuristic; the design choice DESIGN.md calls out.

These experiments are pure algorithm evaluations (no event simulation):
they run :func:`repro.core.partition.partition_policy` over synthesized
campus / VPN / ClassBench policies and report the partition statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.series import Series
from repro.core.partition import partition_policy
from repro.experiments.common import ExperimentResult
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.rule import Rule
from repro.workloads.classbench import generate_classbench
from repro.workloads.policies import campus_policy, vpn_policy

__all__ = ["run_partition_tcam", "run_partition_overhead", "run_cut_ablation",
           "default_policies"]

LAYOUT = FIVE_TUPLE_LAYOUT


def default_policies(scale: int = 1) -> Dict[str, List[Rule]]:
    """The policy suite used across the partitioning experiments.

    ``scale`` multiplies the size knobs (1 → ≈1–3 K rules per policy,
    suitable for tests; 4 → ≈10 K, the benchmark setting).
    """
    return {
        "campus": campus_policy(
            departments=8 * scale, subnets_per_department=8,
            acl_rules_per_department=12, layout=LAYOUT, seed=11,
        ),
        "vpn": vpn_policy(customers=60 * scale, sites_per_customer=4,
                          layout=LAYOUT, seed=12),
        "classbench-acl": generate_classbench(
            "acl", count=1000 * scale, seed=13, layout=LAYOUT
        ),
    }


def run_partition_tcam(
    partition_counts: Optional[Sequence[int]] = None,
    policies: Optional[Dict[str, List[Rule]]] = None,
) -> ExperimentResult:
    """E5: max per-partition TCAM entries vs number of partitions."""
    partition_counts = list(partition_counts) if partition_counts else [1, 2, 4, 8, 16, 32, 64]
    policies = policies if policies is not None else default_policies()
    series_list = []
    rows = []
    for name, rules in policies.items():
        series = Series(
            name, x_label="# partitions", y_label="max TCAM entries per partition"
        )
        for k in partition_counts:
            result = partition_policy(rules, LAYOUT, num_partitions=k)
            series.append(k, result.max_partition_entries)
            rows.append([
                name, k, len(rules), result.max_partition_entries,
                result.total_entries, f"{result.duplication_factor:.3f}",
            ])
        series.meta["policy_size"] = len(rules)
        series_list.append(series)
    return ExperimentResult(
        name="E5-partition-tcam",
        title="TCAM entries per authority switch vs number of partitions",
        series=series_list,
        table_headers=["policy", "k", "rules", "max/partition", "total", "dup-factor"],
        table_rows=rows,
    )


def run_partition_overhead(
    partition_counts: Optional[Sequence[int]] = None,
    policies: Optional[Dict[str, List[Rule]]] = None,
) -> ExperimentResult:
    """E6: rule-splitting overhead (duplication factor) vs partitions."""
    partition_counts = list(partition_counts) if partition_counts else [1, 2, 4, 8, 16, 32, 64]
    policies = policies if policies is not None else default_policies()
    series_list = []
    for name, rules in policies.items():
        series = Series(name, x_label="# partitions", y_label="duplication factor")
        for k in partition_counts:
            result = partition_policy(rules, LAYOUT, num_partitions=k)
            series.append(k, result.duplication_factor)
        series_list.append(series)
    return ExperimentResult(
        name="E6-partition-overhead",
        title="Rule-split overhead vs number of partitions",
        series=series_list,
    )


def run_cut_ablation(
    partition_counts: Optional[Sequence[int]] = None,
    policy: Optional[List[Rule]] = None,
) -> ExperimentResult:
    """E10: split-aware vs naive balance-only cut selection.

    The split-aware heuristic should dominate on policies with real
    overlap structure (ClassBench ACL): same balance, fewer duplicated
    rules.
    """
    partition_counts = list(partition_counts) if partition_counts else [2, 4, 8, 16, 32]
    if policy is None:
        policy = generate_classbench("acl", count=1000, seed=13, layout=LAYOUT)
    series_list = []
    rows = []
    variants = (
        ("split-aware", {"cut_strategy": "split-aware"}),
        ("occupancy", {"cut_strategy": "occupancy"}),
        ("split-aware/dst-only", {"cut_strategy": "split-aware",
                                  "allowed_fields": ["nw_dst"]}),
    )
    for label, kwargs in variants:
        series = Series(label, x_label="# partitions", y_label="total TCAM entries")
        for k in partition_counts:
            result = partition_policy(policy, LAYOUT, num_partitions=k, **kwargs)
            series.append(k, result.total_entries)
            rows.append([
                label, k, result.total_entries,
                result.max_partition_entries, f"{result.duplication_factor:.3f}",
            ])
        series_list.append(series)
    return ExperimentResult(
        name="E10-cut-ablation",
        title="Cut-selection ablation: split-aware vs balance-only",
        series=series_list,
        table_headers=["strategy", "k", "total entries", "max/partition", "dup-factor"],
        table_rows=rows,
        notes={"policy_size": len(policy)},
    )
