"""E9 — the management cost of network dynamics (paper §4).

Exercises every dynamic path of a live DIFANE deployment and tabulates
the cost of each:

* **policy churn** — rule inserts/deletes: affected partitions, control
  messages, flushed cache entries per update;
* **host mobility** — a host re-homes; stale cache rules are flushed;
* **link failure** — routing reconverges with **zero** rule movement (the
  separation claim made measurable);
* **authority failover** — a replicated authority switch dies; partition
  rules re-point to backups.

Traffic runs before each phase so caches are warm, and a semantic
spot-check after all dynamics confirms the policy still classifies
exactly like the single-table original.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.controller import DifaneNetwork
from repro.core.dynamics import ChurnWorkload
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.table import RuleTable
from repro.net.topology import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import host_pair_packets

__all__ = ["run_dynamics"]

LAYOUT = FIVE_TUPLE_LAYOUT


def run_dynamics(
    churn_steps: int = 40,
    warm_flows: int = 150,
    seed: int = 23,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Run the dynamics scenario; returns a cost table per event class."""
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=3, access_per_distribution=3,
        hosts_per_access=2,
    )
    engine = resolve_engine(engine)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, acl_rules=20, seed=seed)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_count=3, replication=2, cache_capacity=256,
        engine=engine,
    )
    controller = dn.controller

    def warm(seed_offset: int) -> None:
        """Run a traffic burst so caches reflect live state."""
        start = dn.network.scheduler.now
        for timed in host_pair_packets(
            topo, host_ips, LAYOUT, count=warm_flows, rate=5_000.0,
            seed=seed + seed_offset, flow_packets=2,
        ):
            dn.send_at(start + timed.time, timed.source_host, timed.packet)
        dn.run()

    rows: List[List[object]] = []

    # Phase 1: policy churn over a warm network.
    warm(1)
    churn = ChurnWorkload(controller, LAYOUT, seed=seed)
    events = churn.run(churn_steps)
    inserts = [e for e in events if e.kind == "insert"]
    deletes = [e for e in events if e.kind == "delete"]
    for kind, population in (("rule insert", inserts), ("rule delete", deletes)):
        if not population:
            continue
        rows.append([
            kind,
            len(population),
            f"{sum(e.affected_partitions for e in population) / len(population):.2f}",
            f"{sum(e.control_messages for e in population) / len(population):.2f}",
            f"{sum(e.cache_entries_flushed for e in population) / len(population):.2f}",
        ])

    # Phase 2: host mobility.
    warm(2)
    mover = topo.hosts()[0]
    old_attachment = topo.host_attachment(mover)
    new_home = next(
        s for s in topo.edge_switches() if s != old_attachment
    )
    flushed = controller.handle_host_move(mover, new_home)
    rows.append(["host move", 1, "-", "-", str(flushed)])

    # Phase 3: link failure — no rules move.
    messages_before = controller.control_messages
    core_pair = ("core0", "core1")
    controller.handle_link_failure(*core_pair)
    rows.append([
        "link failure", 1, "0",
        str(controller.control_messages - messages_before), "0",
    ])

    # Phase 4: authority failover.
    failed = controller.authority_switches[0]
    messages_before = controller.control_messages
    repointed = controller.handle_authority_failure(failed)
    rows.append([
        "authority failover", 1, str(repointed),
        str(controller.control_messages - messages_before), "0",
    ])

    # Final semantic spot check against the evolved policy.
    warm(3)
    oracle = RuleTable(LAYOUT, controller.policy)
    rng = random.Random(seed)
    mismatches = 0
    checks = 300
    for _ in range(checks):
        bits = rng.getrandbits(LAYOUT.width)
        expected = oracle.lookup_bits(bits)
        got = _distributed_lookup(dn, bits)
        if not _consistent(expected, got):
            mismatches += 1
    rows.append(["semantic spot-check", checks, "-", "-", f"{mismatches} mismatches"])

    return ExperimentResult(
        name="E9-dynamics",
        title="Management cost of dynamics (per event averages)",
        table_headers=["event", "count", "partitions touched",
                       "control msgs", "cache flushes"],
        table_rows=rows,
        notes={"mismatches": mismatches},
    )


def _distributed_lookup(dn: DifaneNetwork, bits: int):
    """Resolve ``bits`` the way the deployed system would: find the owning
    partition's primary authority switch and look up its authority table."""
    controller = dn.controller
    for state in controller._states.values():
        if state.partition.region.matches(bits):
            primary = state.owners[0]
            switch = dn.switch(primary)
            return switch.pipeline.authority.table.lookup_bits(bits)
    return None


def _consistent(expected, got) -> bool:
    if expected is None or got is None:
        return expected is None and got is None
    return got.root_origin() is expected.root_origin() or got.actions == expected.actions
