"""E2 — flow-setup throughput: one authority switch vs. the NOX controller.

The paper's headline microbenchmark: blast single-packet flows (every
packet a brand-new microflow, so every packet takes the miss path) through
one ingress switch and measure sustained goodput.

* **DIFANE** — misses detour through one authority switch; goodput climbs
  with offered load until it saturates at the switch's redirect capacity
  (≈800 K flows/s on the paper's prototype).
* **NOX** — misses punt to the controller; goodput saturates at the
  controller CPU (≈50 K setups/s), an order of magnitude earlier.

Topology: ``hsrc — s0 — auth — s1 — hdst`` (the authority switch sits on
the path, as in the paper's testbed, so the detour adds no extra hops and
the experiment isolates pure setup capacity).

All rates are scaled by ``scale`` (default 1/100) with time stretched
inversely — queueing dynamics are invariant under that rescaling — and
results are reported normalized back to full scale.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

from repro.analysis.series import Series
from repro.baselines.nox import NoxNetwork
from repro.core.controller import DifaneNetwork
from repro.experiments.common import (
    CALIBRATION,
    Calibration,
    ExperimentResult,
    resolve_engine,
)
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.packet import Packet
from repro.net.topology import Topology
from repro.obs.attribution import attribute_drops
from repro.workloads.policies import routing_policy_for_topology

__all__ = ["run_throughput", "DEFAULT_RATES"]

#: Full-scale offered loads (single-packet flows per second).
DEFAULT_RATES = [25e3, 50e3, 100e3, 200e3, 400e3, 800e3, 1.2e6]

LAYOUT = FIVE_TUPLE_LAYOUT


def _build_topology() -> Topology:
    topo = Topology()
    topo.add_switch("s0")
    topo.add_switch("auth")
    topo.add_switch("s1")
    topo.add_link("s0", "auth")
    topo.add_link("auth", "s1")
    topo.add_host("hsrc", "s0")
    topo.add_host("hdst", "s1")
    return topo


def _unique_flow_packets(count: int, dst_ip: int) -> List[Packet]:
    """``count`` packets, each a distinct microflow toward ``dst_ip``."""
    packets = []
    for index in range(count):
        packets.append(
            Packet.from_fields(
                LAYOUT,
                flow_id=index,
                nw_src=(index & 0xFFFFFFFF) | 0x0A000000,
                nw_dst=dst_ip,
                nw_proto=6,
                tp_src=1024 + (index % 60000),
                tp_dst=80,
            )
        )
    return packets


def _measure_goodput(facade, topo, packets, rate_scaled: float, scale: float) -> float:
    """Inject ``packets`` at ``rate_scaled``; return full-scale goodput.

    Goodput is measured over the *delivery span* (first to last successful
    delivery): under light load that equals the offered rate, under
    saturation it equals the bottleneck's service rate — robust to the
    post-window queue drain either way.
    """
    for index, packet in enumerate(packets):
        facade.send_at(index / rate_scaled, "hsrc", packet)
    facade.run()
    delivered = facade.network.delivered()
    if len(delivered) < 2:
        return 0.0
    span = delivered[-1].finished_at - delivered[0].finished_at
    if span <= 0:
        return 0.0
    return (len(delivered) - 1) / span / scale


def run_throughput(
    rates: Optional[Sequence[float]] = None,
    flows_per_point: int = 1500,
    scale: float = 0.01,
    calibration: Calibration = CALIBRATION,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Sweep offered load; return DIFANE and NOX goodput series.

    Parameters
    ----------
    rates:
        Full-scale offered loads (flows/s); defaults to
        :data:`DEFAULT_RATES`.
    flows_per_point:
        Distinct single-packet flows injected per rate point.
    scale:
        Rate scaling factor (see module docstring).
    engine:
        Match-engine backend for every classifier in the run (``None``
        uses the process default; see :func:`resolve_engine`).
    """
    rates = list(rates) if rates is not None else list(DEFAULT_RATES)
    engine = resolve_engine(engine)
    difane_series = Series(
        "DIFANE", x_label="offered load (flows/s)", y_label="goodput (flows/s)"
    )
    nox_series = Series(
        "NOX", x_label="offered load (flows/s)", y_label="goodput (flows/s)"
    )
    # Attributed losses across the whole sweep: saturated runs shed load
    # (queue tail drops), and the summary must say where it went rather
    # than leaving the deficit implicit in the goodput curve.
    difane_drops: Counter = Counter()
    nox_drops: Counter = Counter()

    for rate in rates:
        rate_scaled = rate * scale

        topo = _build_topology()
        rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
        dn = DifaneNetwork.build(
            topo,
            rules,
            LAYOUT,
            authority_switches=["auth"],
            cache_capacity=0,  # every flow is new: isolate the miss path
            redirect_rate=calibration.authority_redirect_rate * scale,
            engine=engine,
        )
        packets = _unique_flow_packets(flows_per_point, host_ips["hdst"])
        difane_series.append(rate, _measure_goodput(dn, topo, packets, rate_scaled, scale))
        difane_drops.update(attribute_drops(dn.network.dropped()))

        topo = _build_topology()
        rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
        nn = NoxNetwork.build(
            topo,
            rules,
            LAYOUT,
            controller_rate=calibration.controller_rate * scale,
            controller_queue=calibration.controller_queue,
            control_latency_s=calibration.control_latency_s,
            engine=engine,
        )
        packets = _unique_flow_packets(flows_per_point, host_ips["hdst"])
        nox_series.append(rate, _measure_goodput(nn, topo, packets, rate_scaled, scale))
        nox_drops.update(attribute_drops(nn.network.dropped()))

    result = ExperimentResult(
        name="E2-throughput",
        title="Flow-setup throughput: one authority switch vs NOX controller",
        series=[difane_series, nox_series],
        notes={
            "scale": scale,
            "flows_per_point": flows_per_point,
            "difane_capacity": calibration.authority_redirect_rate,
            "nox_capacity": calibration.controller_rate,
            "difane_drop_attribution": dict(sorted(difane_drops.items())),
            "nox_drop_attribution": dict(sorted(nox_drops.items())),
            "difane_overload_drops": int(difane_drops.get("overload", 0)),
            "nox_overload_drops": int(nox_drops.get("overload", 0)),
        },
    )
    result.notes["difane_peak"] = max(difane_series.y)
    result.notes["nox_peak"] = max(nox_series.y)
    return result
