"""E1 (Table 1) — characteristics of the evaluated policies.

The paper opens its evaluation with a table describing the networks and
policies used.  We synthesize the equivalent table for our generated
policies: size, action mix, wildcard usage and overlap structure (the
properties that drive partitioning and caching behaviour).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.partitioning import default_policies
from repro.flowspace.action import Drop, Forward
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.rule import Rule

__all__ = ["run_policy_table", "policy_characteristics"]

LAYOUT = FIVE_TUPLE_LAYOUT


def policy_characteristics(rules: List[Rule], sample: int = 200, seed: int = 0) -> Dict[str, object]:
    """Structural statistics of a policy.

    Overlap depth is estimated on a random ``sample`` of rules: for each,
    the number of higher-priority rules whose match intersects it (the
    length of the dependency chain caching must respect).
    """
    rng = random.Random(seed)
    drops = sum(1 for rule in rules if any(isinstance(a, Drop) for a in rule.actions))
    forwards = sum(1 for rule in rules if any(isinstance(a, Forward) for a in rule.actions))
    wildcard_bits = [rule.match.ternary.wildcard_bits() for rule in rules]

    indices = list(range(len(rules)))
    if len(indices) > sample:
        indices = sorted(rng.sample(indices, sample))
    overlap_depths = []
    for index in indices:
        rule = rules[index]
        depth = sum(
            1 for other in rules[:index] if other.match.intersects(rule.match)
        )
        overlap_depths.append(depth)

    return {
        "rules": len(rules),
        "deny_fraction": drops / len(rules) if rules else 0.0,
        "forward_fraction": forwards / len(rules) if rules else 0.0,
        "avg_wildcard_bits": sum(wildcard_bits) / len(rules) if rules else 0.0,
        "avg_overlap_depth": (
            sum(overlap_depths) / len(overlap_depths) if overlap_depths else 0.0
        ),
        "max_overlap_depth": max(overlap_depths) if overlap_depths else 0,
    }


def run_policy_table(
    policies: Optional[Dict[str, List[Rule]]] = None,
) -> ExperimentResult:
    """Build the Table-1 equivalent for our synthesized policy suite."""
    policies = policies if policies is not None else default_policies()
    rows = []
    for name, rules in policies.items():
        stats = policy_characteristics(rules)
        rows.append([
            name,
            stats["rules"],
            f"{stats['deny_fraction']:.2f}",
            f"{stats['avg_wildcard_bits']:.1f}",
            f"{stats['avg_overlap_depth']:.1f}",
            stats["max_overlap_depth"],
        ])
    return ExperimentResult(
        name="E1-policies",
        title="Evaluated policies (synthesized equivalents of the paper's Table 1)",
        table_headers=["policy", "rules", "deny frac",
                       "avg wildcard bits", "avg overlap depth", "max overlap depth"],
        table_rows=rows,
    )
