"""Shared experiment scaffolding: calibration constants and result types.

Calibration
-----------
The paper's absolute numbers come from a specific testbed (kernel Click
switches, a NOX controller on commodity hardware).  We encode those
measured constants once, here, and every experiment derives its service
rates and latencies from them.  ``EXPERIMENTS.md`` records which constant
each reproduced figure depends on.

Rate scaling: scaling *every* rate by ``s`` while scaling time by ``1/s``
leaves queueing dynamics identical (the event system is memoryless in
absolute time), so experiments accept a ``scale`` knob to keep event
counts tractable and report rates already normalized back to full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.series import Series
from repro.flowspace.engine import ENGINE_CHOICES, get_default_engine

__all__ = [
    "Calibration",
    "CALIBRATION",
    "ExperimentResult",
    "metrics_document",
    "resolve_engine",
]

#: Version tag of the metrics JSON emitted for every experiment run.
METRICS_SCHEMA = "difane-metrics/1"


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an experiment's ``engine`` argument to a concrete name.

    ``None`` means "whatever the process default is" (the CLI's
    ``--engine`` flag sets that default); anything else must be a valid
    engine name.  Experiments thread the resolved name into every
    network/table constructor they create so a whole run classifies with
    one consistent backend.
    """
    if engine is None:
        return get_default_engine()
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINE_CHOICES}")
    return engine


@dataclass(frozen=True)
class Calibration:
    """Measured constants of the paper's testbed (see module docstring)."""

    #: NOX-style controller flow-setup capacity (setups/second).
    controller_rate: float = 50_000.0
    #: One authority switch's redirect capacity (single-packet flows/s).
    authority_redirect_rate: float = 800_000.0
    #: One-way switch ↔ controller control-channel latency (seconds).
    control_latency_s: float = 4.5e-3
    #: Per-link propagation inside the enterprise (seconds).
    link_propagation_s: float = 50e-6
    #: Controller CPU queue depth before tail drop (messages).
    controller_queue: int = 1024
    #: Authority switch redirect queue depth (packets).
    redirect_queue: int = 512


CALIBRATION = Calibration()


@dataclass
class ExperimentResult:
    """What every experiment returns: series and/or table rows plus notes."""

    name: str
    title: str
    series: List[Series] = field(default_factory=list)
    table_headers: List[str] = field(default_factory=list)
    table_rows: List[List[object]] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        """Find a series by its legend label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.name}")


def _json_safe(value):
    """Coerce ``value`` into plain JSON types (numpy scalars → Python)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(item) for item in value]
    to_python = getattr(value, "item", None)
    if callable(to_python):
        try:
            return _json_safe(to_python())
        except (TypeError, ValueError):
            pass
    return repr(value)


def metrics_document(
    result: ExperimentResult,
    context=None,
    exclude_prefixes=("profile_", "artifact_cache_"),
) -> Dict[str, object]:
    """The canonical metrics JSON document for one experiment run.

    Combines the experiment's public notes (underscore-prefixed entries
    are internal debris and are dropped) with the run context's registry
    snapshot.  Wall-clock ``profile_*`` histograms are excluded by
    default so the document is deterministic — golden-regression tests
    diff it verbatim.  ``artifact_cache_*`` counters describe the harness
    (hits depend on cache warmth and worker count, not on the simulated
    system), so they are excluded for the same reason.
    """
    from repro.obs import context as _obs_context

    ctx = context if context is not None else _obs_context.current()
    notes = {
        key: _json_safe(value)
        for key, value in sorted(result.notes.items())
        if not key.startswith("_")
    }
    document: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "experiment": result.name,
        "title": result.title,
        "notes": notes,
        "metrics": ctx.metrics.snapshot(exclude_prefixes=exclude_prefixes),
    }
    # A sharded control plane's export is a first-class document section
    # (like telemetry), not a note: lift it out so goldens and obs diff
    # address it as control_plane.* paths.
    control_plane = notes.pop("control_plane", None)
    if control_plane is not None:
        from repro.obs.telemetry import control_plane_section

        document["control_plane"] = control_plane_section(control_plane)
    if ctx.tracer.enabled:
        document["trace"] = ctx.tracer.accounting()
    recorder = getattr(ctx, "telemetry", None)
    if recorder is not None and recorder.enabled:
        from repro.obs.telemetry import telemetry_section

        document["telemetry"] = telemetry_section(recorder)
    return document
