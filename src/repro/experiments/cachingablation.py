"""E8 — caching ablation: eviction policy × capacity under streaming traffic.

The cost-aware cache subsystem (``EvictionPolicy.COST`` + controller
budget partitioning) claims a lower miss rate than the paper's plain LRU
at equal TCAM budget.  This experiment family measures that claim the way
the cache actually earns it: full event-driven DIFANE simulations under
the PR-8 streaming workloads — steady Zipf, flash crowds, mobility churn
— sweeping eviction policy × per-switch cache capacity and reporting

* miss rate (redirects / ingress classifications),
* the miss-penalty CDF percentiles from the flow tracer
  (:class:`repro.obs.flowtrace.FlowTraceAnalysis`),
* redirect load absorbed by the authority switches,
* install-message overhead (messages, batched messages, receives), and
* the eviction-churn split (capacity evictions / expirations / flushes).

Baselines: LRU (the paper), FIFO, RANDOM, and LRU + idle timeout.  The
``cost`` arm runs COST eviction plus periodic controller budget
partitioning over the same network-wide entry budget.

Every sweep point runs inside its own fresh observability context and
returns plain scalars, so ``--jobs N`` is byte-identical to serial
structurally: worker-side registries stay empty and the merge is a
no-op.  The scaled-down configuration is pinned as a golden.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.series import Series
from repro.core.controller import DifaneNetwork
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.obs import context as _obs_context
from repro.obs import fresh_run_context
from repro.obs.flowtrace import FlowTraceAnalysis
from repro.switch.cache import EvictionPolicy
from repro.workloads.streaming import (
    StreamSpec,
    epoch_bursts,
    streaming_policy,
    streaming_topology,
)

__all__ = ["run_caching_ablation", "WORKLOADS", "POLICIES"]

LAYOUT = FIVE_TUPLE_LAYOUT

#: Workload variants: StreamSpec overrides per traffic shape.
WORKLOADS: Dict[str, Dict[str, object]] = {
    "zipf-steady": dict(flash_every_epochs=0, mobility_rate=0.0),
    "flash-crowd": dict(
        flash_every_epochs=12, flash_length_epochs=6,
        flash_hotset_size=32, flash_share=0.6, mobility_rate=0.0,
    ),
    "mobility-churn": dict(flash_every_epochs=0, mobility_rate=0.3),
}

#: Ablation arms: eviction policy plus its management knobs.
POLICIES = ("lru", "fifo", "random", "idle", "cost")


def _ablation_point(
    workload: str,
    policy: str,
    capacity: int,
    hosts: int,
    edge_switches: int,
    epochs: int,
    burst_size: int,
    rules_per_switch: int,
    alpha: float,
    seed: int,
    idle_epochs: int,
    cost_tau_epochs: int,
    budget_every_epochs: int,
    engine: str,
) -> Dict[str, object]:
    """One sweep point: a full event-driven soak at one (workload, policy,
    capacity) combination, returning plain scalars.

    The point installs its own fresh observability context (trace on, for
    the miss-penalty CDF) and restores the ambient one afterwards, so the
    caller's registry/telemetry never see point-local state — in workers
    and in the serial path alike.
    """
    spec = StreamSpec(
        hosts=hosts,
        edge_switches=edge_switches,
        epochs=epochs,
        burst_size=burst_size,
        rules_per_switch=rules_per_switch,
        alpha=alpha,
        seed=seed,
        **WORKLOADS[workload],
    )
    eviction = {
        "lru": EvictionPolicy.LRU,
        "fifo": EvictionPolicy.FIFO,
        "random": EvictionPolicy.RANDOM,
        "idle": EvictionPolicy.LRU,
        "cost": EvictionPolicy.COST,
    }[policy]
    idle_timeout = (
        idle_epochs * spec.epoch_interval_s if policy == "idle" else None
    )
    cache_options = (
        {"cost_tau": cost_tau_epochs * spec.epoch_interval_s}
        if policy == "cost"
        else None
    )
    previous = _obs_context.current()
    fresh_run_context(trace=True)
    try:
        topo = streaming_topology(spec)
        rules = streaming_policy(spec, LAYOUT)
        dn = DifaneNetwork.build(
            topo,
            rules,
            LAYOUT,
            authority_switches=spec.authority_names(),
            cache_capacity=capacity,
            idle_timeout=idle_timeout,
            eviction=eviction,
            loss_seed=seed,
            engine=engine,
            cache_options=cache_options,
        )
        scheduler = dn.network.scheduler
        for epoch in range(spec.epochs):
            when = spec.start_time + epoch * spec.epoch_interval_s
            scheduler.schedule_at(when, _feed_epoch, dn, spec, epoch)
        budgets: Dict[str, int] = {}
        if policy == "cost" and budget_every_epochs > 0:
            total = capacity * len(dn.network.topology.switches())
            for epoch in range(budget_every_epochs, spec.epochs,
                               budget_every_epochs):
                # Fire between epochs so the repartition sees the traffic
                # of the completed epoch and never races a burst event.
                when = spec.start_time + (epoch - 0.5) * spec.epoch_interval_s
                scheduler.schedule_at(
                    when, _apply_budgets, dn, total, budgets
                )
        dn.run()

        switches = dn.switches()
        hits = sum(s.cache_hits for s in switches)
        local = sum(s.authority_hits for s in switches)
        misses = sum(s.redirects_out for s in switches)
        total_cls = hits + local + misses
        analysis = FlowTraceAnalysis.from_tracer(dn.network.tracer)
        summary = analysis.summary()
        breakdown = {"evicted": 0, "expired": 0, "invalidated": 0}
        for switch in switches:
            for key, value in switch.cache.eviction_breakdown().items():
                breakdown[key] += value
        return {
            "delivered": int(
                _obs_context.current().metrics.sum_counters(
                    "packets_delivered_total"
                )
            ),
            "miss_rate": (misses / total_cls) if total_cls else 0.0,
            "cache_hit_rate": dn.cache_hit_rate(),
            "miss_penalty_p50_ms": summary["miss_penalty_p50_ms"],
            "miss_penalty_p99_ms": summary["miss_penalty_p99_ms"],
            "miss_penalty_samples": summary["miss_penalty_samples"],
            "authority_redirects": dn.total_redirects(),
            "installs_sent": sum(s.cache_installs_sent for s in switches),
            "install_batches_sent": sum(
                s.cache_install_batches_sent for s in switches
            ),
            "installs_received": sum(
                s.cache_installs_received for s in switches
            ),
            "evicted_capacity": breakdown["evicted"],
            "expired": breakdown["expired"],
            "invalidated": breakdown["invalidated"],
            "budgets": {name: budgets[name] for name in sorted(budgets)},
        }
    finally:
        _obs_context.install(previous)


def _feed_epoch(dn: DifaneNetwork, spec: StreamSpec, epoch: int) -> None:
    """Generate and enqueue epoch ``epoch``'s bursts (lazy feeder event)."""
    for timed in epoch_bursts(spec, epoch, LAYOUT):
        dn.send_batch_at(timed.time, timed.switch, timed.batch)


def _apply_budgets(dn: DifaneNetwork, total: int, sink: Dict[str, int]) -> None:
    """Repartition the network-wide cache budget from measured load."""
    sink.clear()
    sink.update(dn.controller.partition_cache_budgets(total_budget=total))


def run_caching_ablation(
    workloads: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    capacities: Sequence[int] = (16, 32),
    hosts: int = 1024,
    edge_switches: int = 2,
    epochs: int = 24,
    burst_size: int = 32,
    rules_per_switch: int = 16,
    alpha: float = 1.0,
    seed: int = 0,
    idle_epochs: int = 8,
    cost_tau_epochs: int = 8,
    budget_every_epochs: int = 8,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep eviction policy × capacity under streaming traffic shapes.

    See the module docstring for what each point measures.  The default
    configuration is the golden-pinned scale; the CLI's non-quick run
    uses a larger one.
    """
    from repro.parallel.runner import SweepRunner

    engine = resolve_engine(engine)
    workloads = list(workloads) if workloads is not None else list(WORKLOADS)
    policies = list(policies) if policies is not None else list(POLICIES)
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(f"unknown workload {workload!r}")
    for policy in policies:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")

    points = [
        dict(workload=workload, policy=policy, capacity=capacity,
             hosts=hosts, edge_switches=edge_switches, epochs=epochs,
             burst_size=burst_size, rules_per_switch=rules_per_switch,
             alpha=alpha, seed=seed, idle_epochs=idle_epochs,
             cost_tau_epochs=cost_tau_epochs,
             budget_every_epochs=budget_every_epochs, engine=engine)
        for workload in workloads
        for policy in policies
        for capacity in capacities
    ]
    results = SweepRunner(jobs).map(_ablation_point, points)

    series: List[Series] = []
    by_key: Dict[str, Dict[str, object]] = {}
    rows: List[List[object]] = []
    for params, stats in zip(points, results):
        key = f"{params['workload']}|{params['policy']}|{params['capacity']}"
        by_key[key] = stats
        rows.append([
            params["workload"],
            params["policy"],
            params["capacity"],
            f"{stats['miss_rate']:.4f}",
            _ms(stats["miss_penalty_p50_ms"]),
            _ms(stats["miss_penalty_p99_ms"]),
            stats["installs_sent"],
            stats["evicted_capacity"],
            stats["expired"],
        ])
    for workload in workloads:
        for policy in policies:
            curve = Series(
                f"{workload}/{policy}",
                x_label="cache capacity (entries/switch)",
                y_label="miss rate",
            )
            for capacity in capacities:
                stats = by_key[f"{workload}|{policy}|{capacity}"]
                curve.append(capacity, stats["miss_rate"])
            series.append(curve)

    # The headline claim, summarized per workload: capacities where the
    # cost arm's miss rate undercuts LRU's.
    cost_vs_lru: Dict[str, Dict[str, float]] = {}
    if "cost" in policies and "lru" in policies:
        for workload in workloads:
            wins = {}
            for capacity in capacities:
                lru = by_key[f"{workload}|lru|{capacity}"]["miss_rate"]
                cost = by_key[f"{workload}|cost|{capacity}"]["miss_rate"]
                wins[str(capacity)] = round(lru - cost, 6)
            cost_vs_lru[workload] = wins

    notes: Dict[str, object] = {
        "workloads": workloads,
        "policies": policies,
        "capacities": list(capacities),
        "hosts": hosts,
        "edge_switches": edge_switches,
        "epochs": epochs,
        "burst_size": burst_size,
        "rules_per_switch": rules_per_switch,
        "alpha": alpha,
        "seed": seed,
        "idle_epochs": idle_epochs,
        "cost_tau_epochs": cost_tau_epochs,
        "budget_every_epochs": budget_every_epochs,
        "engine": engine,
        "points": by_key,
        "cost_minus_lru_miss_rate": cost_vs_lru,
    }
    return ExperimentResult(
        name="E8-caching-ablation",
        title="Caching ablation: eviction policy × capacity under streaming traffic",
        series=series,
        table_headers=[
            "workload", "policy", "capacity", "miss rate",
            "penalty p50", "penalty p99", "installs", "evicted", "expired",
        ],
        table_rows=rows,
        notes=notes,
    )


def _ms(value) -> str:
    return "-" if value is None else f"{value:.3f}ms"
