"""E9 — per-class QoS SLO protection under flash-crowd overload.

The per-class observability layer (:mod:`repro.obs.qos`) only earns its
keep if the protection knobs it exposes actually move the SLOs it
measures.  This experiment pins that end to end: a flash-crowd streaming
workload (the E8 configuration) with a **gold** flow class — the first
address slice of every edge switch, squarely under the Zipf head — and a
best-effort remainder, swept over three protection modes:

* ``off`` — classification and SLO monitoring only; gold competes for
  cache residency and redirect capacity like everyone else.  The flash
  crowd evicts gold's cache rules, its miss rate blows through the SLO
  target, and the burn-rate detectors emit ``slo-burn`` /
  ``slo-exhausted`` findings — the *observability* half of the claim.
* ``reserved`` — gold gets a class-weighted COST score and a reserved
  share of every ingress cache (entries inside the reservation are never
  evicted by best-effort installs).  Gold's miss rate stays under
  target; its error budget survives the flashes.
* ``reserved+admission`` — additionally, once the authority redirect
  queue is deeper than the admission threshold, best-effort redirects
  are shed on arrival (exact ``admission-control`` drop attribution)
  instead of queueing ahead of gold.

Every sweep point runs inside its own fresh observability context with
its own QoS policy installed (and cleared in the ``finally``), so
``--jobs N`` is byte-identical to serial and the ambient registry never
sees point-local state.  The scaled-down configuration is pinned as a
golden: gold holding its SLO under ``reserved`` while missing it under
``off`` is a regression-guarded property of the repo.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.series import Series
from repro.core.controller import DifaneNetwork
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.rule import Match
from repro.flowspace.ternary import Ternary
from repro.obs import context as _obs_context
from repro.obs import fresh_run_context
from repro.obs.qos import FlowClass, FlowClassifier, QosPolicy, SloSpec, set_qos
from repro.obs.telemetry import telemetry_section
from repro.switch.cache import EvictionPolicy
from repro.workloads.streaming import (
    BASE_ADDRESS,
    StreamSpec,
    epoch_bursts,
    streaming_policy,
    streaming_topology,
)

__all__ = ["run_qos_slo", "MODES"]

LAYOUT = FIVE_TUPLE_LAYOUT

#: Protection modes, in escalation order.
MODES = ("off", "reserved", "reserved+admission")


def _gold_classes(
    spec: StreamSpec, protection: bool, weight: float, reserved: float,
    gold_slice: int,
) -> List[FlowClass]:
    """One ``gold`` class per edge switch: address slice ``gold_slice``.

    Deliberately *not* slice 0: the Zipf head is so hot its cache entries
    protect themselves under any eviction policy, which would make every
    protection mode measure identically.  A premium class needs explicit
    protection exactly when its traffic is steady but not dominant —
    slice 1 (roughly the second-ranked fragment by aggregate Zipf share)
    stays resident in quiet periods yet loses the cache race against a
    flash crowd, so the protection knobs are what decide its SLO.
    """
    slice_bits = spec.host_bits - (spec.rules_per_switch - 1).bit_length()
    classes: List[FlowClass] = []
    for switch in range(spec.edge_switches):
        block = BASE_ADDRESS | (switch << spec.host_bits)
        value = block | (gold_slice << slice_bits)
        match = Match(
            LAYOUT,
            LAYOUT.pack_match(
                nw_dst=Ternary.from_prefix(value, 32 - slice_bits, 32)
            ),
        )
        classes.append(FlowClass(
            "gold",
            match,
            weight=weight if protection else 1.0,
            reserved_fraction=reserved if protection else 0.0,
            protected=protection,
        ))
    return classes


def _qos_point(
    mode: str,
    hosts: int,
    edge_switches: int,
    epochs: int,
    burst_size: int,
    rules_per_switch: int,
    alpha: float,
    seed: int,
    capacity: int,
    cost_tau_epochs: int,
    redirect_rate: float,
    redirect_queue: int,
    admission_threshold: int,
    gold_weight: float,
    gold_reserved: float,
    gold_slice: int,
    miss_rate_target: float,
    latency_target_s: float,
    telemetry_interval_s: float,
    engine: str,
) -> Dict[str, object]:
    """One sweep point: a flash-crowd soak at one protection mode.

    Installs its own fresh observability context *and* QoS policy, and
    clears both afterwards — workers never inherit the policy, so the
    serial and ``--jobs N`` paths construct identical state.
    """
    spec = StreamSpec(
        hosts=hosts,
        edge_switches=edge_switches,
        epochs=epochs,
        burst_size=burst_size,
        rules_per_switch=rules_per_switch,
        alpha=alpha,
        seed=seed,
        flash_every_epochs=12,
        flash_length_epochs=6,
        flash_hotset_size=64,
        flash_share=0.8,
        mobility_rate=0.0,
    )
    protection = mode != "off"
    policy = QosPolicy(
        classifier=FlowClassifier(
            _gold_classes(
                spec, protection, gold_weight, gold_reserved, gold_slice
            )
        ),
        slos=[
            SloSpec(
                "gold",
                latency_target_s=latency_target_s,
                latency_quantile=0.99,
                miss_rate_target=miss_rate_target,
                delivery_target=0.99,
                budget=0.1,
            ),
            SloSpec("best-effort", delivery_target=0.95, budget=0.25),
        ],
        admission_threshold=(
            admission_threshold if mode == "reserved+admission" else None
        ),
    )
    previous = _obs_context.current()
    context = fresh_run_context(telemetry=telemetry_interval_s)
    set_qos(policy)
    try:
        context.telemetry.slo_specs = list(policy.slos)
        topo = streaming_topology(spec)
        rules = streaming_policy(spec, LAYOUT)
        dn = DifaneNetwork.build(
            topo,
            rules,
            LAYOUT,
            authority_switches=spec.authority_names(),
            cache_capacity=capacity,
            eviction=EvictionPolicy.COST,
            # A tau on the epoch scale: COST must *forget* — with the
            # default (1 s) tau the run is too short for flash traffic to
            # ever outscore the warm gold entries, and no mode differs.
            cache_options={
                "cost_tau": cost_tau_epochs * spec.epoch_interval_s
            },
            redirect_rate=redirect_rate,
            redirect_queue=redirect_queue,
            loss_seed=seed,
            engine=engine,
        )
        scheduler = dn.network.scheduler
        for epoch in range(spec.epochs):
            when = spec.start_time + epoch * spec.epoch_interval_s
            scheduler.schedule_at(when, _feed_epoch, dn, spec, epoch)
        dn.run()

        section = telemetry_section(context.telemetry)
        slo_findings = [
            finding for finding in section["findings"]
            if finding["detector"].startswith("slo-")
        ]
        switches = dn.switches()
        return {
            "mode": mode,
            "classes": section.get("classes", {}),
            "slo": section.get("slo", {}),
            "slo_findings": slo_findings,
            "windows": len(section.get("windows", [])),
            "redirects_shed": sum(s.redirects_shed for s in switches),
            "redirects_dropped": sum(s.redirects_dropped for s in switches),
            "delivered": int(
                context.metrics.sum_counters("packets_delivered_total")
            ),
        }
    finally:
        set_qos(None)
        _obs_context.install(previous)


def _feed_epoch(dn: DifaneNetwork, spec: StreamSpec, epoch: int) -> None:
    """Generate and enqueue epoch ``epoch``'s bursts (lazy feeder event)."""
    for timed in epoch_bursts(spec, epoch, LAYOUT):
        dn.send_batch_at(timed.time, timed.switch, timed.batch)


def run_qos_slo(
    modes: Optional[Sequence[str]] = None,
    hosts: int = 1024,
    edge_switches: int = 2,
    epochs: int = 36,
    burst_size: int = 32,
    rules_per_switch: int = 16,
    alpha: float = 1.0,
    seed: int = 0,
    capacity: int = 8,
    cost_tau_epochs: int = 4,
    redirect_rate: float = 200_000.0,
    redirect_queue: int = 64,
    admission_threshold: int = 8,
    gold_weight: float = 8.0,
    gold_reserved: float = 0.25,
    gold_slice: int = 1,
    miss_rate_target: float = 0.25,
    latency_target_s: float = 1e-3,
    telemetry_interval_s: float = 2e-3,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep QoS protection modes under the flash-crowd workload.

    See the module docstring for the three modes and what each pins.
    The default configuration is the golden-pinned scale.
    """
    from repro.parallel.runner import SweepRunner

    engine = resolve_engine(engine)
    modes = list(modes) if modes is not None else list(MODES)
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")

    points = [
        dict(mode=mode, hosts=hosts, edge_switches=edge_switches,
             epochs=epochs, burst_size=burst_size,
             rules_per_switch=rules_per_switch, alpha=alpha, seed=seed,
             capacity=capacity, cost_tau_epochs=cost_tau_epochs,
             redirect_rate=redirect_rate,
             redirect_queue=redirect_queue,
             admission_threshold=admission_threshold,
             gold_weight=gold_weight, gold_reserved=gold_reserved,
             gold_slice=gold_slice, miss_rate_target=miss_rate_target,
             latency_target_s=latency_target_s,
             telemetry_interval_s=telemetry_interval_s, engine=engine)
        for mode in modes
    ]
    results = SweepRunner(jobs).map(_qos_point, points)

    by_mode: Dict[str, Dict[str, object]] = {}
    rows: List[List[object]] = []
    series: List[Series] = []
    for params, stats in zip(points, results):
        mode = params["mode"]
        by_mode[mode] = stats
        for cls in sorted(stats["classes"]):
            traffic = stats["classes"][cls]
            slo = stats["slo"].get(cls, {})
            rows.append([
                mode,
                cls,
                f"{traffic['miss_rate']:.4f}"
                if traffic["miss_rate"] is not None else "-",
                f"{traffic['redirect_p99_s'] * 1e6:.0f}us"
                if traffic["redirect_p99_s"] is not None else "-",
                int(traffic["delivered"]),
                int(traffic["dropped"]),
                int(traffic["shed"]),
                slo.get("bad_windows", "-"),
                f"{slo['budget_remaining']:.2f}"
                if "budget_remaining" in slo else "-",
                sum(
                    1 for f in stats["slo_findings"]
                    if f"class {cls}:" in f["detail"]
                ),
            ])

    for cls in ("gold", "best-effort"):
        curve = Series(
            f"{cls} miss rate", x_label="protection mode", y_label="miss rate"
        )
        for index, mode in enumerate(modes):
            traffic = by_mode[mode]["classes"].get(cls)
            if traffic and traffic["miss_rate"] is not None:
                curve.append(index, traffic["miss_rate"])
        series.append(curve)

    # The headline: gold's SLO health per mode (the golden pins that the
    # budget survives exactly in the protected modes).
    gold_slo_by_mode = {
        mode: {
            "bad_windows": stats["slo"].get("gold", {}).get("bad_windows"),
            "budget_remaining": stats["slo"].get("gold", {}).get(
                "budget_remaining"
            ),
            "slo_findings": sum(
                1 for f in stats["slo_findings"] if "class gold:" in f["detail"]
            ),
        }
        for mode, stats in by_mode.items()
    }

    notes: Dict[str, object] = {
        "modes": modes,
        "hosts": hosts,
        "edge_switches": edge_switches,
        "epochs": epochs,
        "burst_size": burst_size,
        "rules_per_switch": rules_per_switch,
        "alpha": alpha,
        "seed": seed,
        "capacity": capacity,
        "cost_tau_epochs": cost_tau_epochs,
        "redirect_rate": redirect_rate,
        "redirect_queue": redirect_queue,
        "admission_threshold": admission_threshold,
        "gold_weight": gold_weight,
        "gold_reserved": gold_reserved,
        "gold_slice": gold_slice,
        "miss_rate_target": miss_rate_target,
        "latency_target_s": latency_target_s,
        "telemetry_interval_s": telemetry_interval_s,
        "engine": engine,
        "points": {mode: by_mode[mode] for mode in modes},
        "gold_slo_by_mode": gold_slo_by_mode,
    }
    return ExperimentResult(
        name="E9-qos-slo",
        title="Per-class QoS: SLO protection modes under flash crowds",
        series=series,
        table_headers=[
            "mode", "class", "miss rate", "p99 redirect", "delivered",
            "dropped", "shed", "bad windows", "budget left", "slo findings",
        ],
        table_rows=rows,
        notes=notes,
    )
