"""Ablation experiments beyond the paper's headline evaluation.

DESIGN.md commits to ablating the design choices the system makes; these
four quantify them:

* :func:`run_eviction_ablation` — LRU vs FIFO vs RANDOM cache eviction
  at the ingress switches (the paper assumes LRU-style behaviour);
* :func:`run_prefetch_ablation` — installing sibling win-region
  fragments per miss (an extension the paper leaves open);
* :func:`run_zipf_sensitivity` — how the wildcard-cache advantage moves
  with traffic skew;
* :func:`run_partition_granularity` — partitions per authority switch:
  finer partitions balance redirect load at the cost of split overhead.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.analysis.series import Series
from repro.baselines.microflow_cache import simulate_microflow_cache, simulate_wildcard_cache
from repro.core.controller import DifaneNetwork
from repro.core.partition import partition_policy
from repro.experiments.common import ExperimentResult
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.net.topology import TopologyBuilder
from repro.switch.cache import EvictionPolicy
from repro.workloads.classbench import generate_classbench
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.traffic import flow_headers_for_policy, host_pair_packets

__all__ = [
    "run_eviction_ablation",
    "run_prefetch_ablation",
    "run_zipf_sensitivity",
    "run_partition_granularity",
]

LAYOUT = FIVE_TUPLE_LAYOUT


def _campus_world(seed: int):
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=3, access_per_distribution=3,
        hosts_per_access=2,
    )
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, acl_rules=10, seed=seed)
    return topo, rules, host_ips


def _zipfish_traffic(topo, host_ips, flows: int, packets_per_flow: int, seed: int):
    """Repeating host-pair flows with skewed popularity (hot pairs recur)."""
    rng = random.Random(seed)
    base = host_pair_packets(
        topo, host_ips, LAYOUT, count=flows, rate=4000.0, seed=seed,
        flow_packets=packets_per_flow,
    )
    return base


def _eviction_point(
    policy: EvictionPolicy, cache_capacity: int, flows: int, seed: int
):
    """One sweep point: hit rate and evictions under one eviction policy."""
    topo, rules, host_ips = _campus_world(seed)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT, authority_count=3,
        cache_capacity=cache_capacity, redirect_rate=None, eviction=policy,
    )
    for timed in _zipfish_traffic(topo, host_ips, flows, 3, seed + 1):
        dn.send_at(timed.time, timed.source_host, timed.packet)
    dn.run()
    return dn.cache_hit_rate(), sum(s.cache.evicted for s in dn.switches())


def run_eviction_ablation(
    cache_capacity: int = 12,
    flows: int = 400,
    seed: int = 31,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Cache hit rate per eviction policy on a live campus deployment.

    The cache is deliberately undersized (``cache_capacity`` entries per
    switch) so eviction decisions matter.
    """
    from repro.parallel.runner import SweepRunner

    policies = (EvictionPolicy.LRU, EvictionPolicy.FIFO, EvictionPolicy.RANDOM)
    results = SweepRunner(jobs).map(
        _eviction_point,
        [
            dict(policy=policy, cache_capacity=cache_capacity,
                 flows=flows, seed=seed)
            for policy in policies
        ],
    )
    rows = []
    series = Series("cache hit rate", x_label="policy index", y_label="hit rate")
    for index, (policy, (hit_rate, evictions)) in enumerate(zip(policies, results)):
        rows.append([policy.value, f"{hit_rate:.4f}", evictions])
        series.append(index, hit_rate)
    return ExperimentResult(
        name="A1-eviction",
        title=f"Cache eviction ablation ({cache_capacity}-entry ingress caches)",
        series=[series],
        table_headers=["eviction policy", "cache hit rate", "evictions"],
        table_rows=rows,
    )


def _prefetch_point(level: int, flows: int, seed: int):
    """One sweep point: redirect/install volume at one prefetch level."""
    topo, rules, host_ips = _campus_world(seed)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT, authority_count=3, cache_capacity=512,
        redirect_rate=None, prefetch_fragments=level,
    )
    # Traffic clustered around the denied service ports: win-region
    # fragments are tiny there, so flows of one (ingress, destination)
    # pair land in *different* fragments — the case where prefetching
    # siblings can convert future redirects into cache hits.
    rng = random.Random(seed + 2)
    hosts = sorted(host_ips)
    # Destinations must actually have port denies, else their win
    # regions are single fragments and prefetch is vacuous.
    denied_ips = {
        rule.match.field("nw_dst").value
        for rule in rules
        if rule.actions.is_drop and not rule.match.ternary.is_wildcard()
    }
    destinations = [h for h in hosts if host_ips[h] in denied_ips][:3]
    if not destinations:
        destinations = hosts[:3]
    services = [22, 445, 3306, 23, 161]
    from repro.flowspace.packet import Packet
    for index in range(flows):
        src = rng.choice(hosts)
        dst = rng.choice(destinations)
        port = max(1, rng.choice(services) + rng.randint(-8, 8))
        packet = Packet.from_fields(
            LAYOUT, flow_id=index,
            nw_src=host_ips[src], nw_dst=host_ips[dst], nw_proto=6,
            tp_src=rng.randint(1024, 65535),
            tp_dst=port,
        )
        dn.send_at(index * 2.5e-4, src, packet)
    dn.run()
    total_redirects = dn.total_redirects()
    total_installs = sum(s.cache_installs_sent for s in dn.switches())
    return total_redirects, total_installs, dn.cache_hit_rate()


def run_prefetch_ablation(
    prefetch_levels: Optional[Sequence[int]] = None,
    flows: int = 250,
    seed: int = 37,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Redirect count and install volume as prefetch grows.

    Prefetching sibling fragments converts future misses into hits at the
    cost of extra installs (and cache pressure).
    """
    from repro.parallel.runner import SweepRunner

    prefetch_levels = list(prefetch_levels) if prefetch_levels else [1, 2, 4, 8]
    redirects = Series("redirects", x_label="prefetch fragments", y_label="count")
    installs = Series("cache installs", x_label="prefetch fragments", y_label="count")
    hit_rates = Series("hit rate", x_label="prefetch fragments", y_label="rate")
    rows = []
    results = SweepRunner(jobs).map(
        _prefetch_point,
        [dict(level=level, flows=flows, seed=seed) for level in prefetch_levels],
    )
    for level, (total_redirects, total_installs, hit_rate) in zip(
        prefetch_levels, results
    ):
        redirects.append(level, total_redirects)
        installs.append(level, total_installs)
        hit_rates.append(level, hit_rate)
        rows.append([level, total_redirects, total_installs, f"{hit_rate:.4f}"])
    return ExperimentResult(
        name="A2-prefetch",
        title="Prefetching sibling cache fragments",
        series=[redirects, installs, hit_rates],
        table_headers=["prefetch", "redirects", "installs", "hit rate"],
        table_rows=rows,
    )


def _zipf_point(
    alpha: float, cache_size: int, n_flows: int, n_packets: int, seed: int
):
    """One sweep point: both cache simulators at one traffic skew.

    The policy and packet sequence come from the artifact cache keyed by
    their generating parameters — a memory hit per point in the serial
    path, one build per worker process in the parallel path.
    """
    from repro.parallel.cache import classbench_ruleset, zipf_packet_sequence

    policy_params = {"profile": "acl", "count": 1000, "seed": seed}
    policy = classbench_ruleset(layout=LAYOUT, **policy_params)
    sequence = zipf_packet_sequence(
        policy_params, LAYOUT, n_flows, seed + 1, n_packets, alpha, seed + 2
    )
    w = simulate_wildcard_cache(policy, LAYOUT, sequence, cache_size)
    m = simulate_microflow_cache(policy, LAYOUT, sequence, cache_size)
    return w.miss_rate, m.miss_rate


def run_zipf_sensitivity(
    alphas: Optional[Sequence[float]] = None,
    cache_size: int = 100,
    n_flows: int = 1500,
    n_packets: int = 15_000,
    seed: int = 41,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Wildcard vs microflow miss rate across traffic skews."""
    from repro.parallel.runner import SweepRunner

    alphas = list(alphas) if alphas else [0.6, 0.8, 1.0, 1.2]
    wildcard = Series("DIFANE wildcard cache", x_label="zipf alpha", y_label="miss rate")
    microflow = Series("microflow cache", x_label="zipf alpha", y_label="miss rate")
    rows = []
    results = SweepRunner(jobs).map(
        _zipf_point,
        [
            dict(alpha=alpha, cache_size=cache_size, n_flows=n_flows,
                 n_packets=n_packets, seed=seed)
            for alpha in alphas
        ],
    )
    for alpha, (w_miss, m_miss) in zip(alphas, results):
        wildcard.append(alpha, w_miss)
        microflow.append(alpha, m_miss)
        rows.append([alpha, f"{w_miss:.4f}", f"{m_miss:.4f}"])
    return ExperimentResult(
        name="A3-zipf",
        title=f"Traffic-skew sensitivity ({cache_size}-entry cache)",
        series=[wildcard, microflow],
        table_headers=["zipf alpha", "wildcard miss", "microflow miss"],
        table_rows=rows,
    )


def run_partition_granularity(
    per_authority: Optional[Sequence[int]] = None,
    authority_count: int = 4,
    seed: int = 43,
) -> ExperimentResult:
    """Finer partitions balance authority load at a split-overhead cost.

    Measured analytically: partition a ClassBench policy with
    ``authority_count × g`` leaves, assign to switches, then estimate each
    switch's share of redirect load by sampling random flow headers.
    """
    per_authority = list(per_authority) if per_authority else [1, 2, 4, 8]
    from repro.core.partition import assign_partitions

    policy = generate_classbench("acl", count=1000, seed=seed, layout=LAYOUT)
    flows = flow_headers_for_policy(policy, 3000, seed=seed + 1)
    imbalance = Series(
        "load imbalance (max/mean)", x_label="partitions per authority",
        y_label="ratio",
    )
    overhead = Series(
        "duplication factor", x_label="partitions per authority", y_label="factor"
    )
    rows = []
    names = [f"auth{i}" for i in range(authority_count)]
    for granularity in per_authority:
        result = partition_policy(
            policy, LAYOUT, num_partitions=authority_count * granularity
        )
        assignment = assign_partitions(result.partitions, names)
        load = {name: 0 for name in names}
        for bits in flows:
            partition = result.find_partition(bits)
            load[assignment[partition.partition_id][0]] += 1
        mean_load = sum(load.values()) / len(load)
        ratio = max(load.values()) / mean_load if mean_load else 1.0
        imbalance.append(granularity, ratio)
        overhead.append(granularity, result.duplication_factor)
        rows.append([
            granularity, f"{ratio:.3f}", f"{result.duplication_factor:.3f}",
            result.max_partition_entries,
        ])
    return ExperimentResult(
        name="A4-granularity",
        title="Partitions per authority switch: balance vs split overhead",
        series=[imbalance, overhead],
        table_headers=["partitions/authority", "load imbalance",
                       "dup factor", "max entries/partition"],
        table_rows=rows,
    )
