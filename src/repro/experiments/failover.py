"""A6 — failover transient: authority switch death under live traffic.

Paper §4.3: partitions are replicated, and the partition rules at every
ingress switch list the backups, so when a primary authority switch dies
the ingress switches fail over **in the data plane**.  The alternative —
no replication, controller-driven recovery — loses every redirected
packet between the failure and the controller's repair.

This experiment runs steady traffic (cache disabled, so every packet
takes the authority path), kills the primary mid-run, and measures the
delivered-rate timeline and packet loss for both designs:

* ``replicated``: replication=2, pure data-plane failover, the controller
  is never involved;
* ``controller-repair``: replication=1; the controller notices after a
  detection delay and re-points partitions to a surviving switch.

The controller's detection delay comes in two modes.  ``scheduled`` (the
default, and the original behaviour) hands the controller the failure at
``failure_time + detection_delay_s`` exactly.  ``heartbeat`` attaches a
real control plane instead: authority switches emit heartbeats and a
:class:`~repro.core.controller.HeartbeatMonitor` declares the switch
dead after ``miss_threshold`` silent intervals — the detection latency
is then an emergent quantity (≈ ``miss_threshold × heartbeat_interval_s``
plus phase and channel latency) and is reported in the notes along with
the control-channel delivery breakdown.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.analysis.series import Series
from repro.analysis.timeline import rate_timeline
from repro.core.controller import DifaneNetwork
from repro.experiments.common import ExperimentResult
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.packet import Packet
from repro.net.failures import FailureInjector
from repro.net.topology import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

__all__ = ["run_failover_transient"]

LAYOUT = FIVE_TUPLE_LAYOUT


def _run_one(
    replication: int,
    detection_delay_s: Optional[float],
    rate: float,
    duration: float,
    failure_time: float,
    seed: int,
    heartbeat_interval_s: Optional[float] = None,
    miss_threshold: int = 3,
):
    """One run; returns (network facade, injector)."""
    topo = TopologyBuilder.star(4, hosts_per_leaf=1)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, seed=seed)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_switches=["s0", "s1"],
        replication=replication,
        partitions_per_authority=2,
        cache_capacity=0,
        redirect_rate=None,
    )
    injector = FailureInjector(dn.network)
    injector.fail_switch_at(failure_time, "s0")
    if heartbeat_interval_s is not None:
        # Emergent detection: the monitor notices the silence on its own.
        dn.controller.connect_control_plane(
            heartbeat_interval_s=heartbeat_interval_s,
            miss_threshold=miss_threshold,
            max_retries=None,
        )
    elif detection_delay_s is not None:
        dn.network.scheduler.schedule_at(
            failure_time + detection_delay_s,
            dn.controller.handle_authority_failure,
            "s0",
        )

    rng = random.Random(seed + 1)
    hosts = [h for h in sorted(host_ips) if topo.host_attachment(h) not in ("s0",)]
    count = int(rate * duration)
    for index in range(count):
        src = hosts[index % len(hosts)]
        dst = rng.choice([h for h in hosts if h != src])
        packet = Packet.from_fields(
            LAYOUT, flow_id=index,
            nw_src=rng.getrandbits(32), nw_dst=host_ips[dst], nw_proto=6,
            tp_src=rng.randint(1024, 65535), tp_dst=80,
        )
        dn.send_at(index / rate, src, packet)
    if heartbeat_interval_s is not None:
        # Heartbeat timers keep the event loop alive forever; bound the
        # run, leaving room for post-traffic detection to complete.
        dn.run(until=duration + (miss_threshold + 2) * heartbeat_interval_s)
    else:
        dn.run()
    return dn, injector


def run_failover_transient(
    rate: float = 5_000.0,
    duration: float = 0.4,
    failure_time: float = 0.2,
    detection_delay_s: float = 0.05,
    bin_width_s: float = 0.02,
    seed: int = 47,
    detection_mode: str = "scheduled",
    heartbeat_interval_s: float = 0.02,
    miss_threshold: int = 3,
) -> ExperimentResult:
    """Compare data-plane failover against controller-driven repair.

    ``detection_mode="scheduled"`` (default) uses the hand-scheduled
    ``detection_delay_s``; ``"heartbeat"`` detects the failure via the
    heartbeat monitor and reports the emergent latency instead.
    """
    if detection_mode not in ("scheduled", "heartbeat"):
        raise ValueError(f"unknown detection_mode {detection_mode!r}")
    heartbeats = detection_mode == "heartbeat"
    replicated, _ = _run_one(
        replication=2, detection_delay_s=None,
        rate=rate, duration=duration, failure_time=failure_time, seed=seed,
    )
    repaired, _ = _run_one(
        replication=1,
        detection_delay_s=None if heartbeats else detection_delay_s,
        rate=rate, duration=duration, failure_time=failure_time, seed=seed,
        heartbeat_interval_s=heartbeat_interval_s if heartbeats else None,
        miss_threshold=miss_threshold,
    )

    series: List[Series] = []
    rows = []
    for label, dn in (("data-plane failover", replicated),
                      ("controller repair", repaired)):
        timeline = rate_timeline(dn.network.deliveries, bin_width_s, label=label)
        series.append(timeline)
        drops = len(dn.network.dropped())
        failovers = sum(s.failovers for s in dn.switches())
        rows.append([
            label,
            len(dn.network.delivered()),
            drops,
            failovers,
            dn.controller.control_messages,
        ])

    result = ExperimentResult(
        name="A6-failover-transient",
        title="Authority failure under load: data-plane failover vs controller repair",
        series=series,
        table_headers=["design", "delivered", "dropped",
                       "data-plane failovers", "control msgs"],
        table_rows=rows,
    )
    notes = {
        "rate": rate,
        "failure_time": failure_time,
        "detection_delay_s": detection_delay_s,
        "replicated_drops": int(rows[0][2]),
        "repair_drops": int(rows[1][2]),
    }
    if heartbeats:
        monitor = repaired.controller.monitor
        detected = [t for t, s in monitor.detections if s == "s0"]
        notes["detection_mode"] = "heartbeat"
        notes["heartbeat_interval_s"] = heartbeat_interval_s
        notes["miss_threshold"] = miss_threshold
        notes["measured_detection_delay_s"] = (
            detected[0] - failure_time if detected else None
        )
        notes["control_counters"] = repaired.controller.control_plane_counters()
    result.notes = notes
    return result
