"""Experiment harness: one module per reproduced table/figure.

Every experiment exposes a ``run_*`` function that builds its workload,
exercises the system(s) and returns plain data (Series / table rows), plus
a ``render`` helper producing the text the benchmark prints.  See
EXPERIMENTS.md for the paper-claim ↔ measured-result index.

| Module          | Paper item | Claim |
|-----------------|-----------|-------|
| ``policies``    | Table 1   | workload characteristics |
| ``throughput``  | Fig. E2   | authority switch ≈800K flows/s vs NOX ≈50K |
| ``scaling``     | Fig. E3   | DIFANE setup throughput scales with k |
| ``delay``       | Fig. E4   | first-packet delay ≈0.4 ms vs ≈10 ms |
| ``partitioning``| Fig. E5/E6, E10 | TCAM per authority switch vs k; split overhead |
| ``caching``     | Fig. E7   | wildcard caching ≫ microflow caching |
| ``stretch``     | Fig. E8   | modest, placement-dependent stretch |
| ``dynamics``    | Table E9  | cost of policy churn / mobility / failover |
| ``failover``    | §4.3      | transient loss bounded by detection delay |
| ``chaos``       | §4.3 (C1) | invariants + attribution under composed faults |
| ``streaming``   | §4.4 (M1) | million-host soak in bounded RAM via sketches |
"""

from repro.experiments.common import CALIBRATION, ExperimentResult

__all__ = ["CALIBRATION", "ExperimentResult"]
