"""E7 — cache miss rate vs cache size: wildcard fragments vs microflows.

DIFANE caches *independent wildcard fragments*, so one cached entry covers
every flow in the fragment's region; an Ethane-style microflow cache burns
one entry per distinct 5-tuple.  Under Zipf traffic the fragment cache
therefore reaches a given miss rate with a far smaller TCAM.

The replay is trace-driven (no event simulation): one packet-header
sequence with Zipf flow popularity, pushed through both cache simulators
at each cache size.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import Series
from repro.baselines.microflow_cache import (
    simulate_microflow_cache,
    simulate_wildcard_cache,
)
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.rule import Rule
from repro.parallel.cache import classbench_ruleset, zipf_packet_sequence
from repro.workloads.traffic import flow_headers_for_policy, packet_sequence

__all__ = ["run_cache_miss"]

LAYOUT = FIVE_TUPLE_LAYOUT

#: Generating parameters of the default ClassBench policy (the artifact
#: cache's content address for it — and for the traffic derived from it).
_DEFAULT_POLICY_PARAMS = {"profile": "acl", "count": 1000, "seed": 3}


def _cache_point(
    size: int,
    policy: Optional[List[Rule]],
    sequence: Optional[List[int]],
    policy_params: Optional[Dict[str, Any]],
    n_flows: int,
    n_packets: int,
    zipf_alpha: float,
    seed: int,
    engine: str,
) -> Tuple[float, float, int, int]:
    """One sweep point: both cache simulators at one cache ``size``.

    When driven by generating parameters (``policy is None``) the policy
    and packet sequence come from the artifact cache — a memory hit in
    the serial path, one build per worker process in the parallel path.
    An explicit policy ships with the point instead.
    """
    if policy is None:
        policy = classbench_ruleset(layout=LAYOUT, **policy_params)
        sequence = zipf_packet_sequence(
            policy_params, LAYOUT, n_flows, seed, n_packets, zipf_alpha, seed + 1
        )
    w = simulate_wildcard_cache(policy, LAYOUT, sequence, size, engine=engine)
    c = simulate_wildcard_cache(
        policy, LAYOUT, sequence, size, engine=engine, eviction="cost"
    )
    m = simulate_microflow_cache(policy, LAYOUT, sequence, size, engine=engine)
    return w.miss_rate, c.miss_rate, m.miss_rate, w.installs, c.installs, m.installs


def run_cache_miss(
    policy: Optional[List[Rule]] = None,
    cache_sizes: Optional[Sequence[int]] = None,
    n_flows: int = 3000,
    n_packets: int = 30_000,
    zipf_alpha: float = 1.0,
    seed: int = 5,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep cache sizes; return miss-rate series for both cache kinds.

    Parameters mirror the paper's setup: a ClassBench-style ACL, flows
    drawn across the policy weighted by flow-space share, packet-level
    Zipf popularity over flows.  ``jobs`` fans the cache sizes out over
    worker processes with identical output.
    """
    from repro.parallel.runner import SweepRunner

    engine = resolve_engine(engine)
    policy_params: Optional[Dict[str, Any]] = None
    sequence: Optional[List[int]] = None
    if policy is None:
        policy_params = dict(_DEFAULT_POLICY_PARAMS)
        policy_size = len(classbench_ruleset(layout=LAYOUT, **policy_params))
    else:
        policy_size = len(policy)
        flows = flow_headers_for_policy(policy, n_flows, seed=seed)
        sequence = packet_sequence(flows, n_packets, alpha=zipf_alpha, seed=seed + 1)
    if cache_sizes is None:
        base = max(policy_size // 100, 1)
        cache_sizes = [base, 2 * base, 5 * base, 10 * base, 20 * base, 50 * base]

    point_policy = None if policy_params is not None else policy
    results = SweepRunner(jobs).map(
        _cache_point,
        [
            dict(size=size, policy=point_policy, sequence=sequence,
                 policy_params=policy_params, n_flows=n_flows,
                 n_packets=n_packets, zipf_alpha=zipf_alpha,
                 seed=seed, engine=engine)
            for size in cache_sizes
        ],
    )

    wildcard = Series(
        "DIFANE wildcard cache", x_label="cache size (entries)", y_label="miss rate"
    )
    cost = Series(
        "cost-aware wildcard cache", x_label="cache size (entries)",
        y_label="miss rate",
    )
    microflow = Series(
        "microflow cache", x_label="cache size (entries)", y_label="miss rate"
    )
    rows = []
    for size, point in zip(cache_sizes, results):
        w_miss, c_miss, m_miss, w_installs, c_installs, m_installs = point
        wildcard.append(size, w_miss)
        cost.append(size, c_miss)
        microflow.append(size, m_miss)
        rows.append([
            size,
            f"{w_miss:.4f}",
            f"{c_miss:.4f}",
            f"{m_miss:.4f}",
            w_installs,
            c_installs,
            m_installs,
        ])

    return ExperimentResult(
        name="E7-cache-miss",
        title="Cache miss rate vs cache size (Zipf traffic)",
        series=[wildcard, cost, microflow],
        table_headers=["cache size", "wildcard miss", "cost miss",
                       "microflow miss", "wildcard installs", "cost installs",
                       "microflow installs"],
        table_rows=rows,
        notes={
            "policy_size": policy_size,
            "flows": n_flows,
            "packets": n_packets,
            "zipf_alpha": zipf_alpha,
        },
    )
