"""E7 — cache miss rate vs cache size: wildcard fragments vs microflows.

DIFANE caches *independent wildcard fragments*, so one cached entry covers
every flow in the fragment's region; an Ethane-style microflow cache burns
one entry per distinct 5-tuple.  Under Zipf traffic the fragment cache
therefore reaches a given miss rate with a far smaller TCAM.

The replay is trace-driven (no event simulation): one packet-header
sequence with Zipf flow popularity, pushed through both cache simulators
at each cache size.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.series import Series
from repro.baselines.microflow_cache import (
    simulate_microflow_cache,
    simulate_wildcard_cache,
)
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.flowspace.rule import Rule
from repro.workloads.classbench import generate_classbench
from repro.workloads.traffic import flow_headers_for_policy, packet_sequence

__all__ = ["run_cache_miss"]

LAYOUT = FIVE_TUPLE_LAYOUT


def run_cache_miss(
    policy: Optional[List[Rule]] = None,
    cache_sizes: Optional[Sequence[int]] = None,
    n_flows: int = 3000,
    n_packets: int = 30_000,
    zipf_alpha: float = 1.0,
    seed: int = 5,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Sweep cache sizes; return miss-rate series for both cache kinds.

    Parameters mirror the paper's setup: a ClassBench-style ACL, flows
    drawn across the policy weighted by flow-space share, packet-level
    Zipf popularity over flows.
    """
    engine = resolve_engine(engine)
    if policy is None:
        policy = generate_classbench("acl", count=1000, seed=3, layout=LAYOUT)
    if cache_sizes is None:
        base = max(len(policy) // 100, 1)
        cache_sizes = [base, 2 * base, 5 * base, 10 * base, 20 * base, 50 * base]

    flows = flow_headers_for_policy(policy, n_flows, seed=seed)
    sequence = packet_sequence(flows, n_packets, alpha=zipf_alpha, seed=seed + 1)

    wildcard = Series(
        "DIFANE wildcard cache", x_label="cache size (entries)", y_label="miss rate"
    )
    microflow = Series(
        "microflow cache", x_label="cache size (entries)", y_label="miss rate"
    )
    rows = []
    for size in cache_sizes:
        w = simulate_wildcard_cache(policy, LAYOUT, sequence, size, engine=engine)
        m = simulate_microflow_cache(policy, LAYOUT, sequence, size, engine=engine)
        wildcard.append(size, w.miss_rate)
        microflow.append(size, m.miss_rate)
        rows.append([
            size,
            f"{w.miss_rate:.4f}",
            f"{m.miss_rate:.4f}",
            w.installs,
            m.installs,
        ])

    return ExperimentResult(
        name="E7-cache-miss",
        title="Cache miss rate vs cache size (Zipf traffic)",
        series=[wildcard, microflow],
        table_headers=["cache size", "wildcard miss", "microflow miss",
                       "wildcard installs", "microflow installs"],
        table_rows=rows,
        notes={
            "policy_size": len(policy),
            "flows": n_flows,
            "packets": n_packets,
            "zipf_alpha": zipf_alpha,
        },
    )
