"""The runnable network: topology + links + switches + event loop.

:class:`SimNetwork` owns the mechanics — link transmission, packet hand-off
between nodes, delivery/drop accounting, and control-message latency — and
stays policy-free.  Switch behaviour (DIFANE pipeline, NOX microflow table)
lives in node objects registered via :meth:`register_node`; each must
expose ``name`` and ``handle_packet(network, packet)``.

Forwarding convention
---------------------
Rule actions name *destinations*, not physical ports: ``Forward("h7")``
means "send toward host h7".  Switches resolve the next hop through the
network's routing table each time, so topology changes re-route cached
flows without touching rules — exactly the separation DIFANE argues for
(partitioning is topology-independent; reachability is link-state).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.flowspace.batch import PacketBatch, columnar_enabled
from repro.flowspace.packet import Packet
from repro.net.events import EventScheduler
from repro.net.links import Link
from repro.net.routing import RoutingTable, compute_routes
from repro.net.topology import Topology
from repro.obs import context as _obs_context
from repro.obs.attribution import attribute_reason
from repro.obs.qos import current_qos, delay_bucket
from repro.obs.trace import TraceKind

__all__ = ["SimNetwork", "DeliveryRecord"]

#: Fixed per-control-message processing overhead (encode/decode, handler).
CONTROL_OVERHEAD_S = 20e-6


class DeliveryRecord:
    """Outcome of one packet's trip through the network.

    One record is appended per packet — the hottest allocation after
    :class:`Packet` itself — so this is a ``__slots__`` class rather than
    a dataclass (no per-instance dict; see ``bench_perf_core``'s
    packet-struct micro-benchmark).
    """

    __slots__ = (
        "packet_id", "flow_id", "created_at", "finished_at", "delivered",
        "hops", "via_authority", "via_controller", "ingress_switch",
        "endpoint", "drop_reason",
    )

    def __init__(
        self,
        packet_id: int,
        flow_id: Optional[int],
        created_at: float,
        finished_at: float,
        delivered: bool,
        hops: int,
        via_authority: bool,
        via_controller: bool,
        ingress_switch: Optional[str],
        endpoint: Optional[str],
        drop_reason: Optional[str] = None,
    ):
        self.packet_id = packet_id
        self.flow_id = flow_id
        self.created_at = created_at
        self.finished_at = finished_at
        self.delivered = delivered
        self.hops = hops
        self.via_authority = via_authority
        self.via_controller = via_controller
        self.ingress_switch = ingress_switch
        self.endpoint = endpoint
        self.drop_reason = drop_reason

    @property
    def delay(self) -> float:
        """End-to-end latency in seconds (delivery or drop time)."""
        return self.finished_at - self.created_at

    def __repr__(self) -> str:
        outcome = "delivered" if self.delivered else f"dropped({self.drop_reason})"
        return (
            f"DeliveryRecord(packet_id={self.packet_id}, flow_id={self.flow_id}, "
            f"{outcome} at {self.endpoint} t={self.finished_at:.6f})"
        )


class _BatchBlock:
    """A recorded batch outcome awaiting per-packet materialization."""

    __slots__ = ("batch", "endpoint", "finished_at", "delivered", "drop_reason")

    def __init__(self, batch, endpoint, finished_at, delivered, drop_reason=None):
        self.batch = batch
        self.endpoint = endpoint
        self.finished_at = finished_at
        self.delivered = delivered
        self.drop_reason = drop_reason

    def materialize(self) -> List[DeliveryRecord]:
        batch = self.batch
        created_at = batch.created_at or 0.0
        ingress = batch.ingress_switch
        # tolist() converts each column to Python objects in one C pass;
        # per-element numpy indexing dominated the delivery hot path.
        return [
            DeliveryRecord(
                packet_id, flow_id, created_at, self.finished_at,
                self.delivered, hop, via_a, via_c, ingress,
                self.endpoint, self.drop_reason,
            )
            for packet_id, flow_id, hop, via_a, via_c in zip(
                batch.packet_ids.tolist(),
                batch.flow_ids.tolist(),
                batch.hops.tolist(),
                batch.via_authority.tolist(),
                batch.via_controller.tolist(),
            )
        ]


class DeliveryLog:
    """The network's outcome log — a lazy list of :class:`DeliveryRecord`.

    Scalar paths append records eagerly, exactly like the plain list this
    replaces.  The columnar path appends one :class:`_BatchBlock` per
    terminal batch and defers the per-packet row construction until the
    log is actually read (experiments read it once, after the run), so
    recording a delivered batch costs O(1) on the hot path.  Reads
    (``len``, iteration, indexing) flatten pending blocks in arrival
    order, preserving the exact rows eager recording would have produced.

    **Streaming mode** (:meth:`stream_into`) replaces retention entirely:
    every outcome is handed to an observer (scalar records via
    ``observer.record``, columnar blocks via ``observer.block``) and then
    forgotten, so a million-packet soak holds zero per-packet rows.  Only
    the outcome *count* survives (``len`` still works — ``SimNetwork``'s
    repr relies on it); per-packet reads raise, loudly, rather than
    return partial data.
    """

    __slots__ = ("_entries", "_dirty", "_observer", "_streamed")

    def __init__(self):
        self._entries: List[object] = []
        self._dirty = False
        self._observer = None
        self._streamed = 0

    def stream_into(self, observer) -> None:
        """Forward all future outcomes to ``observer``; retain nothing.

        The observer needs ``record(DeliveryRecord)`` and
        ``block(_BatchBlock)`` methods (:class:`DeliverySketchObserver`
        implements both).  Must be enabled before any outcome lands —
        retroactive streaming would silently split the log in two.
        """
        if self._entries:
            raise RuntimeError("cannot enable streaming on a non-empty delivery log")
        self._observer = observer

    def append(self, record: DeliveryRecord) -> None:
        if self._observer is not None:
            self._streamed += 1
            self._observer.record(record)
            return
        self._entries.append(record)

    def append_block(self, block: _BatchBlock) -> None:
        if self._observer is not None:
            self._streamed += len(block.batch)
            self._observer.block(block)
            return
        self._entries.append(block)
        self._dirty = True

    def _flush(self) -> List[DeliveryRecord]:
        if self._observer is not None:
            raise RuntimeError(
                "delivery log is streaming into an observer; "
                "per-packet records were not retained"
            )
        if self._dirty:
            flat: List[DeliveryRecord] = []
            for entry in self._entries:
                if type(entry) is _BatchBlock:
                    flat.extend(entry.materialize())
                else:
                    flat.append(entry)
            self._entries = flat
            self._dirty = False
        return self._entries

    def __len__(self) -> int:
        if self._observer is not None:
            return self._streamed
        return len(self._flush())

    def __iter__(self):
        return iter(self._flush())

    def __getitem__(self, index):
        return self._flush()[index]

    def __bool__(self) -> bool:
        return bool(self._entries) or self._streamed > 0

    def __repr__(self) -> str:
        return f"<DeliveryLog {len(self)} outcomes>"


class SimNetwork:
    """Bind a topology, its links, node behaviours and an event scheduler."""

    def __init__(
        self,
        topology: Topology,
        scheduler: Optional[EventScheduler] = None,
        loss_seed: int = 0,
        metrics=None,
        tracer=None,
        profiler=None,
        telemetry=None,
    ):
        self.topology = topology
        #: Observability surfaces: default to the active run context so
        #: every network built during one run reports into one registry
        #: (see :mod:`repro.obs.context`); pass explicit objects to
        #: isolate or disable (the overhead bench does both).
        context = _obs_context.current()
        self.metrics = metrics if metrics is not None else context.metrics
        self.tracer = tracer if tracer is not None else context.tracer
        self.profiler = profiler if profiler is not None else context.profiler
        self.telemetry = telemetry if telemetry is not None else context.telemetry
        self.scheduler = scheduler or EventScheduler(
            profiler=self.profiler, telemetry=self.telemetry
        )
        self.routes: RoutingTable = compute_routes(topology)
        #: Seed mixed into every link's private loss/jitter RNG.
        self.loss_seed = loss_seed
        self._nodes: Dict[str, object] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self.deliveries = DeliveryLog()
        self.control_messages_sent = 0
        # Hot-path metric children, bound once.
        self._m_injected = self.metrics.counter("packets_injected_total")
        self._m_delivered = self.metrics.counter("packets_delivered_total")
        self._m_control = self.metrics.counter("control_messages_total")
        self._m_dropped: Dict[str, object] = {}
        # Per-class QoS outcome accounting — only active when a policy is
        # installed (see repro.obs.qos); children bound lazily per class.
        self._qos = current_qos()
        self._q_delivered: Dict[str, object] = {}
        self._q_dropped: Dict[str, object] = {}
        self._q_delay: Dict[Tuple[str, str], object] = {}
        # Hot-path host membership: _arrive runs once per hop for every
        # packet, and the networkx role lookup it replaced was two dict
        # chases per call.  Refreshed on every topology change (all of
        # which funnel through rebuild_routes).
        self._hosts = self._host_set()
        self._build_links()

    # -- wiring ---------------------------------------------------------------
    def _make_link(self, a: str, b: str, spec) -> Link:
        return Link(
            a, b, spec, self.scheduler, self._arrive,
            on_loss=self._link_loss, seed=self.loss_seed,
            deliver_batch=self._arrive_batch,
        )

    def _build_links(self) -> None:
        for a, b, data in self.topology.graph.edges(data=True):
            spec = data["spec"]
            self._links[(a, b)] = self._make_link(a, b, spec)
            self._links[(b, a)] = self._make_link(b, a, spec)

    def register_node(self, node) -> None:
        """Attach a behaviour object for a switch node.

        ``node.name`` must be a switch in the topology; hosts are handled
        by the network itself (arrival = delivery).
        """
        if node.name not in self.topology.graph:
            raise KeyError(f"{node.name!r} is not in the topology")
        self._nodes[node.name] = node
        attach = getattr(node, "attach", None)
        if attach is not None:
            attach(self)

    def node(self, name: str):
        """The behaviour object registered for ``name``."""
        return self._nodes[name]

    def maybe_node(self, name: str):
        """The behaviour object for ``name``, or ``None`` when unregistered."""
        return self._nodes.get(name)

    def switch_alive(self, name: str) -> bool:
        """Liveness of a switch behaviour (unregistered counts as alive).

        The control plane's oracle view: chaos marks a killed switch's
        behaviour ``alive = False``, and the rebalancer / invariant
        checker consult this rather than duplicating the attribute walk.
        """
        behaviour = self._nodes.get(name)
        return behaviour is None or getattr(behaviour, "alive", True)

    def rebuild_routes(self) -> None:
        """Recompute routing after a topology change (link-state convergence).

        Also syncs the link objects: edges added to the topology (e.g. a
        host re-homing) gain links, removed edges lose them.  Packets
        already in flight on a removed link still arrive — exactly like a
        real wire draining.
        """
        current = set()
        for a, b, data in self.topology.graph.edges(data=True):
            current.add((a, b))
            current.add((b, a))
            for pair in ((a, b), (b, a)):
                if pair not in self._links:
                    self._links[pair] = self._make_link(pair[0], pair[1], data["spec"])
        for pair in [p for p in self._links if p not in current]:
            del self._links[pair]
        self.routes = compute_routes(self.topology)
        self._hosts = self._host_set()

    # -- packet movement -------------------------------------------------------
    def inject_from_host(self, host: str, packet: Packet) -> None:
        """Emit ``packet`` from ``host`` toward its attached switch, now."""
        packet.created_at = self.scheduler.now
        attachment = self.topology.host_attachment(host)
        packet.ingress_switch = attachment
        self._m_injected.inc()
        if self.tracer.enabled:
            self.tracer.record(self.scheduler.now, TraceKind.INGRESS, packet, node=host)
        self.transmit(host, attachment, packet)

    def inject_at_switch(self, switch: str, packet: Packet) -> None:
        """Hand ``packet`` directly to ``switch`` (saves the host hop)."""
        packet.created_at = self.scheduler.now
        packet.ingress_switch = switch
        self._m_injected.inc()
        if self.tracer.enabled:
            self.tracer.record(self.scheduler.now, TraceKind.INGRESS, packet, node=switch)
        self._arrive(switch, packet)

    def inject_burst_at_switch(self, switch: str, packets: List[Packet]) -> None:
        """Hand a same-instant burst directly to ``switch``.

        Flow-event workloads that emit many packets at one timestamp go
        through the behaviour's ``handle_burst`` (batched classification,
        see :meth:`MatchEngine.batch_lookup`) instead of paying per-packet
        dispatch; behaviours without burst support fall back to the
        per-packet path with identical outcomes.
        """
        now = self.scheduler.now
        self._m_injected.inc(len(packets))
        tracer = self.tracer
        for packet in packets:
            packet.created_at = now
            packet.ingress_switch = switch
            if tracer.enabled:
                tracer.record(now, TraceKind.INGRESS, packet, node=switch)
        behaviour = self._nodes.get(switch)
        if behaviour is None:
            for packet in packets:
                self.record_drop(packet, switch, "no behaviour registered")
            return
        if (
            columnar_enabled()
            and packets
            and hasattr(behaviour, "handle_batch")
            and self.fabric_is_clean()
            and not any(packet.is_encapsulated for packet in packets)
        ):
            # Columnar fast path: adopt the burst as a batch so the whole
            # trip downstream (classify, per-hop transit, delivery) moves
            # one batch per event instead of one packet per event.
            behaviour.handle_batch(self, PacketBatch.from_packets(packets))
            return
        burst = getattr(behaviour, "handle_burst", None)
        if burst is not None:
            burst(self, packets)
        else:
            for packet in packets:
                behaviour.handle_packet(self, packet)

    def inject_batch_at_switch(self, switch: str, batch: PacketBatch) -> None:
        """Hand a columnar same-instant batch directly to ``switch``.

        The batch-native analogue of :meth:`inject_burst_at_switch`.  With
        columnar mode off (or a behaviour without batch support) the batch
        is materialized and takes the scalar oracle path — identical
        packet ids, counters and outcomes.
        """
        behaviour = self._nodes.get(switch)
        if (
            not columnar_enabled()
            or behaviour is None
            or not hasattr(behaviour, "handle_batch")
            or not self.fabric_is_clean()
        ):
            self.inject_burst_at_switch(switch, batch.packets())
            return
        now = self.scheduler.now
        batch.created_at = now
        batch.ingress_switch = switch
        self._m_injected.inc(len(batch))
        if self.tracer.enabled:
            self.tracer.record_batch(now, TraceKind.INGRESS, batch.packets(), node=switch)
        behaviour.handle_batch(self, batch)

    def transmit(self, from_node: str, to_node: str, packet: Packet) -> None:
        """Send ``packet`` over the ``from_node`` → ``to_node`` link."""
        link = self._links.get((from_node, to_node))
        if link is None:
            self.record_drop(packet, from_node, f"no link {from_node}->{to_node}")
            return
        packet.hops += 1
        link.send(packet)

    def forward_toward(self, at_node: str, destination: str, packet: Packet) -> None:
        """Forward one hop along the shortest path to ``destination``."""
        if at_node == destination:
            self._arrive(destination, packet)
            return
        hop = self.routes.next_hop(at_node, destination)
        if hop is None:
            self.record_drop(packet, at_node, f"unreachable {destination}")
            return
        self.transmit(at_node, hop, packet)

    def transmit_batch(self, from_node: str, to_node: str, batch: PacketBatch) -> None:
        """Send a whole batch over the ``from_node`` → ``to_node`` link."""
        link = self._links.get((from_node, to_node))
        if link is None:
            self.record_drop_batch(batch, from_node, f"no link {from_node}->{to_node}")
            return
        batch.hops += 1
        link.send_batch(batch)

    def forward_batch_toward(
        self, at_node: str, destination: str, batch: PacketBatch
    ) -> None:
        """Forward a batch one hop along the shortest path to ``destination``.

        One routing lookup covers the whole batch (all packets share the
        location and destination), where the scalar path repeats it per
        packet with the same answer.
        """
        if at_node == destination:
            self._arrive_batch(destination, batch)
            return
        hop = self.routes.next_hop(at_node, destination)
        if hop is None:
            self.record_drop_batch(batch, at_node, f"unreachable {destination}")
            return
        self.transmit_batch(at_node, hop, batch)

    def fabric_is_clean(self) -> bool:
        """True when no live link draws randomness (no loss, no jitter).

        The columnar fast path engages only on a clean fabric: per-link
        loss/jitter draws happen in *processing order*, and batch
        classification regroups same-instant packets, so a faulty link
        would consume its RNG stream in a different order than the scalar
        oracle and lose different packets.  Fault runs therefore keep the
        per-packet path — bit-identical in either mode by construction.
        """
        for link in self._links.values():
            if link.loss_probability > 0.0 or link.jitter_s > 0.0:
                return False
        return True

    def _link_loss(self, link: Link, packet: Packet) -> None:
        """A lossy link ate ``packet``: attribute it distinctly from routing
        black-holes so timelines can separate loss from unreachability."""
        self.record_drop(
            packet, link.source, f"link loss {link.source}->{link.destination}"
        )

    def set_link_faults(
        self,
        a: str,
        b: str,
        loss_probability: Optional[float] = None,
        jitter_s: Optional[float] = None,
    ) -> None:
        """Override the live loss/jitter of both directions of ``a``–``b``.

        Used by chaos schedules for loss bursts; ``None`` leaves a
        parameter unchanged.  Raises ``KeyError`` when the link is down.
        """
        for pair in ((a, b), (b, a)):
            link = self._links[pair]
            if loss_probability is not None:
                link.loss_probability = loss_probability
            if jitter_s is not None:
                link.jitter_s = jitter_s

    def _host_set(self) -> frozenset:
        graph = self.topology.graph
        return frozenset(
            name for name, data in graph.nodes(data=True)
            if data.get("role") == "host"
        )

    def _arrive(self, node_name: str, packet: Packet) -> None:
        if node_name in self._hosts:
            self.record_delivery(packet, node_name)
            return
        behaviour = self._nodes.get(node_name)
        if behaviour is None:
            self.record_drop(packet, node_name, "no behaviour registered")
            return
        behaviour.handle_packet(self, packet)

    def _arrive_batch(self, node_name: str, batch: PacketBatch) -> None:
        if node_name in self._hosts:
            self.record_delivery_batch(batch, node_name)
            return
        behaviour = self._nodes.get(node_name)
        if behaviour is None:
            self.record_drop_batch(batch, node_name, "no behaviour registered")
            return
        handle_batch = getattr(behaviour, "handle_batch", None)
        if handle_batch is not None:
            handle_batch(self, batch)
            return
        for packet in batch.packets():
            behaviour.handle_packet(self, packet)

    # -- control-plane messaging ---------------------------------------------------
    def send_control(self, from_node: str, to_node: str, handler: Callable, *args) -> None:
        """Deliver a control message after routed latency plus overhead.

        Used for DIFANE's in-band cache installs (authority → ingress) and
        by the OpenFlow channel model for switch ↔ controller traffic.
        """
        distance = self.routes.distance(from_node, to_node)
        if distance == float("inf"):
            return
        self.control_messages_sent += 1
        self._m_control.inc()
        self.scheduler.schedule(distance + CONTROL_OVERHEAD_S, handler, *args)

    # -- accounting -------------------------------------------------------------------
    def _qos_outcome(
        self, header_bits: int, delivered: bool, via_authority: bool, delay: float
    ) -> None:
        """Per-class delivery/drop/latency accounting (QoS active only).

        Redirect latency is observed as a histogram bucket counter per
        class — bucket counts are integer, order-free and mergeable, so
        per-class quantiles survive the ``--jobs N`` byte-identity rule
        where a true per-sample quantile would not.  Only packets that
        actually crossed an authority (``via_authority``) land in the
        latency histogram: cache hits never paid a redirect.
        """
        cls = self._qos.classifier.classify_bits(header_bits)
        if delivered:
            child = self._q_delivered.get(cls)
            if child is None:
                child = self.metrics.counter("qos_delivered_total", flow_class=cls)
                self._q_delivered[cls] = child
            child.inc()
            if via_authority:
                label = delay_bucket(delay)
                key = (cls, label)
                bucket = self._q_delay.get(key)
                if bucket is None:
                    bucket = self.metrics.counter(
                        "qos_redirect_delay_bucket_total", flow_class=cls, le=label
                    )
                    self._q_delay[key] = bucket
                bucket.inc()
        else:
            child = self._q_dropped.get(cls)
            if child is None:
                child = self.metrics.counter("qos_dropped_total", flow_class=cls)
                self._q_dropped[cls] = child
            child.inc()

    def record_delivery(self, packet: Packet, endpoint: str) -> None:
        """Record a successful delivery at ``endpoint``."""
        self._m_delivered.inc()
        if self._qos is not None:
            self._qos_outcome(
                packet.header_bits, True, packet.via_authority,
                self.scheduler.now - (packet.created_at or 0.0),
            )
        if self.tracer.enabled:
            self.tracer.record(
                self.scheduler.now, TraceKind.DELIVERED, packet, node=endpoint
            )
        self.deliveries.append(
            DeliveryRecord(
                packet_id=packet.packet_id,
                flow_id=packet.flow_id,
                created_at=packet.created_at or 0.0,
                finished_at=self.scheduler.now,
                delivered=True,
                hops=packet.hops,
                via_authority=packet.via_authority,
                via_controller=packet.via_controller,
                ingress_switch=packet.ingress_switch,
                endpoint=endpoint,
            )
        )

    def record_drop(self, packet: Packet, where: str, reason: str) -> None:
        """Record a packet loss at ``where``."""
        if self._qos is not None:
            self._qos_outcome(packet.header_bits, False, packet.via_authority, 0.0)
        bucket = attribute_reason(reason)
        child = self._m_dropped.get(bucket)
        if child is None:
            child = self.metrics.counter("packets_dropped_total", reason=bucket)
            self._m_dropped[bucket] = child
        child.inc()
        if self.tracer.enabled:
            self.tracer.record(
                self.scheduler.now, TraceKind.DROPPED, packet, node=where, detail=reason
            )
        self.deliveries.append(
            DeliveryRecord(
                packet_id=packet.packet_id,
                flow_id=packet.flow_id,
                created_at=packet.created_at or 0.0,
                finished_at=self.scheduler.now,
                delivered=False,
                hops=packet.hops,
                via_authority=packet.via_authority,
                via_controller=packet.via_controller,
                ingress_switch=packet.ingress_switch,
                endpoint=where,
                drop_reason=reason,
            )
        )

    def record_delivery_batch(self, batch: PacketBatch, endpoint: str) -> None:
        """Record a whole batch delivered at ``endpoint``.

        The delivered counter takes one bulk increment (eagerly, so
        telemetry windows see it at the right instant); the per-packet
        :class:`DeliveryRecord` rows the delay and timeline analyses read
        are deferred — :class:`DeliveryLog` materializes them from the
        columns when the log is first read, off the hot path.
        """
        count = len(batch)
        self._m_delivered.inc(count)
        now = self.scheduler.now
        if self._qos is not None:
            delay = now - (batch.created_at or 0.0)
            for bits, via in zip(
                batch.header_bits_list(), batch.via_authority.tolist()
            ):
                self._qos_outcome(bits, True, via, delay)
        if self.tracer.enabled:
            self.tracer.record_batch(
                now, TraceKind.DELIVERED, batch.packets(), node=endpoint
            )
        self.deliveries.append_block(_BatchBlock(batch, endpoint, now, True))

    def record_drop_batch(self, batch: PacketBatch, where: str, reason: str) -> None:
        """Record a whole batch lost at ``where`` for one ``reason``."""
        count = len(batch)
        if self._qos is not None:
            for bits, via in zip(
                batch.header_bits_list(), batch.via_authority.tolist()
            ):
                self._qos_outcome(bits, False, via, 0.0)
        bucket = attribute_reason(reason)
        child = self._m_dropped.get(bucket)
        if child is None:
            child = self.metrics.counter("packets_dropped_total", reason=bucket)
            self._m_dropped[bucket] = child
        child.inc(count)
        now = self.scheduler.now
        if self.tracer.enabled:
            self.tracer.record_batch(
                now, TraceKind.DROPPED, batch.packets(), node=where, detail=reason
            )
        self.deliveries.append_block(_BatchBlock(batch, where, now, False, reason))

    # -- convenience --------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (see :meth:`EventScheduler.run`)."""
        return self.scheduler.run(until=until, max_events=max_events)

    def delivered(self) -> List[DeliveryRecord]:
        """All successful deliveries so far."""
        return [r for r in self.deliveries if r.delivered]

    def dropped(self) -> List[DeliveryRecord]:
        """All drops so far."""
        return [r for r in self.deliveries if not r.delivered]

    def link(self, a: str, b: str) -> Link:
        """The directional link object ``a`` → ``b``."""
        return self._links[(a, b)]

    def __repr__(self) -> str:
        return (
            f"<SimNetwork {len(self.topology.switches())} switches "
            f"t={self.scheduler.now:.6f}s {len(self.deliveries)} outcomes>"
        )
