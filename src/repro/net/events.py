"""Deterministic discrete-event scheduling.

Two pieces:

* :class:`EventScheduler` — a heap-based event loop with stable ordering
  (events at equal times fire in scheduling order), cancellation, and a
  bounded run.  All simulation time is in **seconds** (floats).
* :class:`ServiceStation` — a single-server FIFO queue with a fixed service
  rate and bounded queue, the canonical M/D/1-style building block.  The
  NOX controller's CPU (≈50 K flow setups/s) and a DIFANE authority
  switch's redirect capacity (≈800 K flows/s) are both modelled as service
  stations; saturation and loss behaviour — the core of the paper's
  throughput figures — fall out of the queueing dynamics rather than being
  hard-coded.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.obs import context as _obs_context

__all__ = ["EventScheduler", "ScheduledEvent", "ServiceStation"]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    ``kind`` distinguishes per-packet events (``"call"``) from
    burst-granular batch events (``"batch"``, one callback moving a whole
    :class:`~repro.flowspace.batch.PacketBatch`); the loop treats both
    identically — the kind exists so tooling and benchmarks can account
    how much of a run rode the columnar path.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "kind")

    def __init__(self, time: float, sequence: int, callback: Callable, args: Tuple):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.kind = "call"

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventScheduler:
    """A heap-based discrete-event loop.

    Determinism: events fire in ``(time, scheduling order)`` order, so two
    runs with the same inputs produce identical traces — property tests and
    benchmarks rely on this.
    """

    def __init__(self, profiler=None, telemetry=None):
        self._heap: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        #: Optional wall-time profiler; when enabled, each callback's
        #: duration lands in a per-callback stage histogram.  Defaults
        #: to the run context's profiler (a no-op unless profiling on).
        self.profiler = profiler if profiler is not None else _obs_context.current_profiler()
        #: Optional telemetry recorder; when enabled, the run loop closes
        #: a sampling window whenever an event crosses the next window
        #: boundary.  Defaults to the run context's recorder (disabled
        #: unless the run asked for telemetry).
        self.telemetry = (
            telemetry if telemetry is not None else _obs_context.current_telemetry()
        )
        #: Probes sampled at each window close: callables returning
        #: gauge-like levels (cache occupancy, cumulative evictions)
        #: keyed by rendered metric name.  Components register themselves
        #: at attach time; probes are per-scheduler so sequential
        #: simulations in one run never sample each other's state.
        self.telemetry_probes: List[Callable[[], dict]] = []
        self._telemetry_index = 0
        #: Batch (burst-granular) events scheduled so far; the columnar
        #: benchmark asserts this grows like hops-per-burst, not packets.
        self.batch_events_scheduled = 0

    def add_probe(self, probe: Callable[[], dict]) -> None:
        """Register a telemetry probe sampled at every window close."""
        self.telemetry_probes.append(probe)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (for sanity checks)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        event = ScheduledEvent(time, next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_batch(
        self, delay: float, callback: Callable, *args: Any
    ) -> ScheduledEvent:
        """Schedule a burst-granular event: one callback for a whole batch.

        Identical loop semantics to :meth:`schedule`; the event is marked
        ``kind="batch"`` and counted in :attr:`batch_events_scheduled` so
        runs can report how many per-packet events the columnar path
        collapsed.
        """
        event = self.schedule(delay, callback, *args)
        event.kind = "batch"
        self.batch_events_scheduled += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the loop; returns the number of callbacks fired.

        Stops when the heap drains, when the next event would fire after
        ``until``, or after ``max_events`` callbacks (a runaway guard).

        The loop body is the hottest code in every experiment, so the
        heap, the pop and the profiler branch are hoisted out of it; the
        disabled-profiler fast path (every run except ``--profile``) pays
        no per-event timer reads or attribute chases.
        """
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        profiler = self.profiler
        # One branch outside the loop: profiler enablement is fixed at
        # run-context creation, never toggled mid-run.
        profiling = profiler is not None and profiler.enabled
        # Same hoisting for telemetry: the disabled path (every run unless
        # --telemetry) pays one comparison per event, nothing else.  An
        # event at or past the deadline closes the elapsed window(s)
        # *before* firing, so a window's counter deltas come exactly from
        # the events inside it.
        recorder = self.telemetry
        sampling = recorder is not None and recorder.enabled
        if sampling:
            tele_index = self._telemetry_index
            tele_deadline = recorder.deadline(tele_index)
            probes = self.telemetry_probes
        while heap:
            if max_events is not None and fired >= max_events:
                break
            event = heap[0]
            if until is not None and event.time > until:
                break
            pop(heap)
            if event.cancelled:
                continue
            if sampling and event.time >= tele_deadline:
                tele_index, tele_deadline = recorder.roll(
                    tele_index, event.time, probes
                )
            self._now = event.time
            if profiling:
                started = _time.perf_counter()
                event.callback(*event.args)
                profiler.observe(
                    "callback:" + getattr(
                        event.callback, "__qualname__", type(event.callback).__name__
                    ),
                    _time.perf_counter() - started,
                )
            else:
                event.callback(*event.args)
            fired += 1
        self._events_processed += fired
        if until is not None and self._now < until:
            self._now = until
        if sampling:
            # Attribute the residual deltas to the trailing (partial)
            # window; the cursor persists so a continuing run keeps
            # accumulating into the same absolute-time series.
            self._telemetry_index = recorder.flush(tele_index, probes)
        return fired

    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return sum(1 for event in self._heap if not event.cancelled)


class ServiceStation:
    """A rate-limited single-server FIFO queue.

    Items arrive via :meth:`submit`; each takes ``1 / rate`` seconds of
    service, after which ``on_complete(item)`` is invoked.  Arrivals beyond
    ``queue_limit`` waiting items are dropped and counted (and reported to
    ``on_drop`` when provided).  This models any capacity-bound component:

    * the NOX controller CPU — flow setups queue and, under overload, drop;
    * an authority switch's ingress redirect capacity;
    * a software switch's packet-processing budget.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        rate: float,
        on_complete: Callable[[Any], None],
        queue_limit: Optional[int] = None,
        on_drop: Optional[Callable[[Any], None]] = None,
        name: str = "station",
        metrics=None,
    ):
        if rate <= 0:
            raise ValueError(f"service rate must be positive, got {rate}")
        self.scheduler = scheduler
        self.rate = rate
        self.on_complete = on_complete
        self.on_drop = on_drop
        self.queue_limit = queue_limit
        self.name = name
        self._queue: Deque[Any] = deque()
        self._busy = False
        # Statistics.
        self.accepted = 0
        self.dropped = 0
        self.completed = 0
        self.busy_time = 0.0
        self._service_started: Optional[float] = None
        # Queue drops were historically only this local counter — the
        # registry child makes every station's tail loss visible in one
        # canonical metrics snapshot (labelled by station name).
        registry = metrics if metrics is not None else _obs_context.current_registry()
        self._m_queue_drops = registry.counter("station_queue_drops_total", station=name)
        self._m_completed = registry.counter("station_completed_total", station=name)

    @property
    def queue_depth(self) -> int:
        """Items currently waiting (not including the one in service)."""
        return len(self._queue)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serving (≤ 1)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def submit(self, item: Any) -> bool:
        """Offer ``item``; returns False (and drops) when the queue is full."""
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.dropped += 1
            self._m_queue_drops.inc()
            if self.on_drop is not None:
                self.on_drop(item)
            return False
        self.accepted += 1
        self._queue.append(item)
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        item = self._queue.popleft()
        service_time = 1.0 / self.rate
        self._service_started = self.scheduler.now
        self.scheduler.schedule(service_time, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.completed += 1
        self._m_completed.inc()
        if self._service_started is not None:
            self.busy_time += self.scheduler.now - self._service_started
            self._service_started = None
        # Serve the next item before running the completion callback so a
        # callback that re-submits work cannot starve the queue ordering.
        self._start_next()
        self.on_complete(item)

    def __repr__(self) -> str:
        return (
            f"<ServiceStation {self.name} rate={self.rate:g}/s "
            f"queued={len(self._queue)} done={self.completed} dropped={self.dropped}>"
        )
