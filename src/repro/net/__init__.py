"""Network substrate: event simulation, topologies, links and routing.

This subpackage provides the "testbed" the DIFANE paper ran on:

* :mod:`repro.net.events` — a deterministic discrete-event scheduler plus a
  rate-limited FIFO service station (the queueing primitive that models
  controller CPUs and switch redirect capacity).
* :mod:`repro.net.links` — point-to-point links with propagation and
  serialization delay.
* :mod:`repro.net.topology` — topology builders (linear, star, three-tier
  campus, Waxman random) over :mod:`networkx`.
* :mod:`repro.net.routing` — link-state shortest-path next-hop tables.
* :mod:`repro.net.simnet` — the harness binding switches, links and the
  scheduler into a runnable network.
"""

from repro.net.events import EventScheduler, ServiceStation
from repro.net.links import Link, LinkSpec
from repro.net.topology import Topology, TopologyBuilder
from repro.net.routing import RoutingTable, compute_routes
from repro.net.simnet import SimNetwork, DeliveryRecord
from repro.net.failures import FailureInjector
from repro.net.chaos import ChaosSchedule, ChaosSpec

__all__ = [
    "ChaosSchedule",
    "ChaosSpec",
    "EventScheduler",
    "ServiceStation",
    "Link",
    "LinkSpec",
    "Topology",
    "TopologyBuilder",
    "RoutingTable",
    "compute_routes",
    "SimNetwork",
    "DeliveryRecord",
    "FailureInjector",
]
