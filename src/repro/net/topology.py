"""Topology construction.

A :class:`Topology` is an undirected :mod:`networkx` graph whose nodes are
named switches and hosts, with a :class:`~repro.net.links.LinkSpec` per
edge.  :class:`TopologyBuilder` provides the shapes used across the
evaluation:

* ``linear`` / ``star`` — micro-benchmarks and worked examples;
* ``three_tier_campus`` — the enterprise topology the paper evaluates on
  (access / distribution / core tiers, hosts on access switches);
* ``waxman`` — random geometric graphs for placement-sensitivity studies.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Optional

import networkx as nx

from repro.net.links import LinkSpec

__all__ = ["Topology", "TopologyBuilder"]

#: Node roles stored on the graph.
SWITCH = "switch"
HOST = "host"


class Topology:
    """A named-node topology with per-edge link specs and node roles."""

    def __init__(self):
        self.graph = nx.Graph()

    # -- construction ---------------------------------------------------------
    def add_switch(self, name: str, **attrs) -> str:
        """Add a switch node; returns the name for chaining."""
        self.graph.add_node(name, role=SWITCH, **attrs)
        return name

    def add_host(self, name: str, attached_to: str, spec: Optional[LinkSpec] = None) -> str:
        """Add a host attached to switch ``attached_to``."""
        if attached_to not in self.graph:
            raise KeyError(f"unknown switch {attached_to!r}")
        self.graph.add_node(name, role=HOST)
        self.add_link(name, attached_to, spec or LinkSpec(propagation_s=5e-6))
        return name

    def add_link(self, a: str, b: str, spec: Optional[LinkSpec] = None) -> None:
        """Connect two existing nodes."""
        for node in (a, b):
            if node not in self.graph:
                raise KeyError(f"unknown node {node!r}")
        self.graph.add_edge(a, b, spec=spec or LinkSpec())

    def remove_link(self, a: str, b: str) -> None:
        """Remove a link (used by the topology-change experiments)."""
        self.graph.remove_edge(a, b)

    def has_link(self, a: str, b: str) -> bool:
        """True when the ``a``–``b`` link currently exists."""
        return self.graph.has_edge(a, b)

    def links_of(self, name: str) -> List[tuple]:
        """Every live link at ``name`` as ``(name, neighbor, spec)`` triples."""
        return [
            (name, neighbor, self.graph.edges[name, neighbor]["spec"])
            for neighbor in self.graph.neighbors(name)
        ]

    # -- queries -------------------------------------------------------------------
    def switches(self) -> List[str]:
        """All switch names, in insertion order."""
        return [n for n, d in self.graph.nodes(data=True) if d.get("role") == SWITCH]

    def hosts(self) -> List[str]:
        """All host names, in insertion order."""
        return [n for n, d in self.graph.nodes(data=True) if d.get("role") == HOST]

    def edge_switches(self) -> List[str]:
        """Switches with at least one attached host (DIFANE's ingress/egress)."""
        result = []
        for switch in self.switches():
            if any(
                self.graph.nodes[n].get("role") == HOST
                for n in self.graph.neighbors(switch)
            ):
                result.append(switch)
        return result

    def host_attachment(self, host: str) -> str:
        """The switch a host hangs off."""
        for neighbor in self.graph.neighbors(host):
            if self.graph.nodes[neighbor].get("role") == SWITCH:
                return neighbor
        raise ValueError(f"host {host!r} is not attached to any switch")

    def link_spec(self, a: str, b: str) -> LinkSpec:
        """The spec of the ``a``–``b`` link."""
        return self.graph.edges[a, b]["spec"]

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        return nx.is_connected(self.graph) if len(self.graph) else True

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        return (
            f"<Topology {len(self.switches())} switches, "
            f"{len(self.hosts())} hosts, {self.graph.number_of_edges()} links>"
        )


class TopologyBuilder:
    """Factory methods for the topologies used by the experiments."""

    @staticmethod
    def single_switch(hosts: int = 2) -> Topology:
        """One switch with ``hosts`` attached hosts (prototype micro-bench)."""
        topo = Topology()
        topo.add_switch("s0")
        for index in range(hosts):
            topo.add_host(f"h{index}", "s0")
        return topo

    @staticmethod
    def linear(switch_count: int, hosts_per_switch: int = 1) -> Topology:
        """A chain s0 – s1 – ... with hosts on every switch."""
        if switch_count < 1:
            raise ValueError("need at least one switch")
        topo = Topology()
        for index in range(switch_count):
            topo.add_switch(f"s{index}")
            if index:
                topo.add_link(f"s{index - 1}", f"s{index}")
        host_id = itertools.count()
        for index in range(switch_count):
            for _ in range(hosts_per_switch):
                topo.add_host(f"h{next(host_id)}", f"s{index}")
        return topo

    @staticmethod
    def star(leaf_count: int, hosts_per_leaf: int = 1) -> Topology:
        """A hub switch with ``leaf_count`` edge switches around it."""
        topo = Topology()
        topo.add_switch("hub")
        host_id = itertools.count()
        for index in range(leaf_count):
            leaf = topo.add_switch(f"s{index}")
            topo.add_link("hub", leaf)
            for _ in range(hosts_per_leaf):
                topo.add_host(f"h{next(host_id)}", leaf)
        return topo

    @staticmethod
    def three_tier_campus(
        core_count: int = 2,
        distribution_count: int = 4,
        access_per_distribution: int = 4,
        hosts_per_access: int = 2,
        core_spec: Optional[LinkSpec] = None,
        access_spec: Optional[LinkSpec] = None,
    ) -> Topology:
        """The enterprise/campus shape the paper's deployment targets.

        Core switches form a full mesh; every distribution switch connects
        to every core switch; access switches dual-home to two distribution
        switches (when available); hosts hang off access switches.
        """
        topo = Topology()
        core_spec = core_spec or LinkSpec(propagation_s=20e-6, bandwidth_bps=10e9)
        dist_spec = LinkSpec(propagation_s=20e-6, bandwidth_bps=10e9)
        access_spec = access_spec or LinkSpec(propagation_s=10e-6, bandwidth_bps=1e9)

        cores = [topo.add_switch(f"core{i}") for i in range(core_count)]
        for a, b in itertools.combinations(cores, 2):
            topo.add_link(a, b, core_spec)

        distributions = []
        for index in range(distribution_count):
            dist = topo.add_switch(f"dist{index}")
            distributions.append(dist)
            for core in cores:
                topo.add_link(dist, core, dist_spec)

        host_id = itertools.count()
        access_id = itertools.count()
        for d_index, dist in enumerate(distributions):
            backup = distributions[(d_index + 1) % len(distributions)]
            for _ in range(access_per_distribution):
                access = topo.add_switch(f"acc{next(access_id)}")
                topo.add_link(access, dist, access_spec)
                if backup != dist:
                    topo.add_link(access, backup, access_spec)
                for _ in range(hosts_per_access):
                    topo.add_host(f"h{next(host_id)}", access)
        return topo

    @staticmethod
    def fat_tree(k: int = 4, hosts_per_edge: int = 1) -> Topology:
        """A k-ary fat tree (k even): the canonical data-center fabric.

        ``(k/2)²`` core switches; k pods, each with ``k/2`` aggregation
        and ``k/2`` edge switches; hosts hang off edge switches.  Used by
        the scaling experiments when a data-center-shaped fabric (rather
        than a campus) is wanted.
        """
        if k < 2 or k % 2:
            raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
        topo = Topology()
        half = k // 2
        spine_spec = LinkSpec(propagation_s=10e-6, bandwidth_bps=40e9)
        leaf_spec = LinkSpec(propagation_s=5e-6, bandwidth_bps=10e9)

        cores = [
            topo.add_switch(f"core{i}") for i in range(half * half)
        ]
        host_id = itertools.count()
        for pod in range(k):
            aggregations = [
                topo.add_switch(f"agg{pod}_{i}") for i in range(half)
            ]
            edges = [topo.add_switch(f"edge{pod}_{i}") for i in range(half)]
            for agg_index, agg in enumerate(aggregations):
                # Each aggregation switch connects to `half` core switches.
                for j in range(half):
                    topo.add_link(agg, cores[agg_index * half + j], spine_spec)
                for edge in edges:
                    topo.add_link(agg, edge, leaf_spec)
            for edge in edges:
                for _ in range(hosts_per_edge):
                    topo.add_host(f"h{next(host_id)}", edge)
        return topo

    @staticmethod
    def waxman(
        switch_count: int,
        hosts_per_switch: int = 1,
        alpha: float = 0.4,
        beta: float = 0.4,
        seed: int = 0,
    ) -> Topology:
        """A Waxman random graph, patched to be connected.

        Edge probability decays with Euclidean distance —
        ``p = alpha * exp(-d / (beta * L))`` — the standard synthetic-WAN
        model; used for authority-placement sensitivity.
        """
        rng = random.Random(seed)
        positions = {
            f"s{i}": (rng.random(), rng.random()) for i in range(switch_count)
        }
        topo = Topology()
        for name in positions:
            topo.add_switch(name)
        max_distance = math.sqrt(2.0)
        names = list(positions)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                ax, ay = positions[a]
                bx, by = positions[b]
                distance = math.hypot(ax - bx, ay - by)
                if rng.random() < alpha * math.exp(-distance / (beta * max_distance)):
                    spec = LinkSpec(propagation_s=distance * 1e-3)
                    topo.add_link(a, b, spec)
        # Patch connectivity: chain any disconnected components together.
        components = [sorted(c) for c in nx.connected_components(topo.graph)]
        for first, second in zip(components, components[1:]):
            topo.add_link(first[0], second[0])
        host_id = itertools.count()
        for name in names:
            for _ in range(hosts_per_switch):
                topo.add_host(f"h{next(host_id)}", name)
        return topo
