"""Chaos orchestration: seeded schedules of composed failures.

A :class:`ChaosSchedule` turns a :class:`ChaosSpec` into a deterministic
timeline of fault events against a live simulation:

* **switch kills/repairs** via the :class:`~repro.net.failures.FailureInjector`
  (idempotent, so randomized schedules never have to coordinate);
* **link flaps** — a link goes down and comes back up;
* **loss bursts** — a link's live drop probability spikes for a window
  (see :class:`~repro.net.links.Link`'s mutable fault parameters);
* **control-plane brownouts** — every control session's shared
  :class:`~repro.openflow.channel.ChannelFaultModel` drop probability
  spikes for a window;
* **controller-shard kills** — a replica of the sharded control plane
  dies and is repaired (see :mod:`repro.core.shards`): its partitions'
  management stalls until the lease takeover adopts them.

Everything is derived from one seed, so a chaos soak is reproducible:
same seed, same kills at the same instants, same losses.  The schedule
only *plans and applies* events; detection and recovery are left to the
heartbeat monitor and the data plane — that separation is the point of
the robustness experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.failures import FailureInjector
from repro.net.simnet import SimNetwork
from repro.openflow.channel import ChannelFaultModel

__all__ = ["ChaosSpec", "ChaosSchedule"]


@dataclass(frozen=True)
class ChaosSpec:
    """Knobs of a randomized chaos schedule (all counts are events)."""

    seed: int = 0
    duration_s: float = 1.0
    #: Kill/repair cycles of ordinary (non-authority) switches.
    switch_kills: int = 1
    #: Kill/repair cycles targeting authority switches (exercises
    #: heartbeat detection, failover and reinstatement).
    authority_kills: int = 1
    link_flaps: int = 2
    loss_bursts: int = 2
    burst_loss_probability: float = 0.3
    brownouts: int = 1
    brownout_drop_probability: float = 0.5
    #: Kill/repair cycles of controller shards (needs a
    #: :class:`~repro.core.shards.ShardedControlPlane` wired into the
    #: schedule; exercises lease takeover and deferred failovers).
    shard_kills: int = 0
    #: Outage windows are drawn uniformly from this range (seconds).
    min_outage_s: float = 0.05
    max_outage_s: float = 0.15


class ChaosSchedule:
    """Compose and apply fault events against a running simulation.

    The primitives (:meth:`kill_switch`, :meth:`flap_link`,
    :meth:`loss_burst`, :meth:`brownout`) register events immediately on
    the network's scheduler and can be called directly for hand-built
    scenarios; :meth:`randomized` draws a full schedule from a
    :class:`ChaosSpec`.
    """

    def __init__(
        self,
        network: SimNetwork,
        injector: FailureInjector,
        fault_model: Optional[ChannelFaultModel] = None,
        shard_plane=None,
    ):
        self.network = network
        self.injector = injector
        self.fault_model = fault_model
        self.shard_plane = shard_plane
        #: Planned events as ``(time, kind, target)``, in registration order.
        self.planned: List[Tuple[float, str, str]] = []

    # -- primitives -----------------------------------------------------------
    def kill_switch(self, at: float, name: str, repair_at: Optional[float] = None) -> None:
        """Kill ``name`` at ``at``; optionally repair it at ``repair_at``."""
        self.injector.fail_switch_at(at, name)
        self.planned.append((at, "kill-switch", name))
        if repair_at is not None:
            self.injector.restore_switch_at(repair_at, name)
            self.planned.append((repair_at, "repair-switch", name))

    def kill_shard(self, at: float, name: str, repair_at: Optional[float] = None) -> None:
        """Kill controller shard ``name`` at ``at`` (repair optional)."""
        if self.shard_plane is None:
            raise ValueError("kill_shard needs a ShardedControlPlane")
        scheduler = self.network.scheduler
        scheduler.schedule_at(at, self.shard_plane.kill_shard, name)
        self.planned.append((at, "kill-shard", name))
        if repair_at is not None:
            scheduler.schedule_at(repair_at, self.shard_plane.restore_shard, name)
            self.planned.append((repair_at, "repair-shard", name))

    def flap_link(self, at: float, a: str, b: str, up_at: float) -> None:
        """Down the ``a``–``b`` link at ``at`` and restore it at ``up_at``."""
        self.injector.fail_link_at(at, a, b)
        self.injector.restore_link_at(up_at, a, b)
        self.planned.append((at, "link-flap-down", f"{a}-{b}"))
        self.planned.append((up_at, "link-flap-up", f"{a}-{b}"))

    def loss_burst(
        self, at: float, a: str, b: str, loss_probability: float, until: float
    ) -> None:
        """Spike the ``a``–``b`` loss probability for a window."""
        scheduler = self.network.scheduler
        scheduler.schedule_at(at, self._set_loss, a, b, loss_probability)
        scheduler.schedule_at(until, self._restore_loss, a, b)
        self.planned.append((at, "loss-burst-start", f"{a}-{b}"))
        self.planned.append((until, "loss-burst-end", f"{a}-{b}"))

    def brownout(self, at: float, drop_probability: float, until: float) -> None:
        """Spike the control plane's drop probability for a window."""
        if self.fault_model is None:
            raise ValueError("brownout needs a shared ChannelFaultModel")
        scheduler = self.network.scheduler
        scheduler.schedule_at(at, self._set_brownout, drop_probability)
        scheduler.schedule_at(until, self._end_brownout)
        self.planned.append((at, "brownout-start", f"p={drop_probability:g}"))
        self.planned.append((until, "brownout-end", ""))

    # -- randomized composition -------------------------------------------------
    @classmethod
    def randomized(
        cls,
        network: SimNetwork,
        injector: FailureInjector,
        spec: ChaosSpec,
        kill_candidates: Sequence[str],
        authority_candidates: Sequence[str] = (),
        flap_candidates: Optional[Sequence[Tuple[str, str]]] = None,
        fault_model: Optional[ChannelFaultModel] = None,
        shard_plane=None,
        shard_candidates: Sequence[str] = (),
    ) -> "ChaosSchedule":
        """Draw a full schedule from ``spec`` (deterministic in its seed).

        ``kill_candidates`` should be switches whose death cannot strand
        a traffic source (no attached hosts); ``authority_candidates``
        are killed one at a time (windows may still overlap other
        faults).  ``flap_candidates`` defaults to every switch–switch
        link in the topology.  ``shard_candidates`` (with a
        ``shard_plane``) enables controller-shard kills; their draws
        come *after* every legacy draw, so specs without shard kills
        produce byte-identical plans to earlier releases.
        """
        schedule = cls(network, injector, fault_model=fault_model,
                       shard_plane=shard_plane)
        rng = random.Random(f"chaos:{spec.seed}")
        if flap_candidates is None:
            flap_candidates = schedule._switch_links()

        def window() -> Tuple[float, float]:
            length = rng.uniform(spec.min_outage_s, spec.max_outage_s)
            start = rng.uniform(0.1 * spec.duration_s,
                                max(0.1 * spec.duration_s,
                                    0.9 * spec.duration_s - length))
            return start, start + length

        for name in _sample(rng, list(kill_candidates), spec.switch_kills):
            start, end = window()
            schedule.kill_switch(start, name, repair_at=end)
        for name in _sample(rng, list(authority_candidates), spec.authority_kills):
            start, end = window()
            schedule.kill_switch(start, name, repair_at=end)
        for _ in range(spec.link_flaps):
            if not flap_candidates:
                break
            a, b = rng.choice(list(flap_candidates))
            start, end = window()
            schedule.flap_link(start, a, b, end)
        for _ in range(spec.loss_bursts):
            if not flap_candidates:
                break
            a, b = rng.choice(list(flap_candidates))
            start, end = window()
            schedule.loss_burst(start, a, b, spec.burst_loss_probability, end)
        if fault_model is not None:
            for _ in range(spec.brownouts):
                start, end = window()
                schedule.brownout(start, spec.brownout_drop_probability, end)
        if shard_plane is not None and spec.shard_kills and shard_candidates:
            for name in _sample(rng, list(shard_candidates), spec.shard_kills):
                start, end = window()
                schedule.kill_shard(start, name, repair_at=end)
        schedule.planned.sort(key=lambda event: event[0])
        return schedule

    # -- callbacks --------------------------------------------------------------
    def _set_loss(self, a: str, b: str, probability: float) -> None:
        try:
            self.network.set_link_faults(a, b, loss_probability=probability)
        except KeyError:
            pass  # link is down right now; the burst dissolves into the outage

    def _restore_loss(self, a: str, b: str) -> None:
        try:
            spec = self.network.topology.link_spec(a, b)
            self.network.set_link_faults(a, b, loss_probability=spec.loss_probability)
        except KeyError:
            pass

    def _set_brownout(self, probability: float) -> None:
        self._brownout_base = self.fault_model.drop_probability
        self.fault_model.drop_probability = probability

    def _end_brownout(self) -> None:
        self.fault_model.drop_probability = getattr(self, "_brownout_base", 0.0)

    def _switch_links(self) -> List[Tuple[str, str]]:
        """Every switch–switch link (host access links stay reliable)."""
        graph = self.network.topology.graph
        return [
            (a, b) for a, b in graph.edges
            if graph.nodes[a].get("role") == "switch"
            and graph.nodes[b].get("role") == "switch"
        ]

    def __repr__(self) -> str:
        return f"<ChaosSchedule {len(self.planned)} planned events>"


def _sample(rng: random.Random, population: List[str], count: int) -> List[str]:
    """Up to ``count`` distinct draws, stable under short populations."""
    if count <= 0 or not population:
        return []
    return rng.sample(population, min(count, len(population)))
