"""Failure injection for resilience experiments.

A :class:`FailureInjector` schedules link and switch failures (and
repairs) against a live :class:`~repro.net.simnet.SimNetwork`, modelling
link-state reconvergence as an immediate route rebuild (the paper
delegates intra-network reachability to a standard IGP and assumes it
converges; convergence delay can be modelled by scheduling the rebuild
separately).

Switch failure = all of the switch's links go down; packets later
addressed to it are dropped by routing, which is what triggers DIFANE's
data-plane failover to backup authority switches.  The switch behaviour
object is also marked ``alive = False`` so it stops emitting heartbeats
— failure *detection* is then an emergent property of the heartbeat
monitor, not a scripted callback.

All operations are idempotent: failing an already-failed switch or link
(or restoring a live one) is a no-op, so a randomized chaos schedule can
compose kills and repairs without coordinating.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.simnet import SimNetwork

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedule and apply link/switch failures on a SimNetwork."""

    def __init__(self, network: SimNetwork):
        self.network = network
        #: Links downed per failed switch, for repair.
        self._switch_links: Dict[str, List[Tuple[str, str, object]]] = {}
        #: Specs of individually failed links, for spec-preserving repair.
        self._link_specs: Dict[Tuple[str, str], object] = {}
        self.events: List[Tuple[float, str, str]] = []

    # -- immediate operations ------------------------------------------------
    def fail_link(self, a: str, b: str) -> bool:
        """Take the ``a``–``b`` link down now and reconverge routing.

        Returns False (without touching anything) when the link is
        already down.
        """
        topology = self.network.topology
        if not topology.has_link(a, b):
            return False
        self._link_specs[self._key(a, b)] = topology.link_spec(a, b)
        topology.remove_link(a, b)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "link-down", f"{a}-{b}"))
        return True

    def restore_link(self, a: str, b: str, spec=None) -> bool:
        """Bring a link back and reconverge; no-op when already up.

        ``spec`` defaults to whatever the link had when this injector
        took it down.
        """
        topology = self.network.topology
        if topology.has_link(a, b):
            return False
        if spec is None:
            spec = self._link_specs.get(self._key(a, b))
        topology.add_link(a, b, spec)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "link-up", f"{a}-{b}"))
        return True

    def fail_switch(self, name: str) -> int:
        """Down every link of ``name``; returns the number of links cut.

        Idempotent: a switch that is already failed stays failed and 0
        is returned.
        """
        if name in self._switch_links:
            return 0
        topology = self.network.topology
        downed = topology.links_of(name)
        for a, b, _ in downed:
            topology.remove_link(a, b)
        self._switch_links[name] = downed
        self._set_alive(name, False)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "switch-down", name))
        return len(downed)

    def restore_switch(self, name: str) -> int:
        """Re-attach a previously failed switch's links (no-op when live)."""
        downed = self._switch_links.pop(name, [])
        for a, b, spec in downed:
            if not self.network.topology.has_link(a, b):
                self.network.topology.add_link(a, b, spec)
        self._set_alive(name, True)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "switch-up", name))
        return len(downed)

    def failed_switches(self) -> List[str]:
        """Switches currently held down by this injector."""
        return sorted(self._switch_links)

    # -- scheduled operations ----------------------------------------------------
    def fail_link_at(self, time: float, a: str, b: str) -> None:
        """Schedule a link failure at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.fail_link, a, b)

    def restore_link_at(self, time: float, a: str, b: str) -> None:
        """Schedule a link repair at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.restore_link, a, b)

    def fail_switch_at(self, time: float, name: str) -> None:
        """Schedule a switch failure at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.fail_switch, name)

    def restore_switch_at(self, time: float, name: str) -> None:
        """Schedule a switch repair at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.restore_switch, name)

    # -- helpers ---------------------------------------------------------------------
    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _set_alive(self, name: str, alive: bool) -> None:
        behaviour = self.network.maybe_node(name)
        if behaviour is None:
            return
        if hasattr(behaviour, "alive"):
            behaviour.alive = alive
        channel = getattr(behaviour, "control_channel", None)
        if channel is None:
            return
        channel.set_endpoint_alive("down", alive)
        if not alive:
            # A dead endpoint can neither receive retransmissions nor
            # return acks: abort its control session's pending ARQ state
            # so retry timers stop firing against it and undelivered
            # messages are counted lost (exact accounting under chaos).
            channel.drain_pending()
