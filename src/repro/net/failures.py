"""Failure injection for resilience experiments.

A :class:`FailureInjector` schedules link and switch failures (and
repairs) against a live :class:`~repro.net.simnet.SimNetwork`, modelling
link-state reconvergence as an immediate route rebuild (the paper
delegates intra-network reachability to a standard IGP and assumes it
converges; convergence delay can be modelled by scheduling the rebuild
separately).

Switch failure = all of the switch's links go down; packets later
addressed to it are dropped by routing, which is what triggers DIFANE's
data-plane failover to backup authority switches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.simnet import SimNetwork

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedule and apply link/switch failures on a SimNetwork."""

    def __init__(self, network: SimNetwork):
        self.network = network
        #: Links downed per failed switch, for repair.
        self._switch_links: Dict[str, List[Tuple[str, str, object]]] = {}
        self.events: List[Tuple[float, str, str]] = []

    # -- immediate operations ------------------------------------------------
    def fail_link(self, a: str, b: str) -> None:
        """Take the ``a``–``b`` link down now and reconverge routing."""
        self.network.topology.remove_link(a, b)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "link-down", f"{a}-{b}"))

    def restore_link(self, a: str, b: str, spec=None) -> None:
        """Bring a link back and reconverge."""
        self.network.topology.add_link(a, b, spec)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "link-up", f"{a}-{b}"))

    def fail_switch(self, name: str) -> int:
        """Down every link of ``name``; returns the number of links cut."""
        graph = self.network.topology.graph
        neighbors = list(graph.neighbors(name))
        downed = []
        for neighbor in neighbors:
            spec = graph.edges[name, neighbor]["spec"]
            downed.append((name, neighbor, spec))
            graph.remove_edge(name, neighbor)
        self._switch_links[name] = downed
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "switch-down", name))
        return len(downed)

    def restore_switch(self, name: str) -> int:
        """Re-attach a previously failed switch's links."""
        downed = self._switch_links.pop(name, [])
        for a, b, spec in downed:
            self.network.topology.graph.add_edge(a, b, spec=spec)
        self.network.rebuild_routes()
        self.events.append((self.network.scheduler.now, "switch-up", name))
        return len(downed)

    # -- scheduled operations ----------------------------------------------------
    def fail_link_at(self, time: float, a: str, b: str) -> None:
        """Schedule a link failure at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.fail_link, a, b)

    def fail_switch_at(self, time: float, name: str) -> None:
        """Schedule a switch failure at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.fail_switch, name)

    def restore_switch_at(self, time: float, name: str) -> None:
        """Schedule a switch repair at absolute simulation ``time``."""
        self.network.scheduler.schedule_at(time, self.restore_switch, name)
