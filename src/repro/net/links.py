"""Point-to-point links.

A :class:`Link` carries packets between two named nodes with a delay of
``propagation + size / bandwidth`` seconds.  Links are unidirectional at
the object level; topologies create one per direction.  Per-link counters
feed the utilization analysis in the stretch and throughput experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.events import EventScheduler

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Physical parameters of a link.

    Attributes
    ----------
    propagation_s:
        One-way propagation delay in seconds (default 50 µs — a metro span;
        the campus builder uses shorter values).
    bandwidth_bps:
        Capacity in bits per second (default 1 Gb/s).
    """

    propagation_s: float = 50e-6
    bandwidth_bps: float = 1e9

    def transfer_delay(self, size_bytes: int) -> float:
        """Total latency for one packet of ``size_bytes``."""
        return self.propagation_s + (size_bytes * 8.0) / self.bandwidth_bps


class Link:
    """A unidirectional link delivering packets after the spec's delay."""

    __slots__ = ("source", "destination", "spec", "scheduler", "deliver",
                 "packets_carried", "bytes_carried")

    def __init__(
        self,
        source: str,
        destination: str,
        spec: LinkSpec,
        scheduler: EventScheduler,
        deliver: Callable,
    ):
        self.source = source
        self.destination = destination
        self.spec = spec
        self.scheduler = scheduler
        #: Callback invoked as ``deliver(destination, packet)`` on arrival.
        self.deliver = deliver
        self.packets_carried = 0
        self.bytes_carried = 0

    def send(self, packet) -> None:
        """Start transmitting ``packet``; it arrives after the link delay."""
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        delay = self.spec.transfer_delay(packet.size_bytes)
        self.scheduler.schedule(delay, self.deliver, self.destination, packet)

    def __repr__(self) -> str:
        return f"<Link {self.source}->{self.destination} {self.packets_carried}pkts>"
