"""Point-to-point links.

A :class:`Link` carries packets between two named nodes with a delay of
``propagation + size / bandwidth`` seconds.  Links are unidirectional at
the object level; topologies create one per direction.  Per-link counters
feed the utilization analysis in the stretch and throughput experiments.

Fault model
-----------
A link may be *lossy* (``loss_probability``) and *jittery*
(``jitter_s``, uniform extra latency).  Both default to zero, in which
case the link draws no random numbers and behaves exactly like the
reliable fabric the original experiments assume.  Randomness comes from
a per-link RNG seeded from the network seed and the link's endpoints, so
two runs with the same seed lose exactly the same packets regardless of
event interleaving on other links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.events import EventScheduler

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Physical parameters of a link.

    Attributes
    ----------
    propagation_s:
        One-way propagation delay in seconds (default 50 µs — a metro span;
        the campus builder uses shorter values).
    bandwidth_bps:
        Capacity in bits per second (default 1 Gb/s).
    loss_probability:
        Independent per-packet drop probability (default 0 — lossless).
    jitter_s:
        Maximum uniform extra latency per packet (default 0 — no jitter).
    """

    propagation_s: float = 50e-6
    bandwidth_bps: float = 1e9
    loss_probability: float = 0.0
    jitter_s: float = 0.0

    def transfer_delay(self, size_bytes: int) -> float:
        """Total latency for one packet of ``size_bytes`` (jitter excluded)."""
        return self.propagation_s + (size_bytes * 8.0) / self.bandwidth_bps


class Link:
    """A unidirectional link delivering packets after the spec's delay."""

    __slots__ = ("source", "destination", "spec", "scheduler", "deliver",
                 "on_loss", "loss_probability", "jitter_s", "_rng",
                 "packets_carried", "bytes_carried", "packets_lost")

    def __init__(
        self,
        source: str,
        destination: str,
        spec: LinkSpec,
        scheduler: EventScheduler,
        deliver: Callable,
        on_loss: Optional[Callable] = None,
        seed: int = 0,
    ):
        self.source = source
        self.destination = destination
        self.spec = spec
        self.scheduler = scheduler
        #: Callback invoked as ``deliver(destination, packet)`` on arrival.
        self.deliver = deliver
        #: Callback invoked as ``on_loss(link, packet)`` when loss eats a packet.
        self.on_loss = on_loss
        #: Live fault parameters; start from the spec but stay mutable so a
        #: chaos schedule can flap loss on an existing link mid-run.
        self.loss_probability = spec.loss_probability
        self.jitter_s = spec.jitter_s
        # String-seeded Random uses sha512 of the seed, so the stream is
        # stable across processes (unlike hash(), which is salted).
        self._rng = random.Random(f"{seed}:{source}->{destination}")
        self.packets_carried = 0
        self.bytes_carried = 0
        self.packets_lost = 0

    def send(self, packet) -> None:
        """Start transmitting ``packet``; it arrives after the link delay."""
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self.packets_lost += 1
            if self.on_loss is not None:
                self.on_loss(self, packet)
            return
        delay = self.spec.transfer_delay(packet.size_bytes)
        if self.jitter_s > 0.0:
            delay += self._rng.uniform(0.0, self.jitter_s)
        self.scheduler.schedule(delay, self.deliver, self.destination, packet)

    def __repr__(self) -> str:
        return f"<Link {self.source}->{self.destination} {self.packets_carried}pkts>"
