"""Point-to-point links.

A :class:`Link` carries packets between two named nodes with a delay of
``propagation + size / bandwidth`` seconds.  Links are unidirectional at
the object level; topologies create one per direction.  Per-link counters
feed the utilization analysis in the stretch and throughput experiments.

Fault model
-----------
A link may be *lossy* (``loss_probability``) and *jittery*
(``jitter_s``, uniform extra latency).  Both default to zero, in which
case the link draws no random numbers and behaves exactly like the
reliable fabric the original experiments assume.  Randomness comes from
a per-link RNG seeded from the network seed and the link's endpoints, so
two runs with the same seed lose exactly the same packets regardless of
event interleaving on other links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.events import EventScheduler

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Physical parameters of a link.

    Attributes
    ----------
    propagation_s:
        One-way propagation delay in seconds (default 50 µs — a metro span;
        the campus builder uses shorter values).
    bandwidth_bps:
        Capacity in bits per second (default 1 Gb/s).
    loss_probability:
        Independent per-packet drop probability (default 0 — lossless).
    jitter_s:
        Maximum uniform extra latency per packet (default 0 — no jitter).
    """

    propagation_s: float = 50e-6
    bandwidth_bps: float = 1e9
    loss_probability: float = 0.0
    jitter_s: float = 0.0

    def transfer_delay(self, size_bytes: int) -> float:
        """Total latency for one packet of ``size_bytes`` (jitter excluded)."""
        return self.propagation_s + (size_bytes * 8.0) / self.bandwidth_bps


class Link:
    """A unidirectional link delivering packets after the spec's delay."""

    __slots__ = ("source", "destination", "spec", "scheduler", "deliver",
                 "deliver_batch", "on_loss", "loss_probability", "jitter_s",
                 "_rng", "packets_carried", "bytes_carried", "packets_lost")

    def __init__(
        self,
        source: str,
        destination: str,
        spec: LinkSpec,
        scheduler: EventScheduler,
        deliver: Callable,
        on_loss: Optional[Callable] = None,
        seed: int = 0,
        deliver_batch: Optional[Callable] = None,
    ):
        self.source = source
        self.destination = destination
        self.spec = spec
        self.scheduler = scheduler
        #: Callback invoked as ``deliver(destination, packet)`` on arrival.
        self.deliver = deliver
        #: Batch arrival callback ``deliver_batch(destination, batch)``;
        #: ``None`` degrades :meth:`send_batch` to per-packet arrivals.
        self.deliver_batch = deliver_batch
        #: Callback invoked as ``on_loss(link, packet)`` when loss eats a packet.
        self.on_loss = on_loss
        #: Live fault parameters; start from the spec but stay mutable so a
        #: chaos schedule can flap loss on an existing link mid-run.
        self.loss_probability = spec.loss_probability
        self.jitter_s = spec.jitter_s
        # String-seeded Random uses sha512 of the seed, so the stream is
        # stable across processes (unlike hash(), which is salted).
        self._rng = random.Random(f"{seed}:{source}->{destination}")
        self.packets_carried = 0
        self.bytes_carried = 0
        self.packets_lost = 0

    def send(self, packet) -> None:
        """Start transmitting ``packet``; it arrives after the link delay."""
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self.packets_lost += 1
            if self.on_loss is not None:
                self.on_loss(self, packet)
            return
        delay = self.spec.transfer_delay(packet.size_bytes)
        if self.jitter_s > 0.0:
            delay += self._rng.uniform(0.0, self.jitter_s)
        self.scheduler.schedule(delay, self.deliver, self.destination, packet)

    def send_batch(self, batch) -> None:
        """Transmit a whole same-instant batch over this link.

        Counters, loss and jitter draws happen per packet **in packet
        order**, so the link's private RNG stream advances exactly as the
        scalar per-packet path would — a chaos run loses the same packets
        in either mode.  With jitter off, survivors arrive as one batch
        event per distinct packet size (the common uniform-size burst is
        one event); jitter forces per-packet arrival times and degrades to
        per-packet delivery.
        """
        count = len(batch)
        self.packets_carried += count
        self.bytes_carried += int(batch.size_bytes.sum())
        survivors = batch
        if self.loss_probability > 0.0:
            draw = self._rng.random
            probability = self.loss_probability
            lost = [i for i in range(count) if draw() < probability]
            if lost:
                self.packets_lost += len(lost)
                if self.on_loss is not None:
                    for packet in batch.select(np.array(lost)).packets():
                        self.on_loss(self, packet)
                if len(lost) == count:
                    return
                keep = np.ones(count, dtype=bool)
                keep[lost] = False
                survivors = batch.select(np.nonzero(keep)[0])
        if self.jitter_s > 0.0 or self.deliver_batch is None:
            for packet in survivors.packets():
                delay = self.spec.transfer_delay(packet.size_bytes)
                if self.jitter_s > 0.0:
                    delay += self._rng.uniform(0.0, self.jitter_s)
                self.scheduler.schedule(delay, self.deliver, self.destination, packet)
            return
        sizes = survivors.size_bytes
        first_size = int(sizes[0])
        if bool((sizes == sizes[0]).all()):
            delay = self.spec.transfer_delay(first_size)
            self.scheduler.schedule_batch(
                delay, self.deliver_batch, self.destination, survivors
            )
            return
        for size in np.unique(sizes).tolist():
            sub = survivors.select(np.nonzero(sizes == size)[0])
            delay = self.spec.transfer_delay(int(size))
            self.scheduler.schedule_batch(
                delay, self.deliver_batch, self.destination, sub
            )

    def __repr__(self) -> str:
        return f"<Link {self.source}->{self.destination} {self.packets_carried}pkts>"
