"""Link-state shortest-path routing.

DIFANE separates *rule placement* (flow-space partitioning, unaffected by
topology) from *reachability among switches*, which the paper delegates to
a conventional link-state protocol.  We model that protocol's steady state:
all-pairs next-hop tables computed from the current topology by Dijkstra
(latency-weighted), recomputed on topology change events.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

__all__ = ["RoutingTable", "compute_routes"]


class RoutingTable:
    """Per-node next-hop tables for every destination in the topology."""

    def __init__(self, next_hops: Dict[str, Dict[str, str]], distances: Dict[str, Dict[str, float]]):
        self._next_hops = next_hops
        self._distances = distances

    def next_hop(self, at_node: str, destination: str) -> Optional[str]:
        """The neighbor to forward to at ``at_node`` toward ``destination``.

        Returns ``None`` when the destination is unreachable or is the
        current node itself.
        """
        if at_node == destination:
            return None
        return self._next_hops.get(at_node, {}).get(destination)

    def distance(self, source: str, destination: str) -> float:
        """Latency-weighted shortest-path distance; ``inf`` if unreachable."""
        if source == destination:
            return 0.0
        return self._distances.get(source, {}).get(destination, float("inf"))

    def path(self, source: str, destination: str) -> List[str]:
        """The full node sequence from ``source`` to ``destination``.

        Empty when unreachable; ``[source]`` when source == destination.
        """
        if source == destination:
            return [source]
        path = [source]
        current = source
        seen = {source}
        while current != destination:
            hop = self.next_hop(current, destination)
            if hop is None or hop in seen:
                return []
            path.append(hop)
            seen.add(hop)
            current = hop
        return path

    def hop_count(self, source: str, destination: str) -> int:
        """Number of links on the path; -1 when unreachable."""
        path = self.path(source, destination)
        return len(path) - 1 if path else -1

    def reachable(self, source: str, destination: str) -> bool:
        """True when a path exists."""
        return bool(self.path(source, destination))


def compute_routes(topology) -> RoutingTable:
    """Build all-pairs next-hop tables for ``topology``.

    Edge weight is the link's one-way propagation delay, matching what a
    latency-optimizing IGP would converge to.  Deterministic: ties are
    broken by neighbor name so repeated runs route identically.
    """
    graph = topology.graph
    weighted = nx.Graph()
    for a, b, data in graph.edges(data=True):
        weighted.add_edge(a, b, weight=data["spec"].propagation_s)
    for node in graph.nodes:
        weighted.add_node(node)

    next_hops: Dict[str, Dict[str, str]] = {}
    distances: Dict[str, Dict[str, float]] = {}
    for source in sorted(weighted.nodes):
        lengths, paths = nx.single_source_dijkstra(weighted, source, weight="weight")
        table: Dict[str, str] = {}
        for destination, path in paths.items():
            if len(path) >= 2:
                table[destination] = path[1]
        next_hops[source] = table
        distances[source] = lengths
    return RoutingTable(next_hops, distances)
