"""The switch ↔ controller control channel.

A :class:`ControlChannel` models the out-of-band TCP session OpenFlow
uses: a fixed one-way latency each direction (the paper's testbed measured
several milliseconds of controller round trip; propagation is one part,
controller processing the other — the processing half lives in
:class:`repro.openflow.controller.Controller`'s service queue).

Message ordering per direction is FIFO, which the Barrier implementation
relies on.

Fault model and reliability
---------------------------
By default the channel is perfect and this module behaves exactly as it
always has.  Attaching a :class:`ChannelFaultModel` makes individual
*transmissions* unreliable (independent drop probability, optional extra
delay), and flips the channel into reliable mode: every message gets a
per-direction sequence number, the sender retransmits on an ack timeout
with capped exponential backoff plus jitter, and the receiver suppresses
duplicates before invoking the handler — so cache-install and
partition-update handlers stay idempotent under duplicates and
reordering.  Counters expose attempted vs. delivered messages, retries,
duplicates and permanent losses.

With faults the per-direction FIFO guarantee no longer holds (a
retransmitted message can overtake a later one); handlers behind a
faulty channel must not rely on ordering.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.net.events import EventScheduler, ScheduledEvent
from repro.obs import context as _obs_context
from repro.openflow.messages import Message

__all__ = ["ControlChannel", "ChannelFaultModel"]

#: Default one-way control channel latency (seconds).  Calibrated so the
#: NOX first-packet RTT lands near the ~10 ms the paper reports once
#: controller processing is added.
DEFAULT_CONTROL_LATENCY_S = 2e-3


@dataclass
class ChannelFaultModel:
    """Per-transmission unreliability of a control session.

    Attributes
    ----------
    drop_probability:
        Independent probability that any single transmission (data,
        retransmission, or ack) is lost.  Mutable, so a chaos schedule
        can raise it for a brownout window and restore it afterwards.
    extra_delay_s:
        Maximum uniform extra latency added per transmission.
    seed:
        Seeds the private RNG; same seed → same drop/delay stream.
    drop_pattern:
        Optional deterministic prefix: each transmission consumes one
        boolean (``True`` = drop) until the pattern is exhausted, after
        which the probabilistic model takes over.  Exists for tests that
        need exact drop placement.
    """

    drop_probability: float = 0.0
    extra_delay_s: float = 0.0
    seed: int = 0
    drop_pattern: Optional[Sequence[bool]] = None
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)
    _pattern_index: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        self._rng = random.Random(f"chan:{self.seed}")

    def drops_transmission(self) -> bool:
        """Decide the fate of the next transmission (consumes randomness)."""
        if self.drop_pattern is not None and self._pattern_index < len(self.drop_pattern):
            verdict = bool(self.drop_pattern[self._pattern_index])
            self._pattern_index += 1
            return verdict
        if self.drop_probability <= 0.0:
            return False
        return self._rng.random() < self.drop_probability

    def transmission_delay(self) -> float:
        """Extra latency for the next transmission (consumes randomness)."""
        if self.extra_delay_s <= 0.0:
            return 0.0
        return self._rng.uniform(0.0, self.extra_delay_s)


class _Pending:
    """Sender-side state of one unacked reliable message."""

    __slots__ = ("message", "attempts", "timer", "timeout_s", "on_acked")

    def __init__(self, message: Message, timeout_s: float,
                 on_acked: Optional[Callable[[], None]] = None):
        self.message = message
        self.attempts = 1
        self.timer: Optional[ScheduledEvent] = None
        self.timeout_s = timeout_s
        self.on_acked = on_acked


class ControlChannel:
    """One switch's control session to the controller.

    Parameters
    ----------
    fault_model:
        ``None`` (default) keeps the channel perfect and the behaviour
        identical to the pre-fault implementation.
    reliable:
        Enable the ack/retransmit/dedup machinery.  Default: on exactly
        when a fault model is attached.
    retx_timeout_s:
        Initial ack timeout before the first retransmission; defaults to
        four one-way latencies (comfortably above the RTT).
    max_retries:
        Retransmissions per message before declaring it permanently
        lost; ``None`` retries forever (delivery is then guaranteed for
        any drop probability below 1).
    backoff_factor / backoff_cap_s:
        Exponential backoff multiplier per retry and its cap.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        switch_name: str,
        to_controller: Callable[[Message], None],
        to_switch: Callable[[Message], None],
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
        fault_model: Optional[ChannelFaultModel] = None,
        reliable: Optional[bool] = None,
        retx_timeout_s: Optional[float] = None,
        max_retries: Optional[int] = 8,
        backoff_factor: float = 2.0,
        backoff_cap_s: float = 0.5,
        metrics=None,
    ):
        self.scheduler = scheduler
        self.switch_name = switch_name
        self._to_controller = to_controller
        self._to_switch = to_switch
        self.latency_s = latency_s
        self.fault_model = fault_model
        self.reliable = (fault_model is not None) if reliable is None else reliable
        self.retx_timeout_s = (
            4.0 * latency_s if retx_timeout_s is None else retx_timeout_s
        )
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.backoff_cap_s = backoff_cap_s
        self._backoff_rng = random.Random(f"backoff:{switch_name}")
        # Per-direction sequence numbers, unacked sends, and receiver dedup.
        self._next_seq = {"up": 0, "down": 0}
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self._seen: Dict[str, Set[int]] = {"up": set(), "down": set()}
        #: Liveness of each direction's *receiver* ("down" = the switch
        #: side, "up" = the controller side).  A dead receiver neither
        #: processes deliveries nor returns acks — see set_endpoint_alive.
        self.endpoint_alive: Dict[str, bool] = {"up": True, "down": True}
        #: Called as ``on_lost(direction, message)`` when a message is
        #: abandoned (retries exhausted, or dropped on an unreliable send).
        self.on_lost: Optional[Callable[[str, Message], None]] = None
        # Counters: attempted unique messages (the historical meaning of
        # messages_up/down), unique deliveries, and the fault breakdown.
        self.messages_up = 0
        self.messages_down = 0
        self.delivered_up = 0
        self.delivered_down = 0
        self.retries_up = 0
        self.retries_down = 0
        self.duplicates_up = 0
        self.duplicates_down = 0
        self.lost_up = 0
        self.lost_down = 0
        # Mirror the breakdown into the run's registry (aggregated over
        # channels: no switch label, matching control_plane_counters()).
        registry = metrics if metrics is not None else _obs_context.current_registry()
        self._profiler = _obs_context.current_profiler()
        self._m = {
            (direction, event): registry.counter(
                "control_channel_events_total", direction=direction, event=event
            )
            for direction in ("up", "down")
            for event in ("attempted", "delivered", "retry", "duplicate", "lost")
        }

    # -- public API -----------------------------------------------------------
    def send_to_controller(
        self,
        message: Message,
        reliable: Optional[bool] = None,
        on_acked: Optional[Callable[[], None]] = None,
    ) -> None:
        """Switch-side send; arrives at the controller after the latency."""
        self.messages_up += 1
        self._m[("up", "attempted")].inc()
        self._timed_send("up", message,
                         self.reliable if reliable is None else reliable, on_acked)

    def send_to_switch(
        self,
        message: Message,
        reliable: Optional[bool] = None,
        on_acked: Optional[Callable[[], None]] = None,
    ) -> None:
        """Controller-side send; arrives at the switch after the latency."""
        self.messages_down += 1
        self._m[("down", "attempted")].inc()
        self._timed_send("down", message,
                         self.reliable if reliable is None else reliable, on_acked)

    def _timed_send(self, direction: str, message: Message, reliable: bool,
                    on_acked: Optional[Callable[[], None]] = None) -> None:
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            started = _time.perf_counter()
            self._send(direction, message, reliable, on_acked)
            profiler.observe("channel-send", _time.perf_counter() - started)
        else:
            self._send(direction, message, reliable, on_acked)

    def counters(self) -> Dict[str, int]:
        """The attempted/delivered/retry/duplicate/lost breakdown."""
        return {
            "attempted_up": self.messages_up,
            "attempted_down": self.messages_down,
            "delivered_up": self.delivered_up,
            "delivered_down": self.delivered_down,
            "retries_up": self.retries_up,
            "retries_down": self.retries_down,
            "duplicates_up": self.duplicates_up,
            "duplicates_down": self.duplicates_down,
            "lost_up": self.lost_up,
            "lost_down": self.lost_down,
        }

    # -- transmission mechanics -------------------------------------------------
    def _send(self, direction: str, message: Message, reliable: bool,
              on_acked: Optional[Callable[[], None]] = None) -> None:
        if not reliable and self.fault_model is None:
            # Fast path: the original perfect-FIFO channel, untouched.
            self.scheduler.schedule(self.latency_s, self._deliver_unreliable,
                                    direction, message)
            if on_acked is not None:
                # Perfect channel: the ack returns one RTT after the send —
                # but only a live receiver acks (checked at delivery time).
                self.scheduler.schedule(
                    self.latency_s, self._maybe_ack_unreliable, direction, on_acked
                )
            return
        if not reliable:
            if self.fault_model.drops_transmission():
                self._count_lost(direction, message)
                return
            delay = self.latency_s + self.fault_model.transmission_delay()
            self.scheduler.schedule(delay, self._deliver_unreliable, direction, message)
            if on_acked is not None:
                self.scheduler.schedule(
                    delay, self._maybe_ack_unreliable, direction, on_acked
                )
            return
        seq = self._next_seq[direction]
        self._next_seq[direction] += 1
        pending = _Pending(message, self.retx_timeout_s, on_acked)
        self._pending[(direction, seq)] = pending
        self._transmit(direction, seq, pending)

    def _transmit(self, direction: str, seq: int, pending: _Pending) -> None:
        """One physical attempt of a reliable message, plus its ack timer."""
        if not self._drops():
            delay = self.latency_s + self._extra_delay()
            self.scheduler.schedule(delay, self._deliver_reliable,
                                    direction, seq, pending.message)
        jitter = pending.timeout_s * 0.1 * self._backoff_rng.random()
        pending.timer = self.scheduler.schedule(
            pending.timeout_s + jitter, self._ack_timeout, direction, seq
        )

    def _ack_timeout(self, direction: str, seq: int) -> None:
        pending = self._pending.get((direction, seq))
        if pending is None:
            return  # acked in the meantime
        if self.max_retries is not None and pending.attempts > self.max_retries:
            del self._pending[(direction, seq)]
            self._count_lost(direction, pending.message)
            return
        pending.attempts += 1
        pending.timeout_s = min(
            pending.timeout_s * self.backoff_factor, self.backoff_cap_s
        )
        if direction == "up":
            self.retries_up += 1
        else:
            self.retries_down += 1
        self._m[(direction, "retry")].inc()
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            started = _time.perf_counter()
            self._transmit(direction, seq, pending)
            profiler.observe("channel-retransmit", _time.perf_counter() - started)
        else:
            self._transmit(direction, seq, pending)

    def set_endpoint_alive(self, direction: str, alive: bool) -> None:
        """Mark one direction's receiver dead or alive.

        A dead receiver swallows every in-flight transmission silently —
        no handler runs, no ack returns, so reliable senders keep
        retrying until the endpoint is restored (or their retry budget
        runs out).  Callers that kill an endpoint usually also call
        :meth:`drain_pending` to settle what the dead side had in flight.
        """
        if direction not in self.endpoint_alive:
            raise ValueError(f"unknown direction {direction!r}")
        self.endpoint_alive[direction] = alive

    def _deliver_reliable(self, direction: str, seq: int, message: Message) -> None:
        if not self.endpoint_alive[direction]:
            return  # receiver is dead: no delivery, no ack
        # Ack every reception — the sender may have missed the previous ack.
        if not self._drops():
            delay = self.latency_s + self._extra_delay()
            self.scheduler.schedule(delay, self._ack_arrived, direction, seq)
        seen = self._seen[direction]
        if seq in seen:
            if direction == "up":
                self.duplicates_up += 1
            else:
                self.duplicates_down += 1
            self._m[(direction, "duplicate")].inc()
            return
        seen.add(seq)
        self._hand_over(direction, message)

    def _ack_arrived(self, direction: str, seq: int) -> None:
        pending = self._pending.pop((direction, seq), None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        if pending.on_acked is not None:
            pending.on_acked()

    def _maybe_ack_unreliable(self, direction: str,
                              on_acked: Callable[[], None]) -> None:
        """Fire an unreliable send's ack one latency on — dead receivers
        never ack, which is what makes lease-ack staleness emergent even
        on a fault-free channel."""
        if self.endpoint_alive[direction]:
            self.scheduler.schedule(self.latency_s, on_acked)

    def _deliver_unreliable(self, direction: str, message: Message) -> None:
        if not self.endpoint_alive[direction]:
            return  # receiver is dead: the transmission vanishes
        self._hand_over(direction, message)

    def _hand_over(self, direction: str, message: Message) -> None:
        self._m[(direction, "delivered")].inc()
        if direction == "up":
            self.delivered_up += 1
            self._to_controller(message)
        else:
            self.delivered_down += 1
            self._to_switch(message)

    def _count_lost(self, direction: str, message: Message) -> None:
        self._m[(direction, "lost")].inc()
        if direction == "up":
            self.lost_up += 1
        else:
            self.lost_down += 1
        if self.on_lost is not None:
            self.on_lost(direction, message)

    def _drops(self) -> bool:
        return self.fault_model is not None and self.fault_model.drops_transmission()

    def _extra_delay(self) -> float:
        return 0.0 if self.fault_model is None else self.fault_model.transmission_delay()

    def pending_messages(self) -> List[Message]:
        """Reliable messages still awaiting an ack (diagnostics)."""
        return [p.message for p in self._pending.values()]

    def drain_pending(self) -> Dict[str, int]:
        """Abort all unacked retransmit state — the endpoint died mid-flight.

        Cancels every pending ack timer so no retry fires against a dead
        endpoint.  A pending message whose sequence number the receiver
        has already seen was *delivered* (only the ack was outstanding):
        its completion callback still fires and nothing is counted lost.
        Everything else is counted permanently lost through the same
        ``lost`` counter / ``on_lost`` hook as retry exhaustion, so
        ``attempted == delivered + lost`` reconciles exactly for the
        drained messages.
        """
        drained = {"delivered": 0, "lost": 0}
        for key in sorted(self._pending):
            direction, seq = key
            pending = self._pending.pop(key)
            if pending.timer is not None:
                pending.timer.cancel()
            if seq in self._seen[direction]:
                drained["delivered"] += 1
                if pending.on_acked is not None:
                    pending.on_acked()
            else:
                drained["lost"] += 1
                self._count_lost(direction, pending.message)
        return drained

    def __repr__(self) -> str:
        return (
            f"<ControlChannel {self.switch_name} up={self.messages_up} "
            f"down={self.messages_down} lat={self.latency_s * 1e3:.2f}ms>"
        )
