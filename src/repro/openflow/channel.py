"""The switch ↔ controller control channel.

A :class:`ControlChannel` models the out-of-band TCP session OpenFlow
uses: a fixed one-way latency each direction (the paper's testbed measured
several milliseconds of controller round trip; propagation is one part,
controller processing the other — the processing half lives in
:class:`repro.openflow.controller.Controller`'s service queue).

Message ordering per direction is FIFO, which the Barrier implementation
relies on.
"""

from __future__ import annotations

from typing import Callable

from repro.net.events import EventScheduler
from repro.openflow.messages import Message

__all__ = ["ControlChannel"]

#: Default one-way control channel latency (seconds).  Calibrated so the
#: NOX first-packet RTT lands near the ~10 ms the paper reports once
#: controller processing is added.
DEFAULT_CONTROL_LATENCY_S = 2e-3


class ControlChannel:
    """One switch's control session to the controller."""

    def __init__(
        self,
        scheduler: EventScheduler,
        switch_name: str,
        to_controller: Callable[[Message], None],
        to_switch: Callable[[Message], None],
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ):
        self.scheduler = scheduler
        self.switch_name = switch_name
        self._to_controller = to_controller
        self._to_switch = to_switch
        self.latency_s = latency_s
        self.messages_up = 0
        self.messages_down = 0

    def send_to_controller(self, message: Message) -> None:
        """Switch-side send; arrives at the controller after the latency."""
        self.messages_up += 1
        self.scheduler.schedule(self.latency_s, self._to_controller, message)

    def send_to_switch(self, message: Message) -> None:
        """Controller-side send; arrives at the switch after the latency."""
        self.messages_down += 1
        self.scheduler.schedule(self.latency_s, self._to_switch, message)

    def __repr__(self) -> str:
        return (
            f"<ControlChannel {self.switch_name} up={self.messages_up} "
            f"down={self.messages_down} lat={self.latency_s * 1e3:.2f}ms>"
        )
