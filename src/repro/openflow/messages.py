"""OpenFlow 1.0 style control messages.

The subset the evaluation needs: flow installation/removal, packet punts
and re-injections, barriers (ordering), and statistics.  Messages are
plain dataclasses; the channel layer handles latency and the controller
layer handles dispatch, so these stay pure data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.flowspace.packet import Packet
from repro.flowspace.rule import Match, Rule

__all__ = [
    "Message",
    "PacketIn",
    "PacketOut",
    "FlowModCommand",
    "FlowMod",
    "FlowRemoved",
    "BarrierRequest",
    "BarrierReply",
    "StatsRequest",
    "StatsReply",
    "Heartbeat",
    "LeaseRenew",
    "OwnershipTransfer",
    "OwnershipAck",
]

_transaction_ids = itertools.count()


@dataclass
class Message:
    """Base control message; every message carries a transaction id."""

    xid: int = field(default_factory=lambda: next(_transaction_ids), init=False)


@dataclass
class PacketIn(Message):
    """Switch → controller: a packet missed every rule (Ethane/NOX path)."""

    switch: str
    packet: Packet


@dataclass
class PacketOut(Message):
    """Controller → switch: re-inject a (previously punted) packet."""

    switch: str
    packet: Packet
    actions: object  # ActionList


class FlowModCommand(Enum):
    """FlowMod verbs (the OF 1.0 subset we exercise)."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass
class FlowMod(Message):
    """Controller → switch: install / modify / delete a rule."""

    switch: str
    command: FlowModCommand
    rule: Optional[Rule] = None
    #: For DELETE: remove rules whose match equals this (when rule is None).
    match: Optional[Match] = None


@dataclass
class FlowRemoved(Message):
    """Switch → controller: a rule expired or was evicted."""

    switch: str
    rule: Rule
    reason: str = "idle-timeout"


@dataclass
class BarrierRequest(Message):
    """Controller → switch: finish everything sent so far, then reply."""

    switch: str


@dataclass
class BarrierReply(Message):
    """Switch → controller: barrier acknowledged."""

    switch: str
    request_xid: int = -1


@dataclass
class StatsRequest(Message):
    """Controller → switch: read rule counters."""

    switch: str
    match: Optional[Match] = None


@dataclass
class StatsReply(Message):
    """Switch → controller: counter snapshot per matching rule."""

    switch: str
    entries: List[tuple] = field(default_factory=list)  # (rule, packets, bytes)


@dataclass
class Heartbeat(Message):
    """Switch → controller: liveness beacon (echo-request analogue).

    Sent fire-and-forget — a lost heartbeat is exactly the signal the
    failure detector integrates over, so it must not be retransmitted.
    """

    switch: str
    beat: int = 0
    sent_at: float = 0.0


@dataclass
class LeaseRenew(Message):
    """Controller-shard leader → follower: leadership lease broadcast.

    Carries the leader's identity and monotonically increasing term; a
    follower whose lease expires (no renewal for the timeout) starts a
    deterministic election.  Sent reliably — the ARQ layer makes the
    lease tolerate channel drop/delay faults.
    """

    leader: str
    term: int = 0
    sent_at: float = 0.0


@dataclass
class OwnershipTransfer(Message):
    """Shard leader → shard: adopt these partitions (takeover handshake).

    The leader re-derives ownership of a dead shard's partitions over the
    live membership and hands each new owner its set; the transfer is
    complete only when the matching :class:`OwnershipAck` arrives, so the
    handshake inherits the channel's seq/ack reliability semantics.
    """

    shard: str
    partition_ids: tuple = ()
    term: int = 0


@dataclass
class OwnershipAck(Message):
    """Shard → leader: the partitions of an OwnershipTransfer are adopted."""

    shard: str
    partition_ids: tuple = ()
    term: int = 0
