"""The capacity-bounded controller skeleton.

A :class:`Controller` owns one :class:`~repro.openflow.channel.ControlChannel`
per switch and a CPU modelled as a
:class:`~repro.net.events.ServiceStation`: every inbound message queues for
the CPU and is dispatched to ``handle_<type>`` methods after service.  The
service rate is the famous number in this paper — a NOX-era controller
handles a few tens of thousands of flow setups per second, and that budget
is what DIFANE removes from the critical path.

Concrete controllers subclass this:

* :class:`repro.baselines.nox.NoxController` — reactive microflow install;
* :class:`repro.core.controller.DifaneController` — proactive partition
  distribution (its CPU budget only matters at configuration time, which
  is the paper's point).
"""

from __future__ import annotations

from typing import Dict

from repro.net.events import EventScheduler, ServiceStation
from repro.openflow.channel import ControlChannel, DEFAULT_CONTROL_LATENCY_S
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowRemoved,
    Message,
    PacketIn,
    StatsReply,
)

__all__ = ["Controller"]

#: Default controller flow-setup capacity (messages/second).  Calibrated to
#: the paper's NOX measurements (tens of thousands of setups/s).
DEFAULT_CONTROLLER_RATE = 50_000.0


class Controller:
    """Base controller: per-switch channels plus a bounded CPU."""

    def __init__(
        self,
        scheduler: EventScheduler,
        processing_rate: float = DEFAULT_CONTROLLER_RATE,
        queue_limit: int = 1024,
        control_latency_s: float = DEFAULT_CONTROL_LATENCY_S,
        name: str = "controller",
    ):
        self.scheduler = scheduler
        self.name = name
        self.control_latency_s = control_latency_s
        self.channels: Dict[str, ControlChannel] = {}
        self._cpu = ServiceStation(
            scheduler,
            rate=processing_rate,
            on_complete=self._dispatch,
            queue_limit=queue_limit,
            on_drop=self._on_overload,
            name=f"{name}.cpu",
        )
        self.messages_received = 0
        self.messages_dropped = 0

    # -- wiring ------------------------------------------------------------------
    def connect_switch(self, switch) -> ControlChannel:
        """Create the control session for ``switch`` and hand it over.

        ``switch`` must expose ``name`` and ``receive_control(message)``.
        """
        channel = ControlChannel(
            self.scheduler,
            switch.name,
            to_controller=self._enqueue,
            to_switch=switch.receive_control,
            latency_s=self.control_latency_s,
        )
        self.channels[switch.name] = channel
        return channel

    def channel_to(self, switch_name: str) -> ControlChannel:
        """The control session for ``switch_name``."""
        return self.channels[switch_name]

    # -- inbound path ----------------------------------------------------------------
    def _enqueue(self, message: Message) -> None:
        self.messages_received += 1
        self._cpu.submit(message)

    def _on_overload(self, message: Message) -> None:
        self.messages_dropped += 1
        self.on_message_dropped(message)

    def _dispatch(self, message: Message) -> None:
        if isinstance(message, PacketIn):
            self.handle_packet_in(message)
        elif isinstance(message, FlowRemoved):
            self.handle_flow_removed(message)
        elif isinstance(message, BarrierRequest):
            self.handle_barrier(message)
        elif isinstance(message, StatsReply):
            self.handle_stats_reply(message)
        else:
            self.handle_other(message)

    # -- hooks -------------------------------------------------------------------------
    def handle_packet_in(self, message: PacketIn) -> None:
        """React to a punted packet.  Default: ignore."""

    def handle_flow_removed(self, message: FlowRemoved) -> None:
        """React to a rule expiry notification.  Default: ignore."""

    def handle_barrier(self, message: BarrierRequest) -> None:
        """Acknowledge a barrier.  Default: immediate reply."""
        reply = BarrierReply(switch=message.switch)
        reply.request_xid = message.xid
        self.channels[message.switch].send_to_switch(reply)

    def handle_stats_reply(self, message: StatsReply) -> None:
        """Consume a counter snapshot.  Default: ignore."""

    def handle_other(self, message: Message) -> None:
        """Fallback for unclassified messages.  Default: ignore."""

    def on_message_dropped(self, message: Message) -> None:
        """Called when the CPU queue overflowed.  Default: nothing."""

    # -- statistics --------------------------------------------------------------------
    @property
    def cpu(self) -> ServiceStation:
        """The CPU service queue (for utilization/queue-depth probes)."""
        return self._cpu

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} switches={len(self.channels)} "
            f"rx={self.messages_received} dropped={self.messages_dropped}>"
        )
