"""OpenFlow 1.0 style control plane substrate.

* :mod:`repro.openflow.messages` — the message vocabulary (PacketIn,
  FlowMod, PacketOut, Barrier, Stats).
* :mod:`repro.openflow.channel` — a latency-modelled control channel
  between one switch and one controller.
* :mod:`repro.openflow.controller` — the capacity-bounded controller
  skeleton (message dispatch over a CPU service queue); concrete logic
  lives in :mod:`repro.baselines.nox` and :mod:`repro.core.controller`.
"""

from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    Heartbeat,
    Message,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.openflow.channel import ChannelFaultModel, ControlChannel
from repro.openflow.controller import Controller

__all__ = [
    "Message",
    "PacketIn",
    "PacketOut",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "BarrierRequest",
    "BarrierReply",
    "StatsRequest",
    "StatsReply",
    "Heartbeat",
    "ChannelFaultModel",
    "ControlChannel",
    "Controller",
]
