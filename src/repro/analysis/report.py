"""Plain-text rendering of tables and figure series.

The benchmark harness prints the rows/series each paper table or figure
reports; these helpers keep that output aligned and readable in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import Series

__all__ = ["render_table", "render_series_table", "format_si", "format_seconds"]


def format_si(value: float, unit: str = "") -> str:
    """Format with SI magnitude suffixes: 812345 → ``'812.3K'``."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}{unit}"
    return f"{value:.4g}{unit}"


def format_seconds(value: float) -> str:
    """Format a duration with the natural unit (s / ms / µs / ns)."""
    magnitude = abs(value)
    if magnitude >= 1.0:
        return f"{value:.3g}s"
    if magnitude >= 1e-3:
        return f"{value * 1e3:.3g}ms"
    if magnitude >= 1e-6:
        return f"{value * 1e6:.3g}us"
    return f"{value * 1e9:.3g}ns"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def fmt(cells: Sequence[str]) -> str:
        """Pad one row to the column widths."""
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_series_table(series_list: Sequence[Series], title: Optional[str] = None) -> str:
    """Render multiple series sharing an x axis as one table.

    Series with differing x grids are merged on the union of x values;
    missing points show as ``-``.
    """
    if not series_list:
        return title or ""
    xs = sorted({x for s in series_list for x in s.x})
    headers = [series_list[0].x_label] + [s.label for s in series_list]
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for s in series_list:
            y = s.y_at(x)
            row.append("-" if y is None else f"{y:.6g}")
        rows.append(row)
    return render_table(headers, rows, title=title)
