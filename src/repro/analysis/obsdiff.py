"""Compare two metrics documents and summarize regressions.

``repro obs diff A B`` loads two ``difane-metrics/1`` JSON files —
typically a fresh run against its golden, or a faulty run against a
fault-free baseline — and reports what changed: counter/gauge deltas,
histogram shifts, note changes, telemetry window drift, and (most
important) health findings present in one document but not the other.

The comparison is exact by default (the golden discipline is verbatim
byte equality); a relative tolerance loosens numeric comparisons for
cross-machine use.  Identical documents produce an empty diff and the
CLI exits 0 — the CI step pins that.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["diff_documents", "render_diff"]

#: Findings at these severities count as regressions when they appear
#: only in the candidate document.
_REGRESSION_SEVERITIES = frozenset({"warning", "critical"})


def _flatten(prefix: str, value, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, list):
        out[prefix] = repr(value)
    else:
        out[prefix] = value


def _numbers_close(a, b, rel_tolerance: float) -> bool:
    if rel_tolerance <= 0:
        return a == b
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rel_tolerance * scale


def _compare_flat(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    rel_tolerance: float,
) -> List[Dict[str, object]]:
    changes: List[Dict[str, object]] = []
    for key in sorted(set(baseline) | set(candidate)):
        if key not in baseline:
            changes.append({"key": key, "change": "added", "to": candidate[key]})
        elif key not in candidate:
            changes.append({"key": key, "change": "removed", "from": baseline[key]})
        else:
            a, b = baseline[key], candidate[key]
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and not isinstance(a, bool) and not isinstance(b, bool):
                if not _numbers_close(a, b, rel_tolerance):
                    changes.append(
                        {"key": key, "change": "changed", "from": a, "to": b}
                    )
            elif a != b:
                changes.append({"key": key, "change": "changed", "from": a, "to": b})
    return changes


def _finding_key(finding: dict) -> tuple:
    return (
        finding.get("window"),
        finding.get("detector"),
        finding.get("severity"),
        finding.get("detail"),
    )


def diff_documents(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    rel_tolerance: float = 0.0,
) -> Dict[str, object]:
    """Structured diff of two metrics documents (baseline → candidate)."""
    sections: Dict[str, List[Dict[str, object]]] = {}

    for label, getter in (
        ("meta", lambda d: {
            "schema": d.get("schema"), "experiment": d.get("experiment"),
        }),
        ("notes", lambda d: d.get("notes", {})),
        ("metrics", lambda d: d.get("metrics", {})),
        ("trace", lambda d: d.get("trace", {})),
    ):
        flat_a: Dict[str, object] = {}
        flat_b: Dict[str, object] = {}
        _flatten("", getter(baseline), flat_a)
        _flatten("", getter(candidate), flat_b)
        changes = _compare_flat(flat_a, flat_b, rel_tolerance)
        if changes:
            sections[label] = changes

    telemetry_a = baseline.get("telemetry", {})
    telemetry_b = candidate.get("telemetry", {})
    if telemetry_a or telemetry_b:
        flat_a, flat_b = {}, {}
        _flatten("", {
            "interval_s": telemetry_a.get("interval_s"),
            "windows": {
                str(w["index"]): {**w["counters"], **w.get("samples", {})}
                for w in telemetry_a.get("windows", [])
            },
        }, flat_a)
        _flatten("", {
            "interval_s": telemetry_b.get("interval_s"),
            "windows": {
                str(w["index"]): {**w["counters"], **w.get("samples", {})}
                for w in telemetry_b.get("windows", [])
            },
        }, flat_b)
        changes = _compare_flat(flat_a, flat_b, rel_tolerance)
        if changes:
            sections["telemetry"] = changes

    findings_a = {_finding_key(f): f for f in telemetry_a.get("findings", [])}
    findings_b = {_finding_key(f): f for f in telemetry_b.get("findings", [])}
    new_findings = [
        findings_b[key] for key in sorted(
            findings_b.keys() - findings_a.keys(), key=repr
        )
    ]
    resolved_findings = [
        findings_a[key] for key in sorted(
            findings_a.keys() - findings_b.keys(), key=repr
        )
    ]
    regressions = [
        finding for finding in new_findings
        if finding.get("severity") in _REGRESSION_SEVERITIES
    ]

    identical = not sections and not new_findings and not resolved_findings
    return {
        "identical": identical,
        "sections": sections,
        "new_findings": new_findings,
        "resolved_findings": resolved_findings,
        "regressions": regressions,
    }


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_diff(diff: Dict[str, object], max_rows: int = 40) -> str:
    """Human-readable rendering of :func:`diff_documents` output."""
    if diff["identical"]:
        return "documents are identical\n"
    lines: List[str] = []
    for label, changes in diff["sections"].items():
        lines.append(f"{label}: {len(changes)} difference(s)")
        for change in changes[:max_rows]:
            if change["change"] == "added":
                lines.append(
                    f"  + {change['key']} = {_format_value(change['to'])}"
                )
            elif change["change"] == "removed":
                lines.append(
                    f"  - {change['key']} = {_format_value(change['from'])}"
                )
            else:
                lines.append(
                    f"  ~ {change['key']}: {_format_value(change['from'])} "
                    f"-> {_format_value(change['to'])}"
                )
        if len(changes) > max_rows:
            lines.append(f"  ... {len(changes) - max_rows} more")
    for title, findings in (
        ("new findings", diff["new_findings"]),
        ("resolved findings", diff["resolved_findings"]),
    ):
        if findings:
            lines.append(f"{title}: {len(findings)}")
            for finding in findings:
                lines.append(
                    f"  [{finding.get('severity')}] window "
                    f"{finding.get('window')} {finding.get('detector')}: "
                    f"{finding.get('detail')}"
                )
    if diff["regressions"]:
        lines.append(
            f"REGRESSION: {len(diff['regressions'])} new "
            f"warning/critical finding(s) in the candidate document"
        )
    return "\n".join(lines) + "\n"
