"""Compare two metrics documents and summarize regressions.

``repro obs diff A B`` loads two ``difane-metrics/1`` JSON files —
typically a fresh run against its golden, or a faulty run against a
fault-free baseline — and reports what changed: counter/gauge deltas,
histogram shifts, note changes, telemetry window drift, and (most
important) health findings present in one document but not the other.

The comparison is exact by default (the golden discipline is verbatim
byte equality); a relative tolerance loosens numeric comparisons for
cross-machine use.  Identical documents produce an empty diff and the
CLI exits 0 — the CI step pins that.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["diff_documents", "render_diff"]

#: Findings at these severities count as regressions when they appear
#: only in the candidate document.
_REGRESSION_SEVERITIES = frozenset({"warning", "critical"})

#: Severity ordering for upgrade detection: a finding whose severity
#: climbs this ranking between baseline and candidate is a regression
#: even though its identity (window/detector/detail) already existed.
_SEVERITY_RANK = {"info": 0, "warning": 1, "critical": 2}


def _flatten(prefix: str, value, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, list):
        out[prefix] = repr(value)
    else:
        out[prefix] = value


def _numbers_close(a, b, rel_tolerance: float) -> bool:
    if rel_tolerance <= 0:
        return a == b
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rel_tolerance * scale


def _compare_flat(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    rel_tolerance: float,
) -> List[Dict[str, object]]:
    changes: List[Dict[str, object]] = []
    for key in sorted(set(baseline) | set(candidate)):
        if key not in baseline:
            changes.append({"key": key, "change": "added", "to": candidate[key]})
        elif key not in candidate:
            changes.append({"key": key, "change": "removed", "from": baseline[key]})
        else:
            a, b = baseline[key], candidate[key]
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and not isinstance(a, bool) and not isinstance(b, bool):
                if not _numbers_close(a, b, rel_tolerance):
                    changes.append(
                        {"key": key, "change": "changed", "from": a, "to": b}
                    )
            elif a != b:
                changes.append({"key": key, "change": "changed", "from": a, "to": b})
    return changes


def _finding_key(finding: dict) -> tuple:
    # Identity deliberately excludes severity: the same finding at a new
    # severity is a *changed* finding (an upgrade is a regression), not a
    # new/resolved pair that the regression check would miss.
    return (
        finding.get("window"),
        finding.get("detector"),
        finding.get("detail"),
    )


def diff_documents(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    rel_tolerance: float = 0.0,
) -> Dict[str, object]:
    """Structured diff of two metrics documents (baseline → candidate)."""
    sections: Dict[str, List[Dict[str, object]]] = {}

    for label, getter in (
        ("meta", lambda d: {
            "schema": d.get("schema"), "experiment": d.get("experiment"),
        }),
        ("notes", lambda d: d.get("notes", {})),
        ("metrics", lambda d: d.get("metrics", {})),
        ("trace", lambda d: d.get("trace", {})),
    ):
        flat_a: Dict[str, object] = {}
        flat_b: Dict[str, object] = {}
        _flatten("", getter(baseline), flat_a)
        _flatten("", getter(candidate), flat_b)
        changes = _compare_flat(flat_a, flat_b, rel_tolerance)
        if changes:
            sections[label] = changes

    telemetry_a = baseline.get("telemetry", {})
    telemetry_b = candidate.get("telemetry", {})
    if telemetry_a or telemetry_b:
        flat_a, flat_b = {}, {}
        _flatten("", _telemetry_view(telemetry_a), flat_a)
        _flatten("", _telemetry_view(telemetry_b), flat_b)
        changes = _compare_flat(flat_a, flat_b, rel_tolerance)
        if changes:
            sections["telemetry"] = changes

    findings_a = {_finding_key(f): f for f in telemetry_a.get("findings", [])}
    findings_b = {_finding_key(f): f for f in telemetry_b.get("findings", [])}
    new_findings = [
        findings_b[key] for key in sorted(
            findings_b.keys() - findings_a.keys(), key=repr
        )
    ]
    resolved_findings = [
        findings_a[key] for key in sorted(
            findings_a.keys() - findings_b.keys(), key=repr
        )
    ]
    changed_findings = [
        {"from": findings_a[key], "to": findings_b[key]}
        for key in sorted(findings_a.keys() & findings_b.keys(), key=repr)
        if findings_a[key].get("severity") != findings_b[key].get("severity")
    ]
    regressions = [
        finding for finding in new_findings
        if finding.get("severity") in _REGRESSION_SEVERITIES
    ] + [
        change["to"] for change in changed_findings
        if _SEVERITY_RANK.get(change["to"].get("severity"), 0)
        > _SEVERITY_RANK.get(change["from"].get("severity"), 0)
    ]

    identical = (
        not sections and not new_findings
        and not resolved_findings and not changed_findings
    )
    return {
        "identical": identical,
        "sections": sections,
        "new_findings": new_findings,
        "resolved_findings": resolved_findings,
        "changed_findings": changed_findings,
        "regressions": regressions,
    }


def _telemetry_view(section: Dict[str, object]) -> Dict[str, object]:
    """The flattenable projection of one telemetry section.

    Covers the per-class QoS additions (``slo_specs`` / ``classes`` /
    ``slo``) alongside the windows so a document that gains or changes a
    per-class section can never diff as identical.
    """
    view: Dict[str, object] = {
        "interval_s": section.get("interval_s"),
        "windows": {
            str(w["index"]): {**w["counters"], **w.get("samples", {})}
            for w in section.get("windows", [])
        },
    }
    if section.get("slo_specs"):
        view["slo_specs"] = {
            str(i): spec for i, spec in enumerate(section["slo_specs"])
        }
    if section.get("classes"):
        view["classes"] = section["classes"]
    if section.get("slo"):
        view["slo"] = section["slo"]
    return view


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_diff(diff: Dict[str, object], max_rows: int = 40) -> str:
    """Human-readable rendering of :func:`diff_documents` output."""
    if diff["identical"]:
        return "documents are identical\n"
    lines: List[str] = []
    for label, changes in diff["sections"].items():
        lines.append(f"{label}: {len(changes)} difference(s)")
        for change in changes[:max_rows]:
            if change["change"] == "added":
                lines.append(
                    f"  + {change['key']} = {_format_value(change['to'])}"
                )
            elif change["change"] == "removed":
                lines.append(
                    f"  - {change['key']} = {_format_value(change['from'])}"
                )
            else:
                lines.append(
                    f"  ~ {change['key']}: {_format_value(change['from'])} "
                    f"-> {_format_value(change['to'])}"
                )
        if len(changes) > max_rows:
            lines.append(f"  ... {len(changes) - max_rows} more")
    for title, findings in (
        ("new findings", diff["new_findings"]),
        ("resolved findings", diff["resolved_findings"]),
    ):
        if findings:
            lines.append(f"{title}: {len(findings)}")
            for finding in findings:
                lines.append(
                    f"  [{finding.get('severity')}] window "
                    f"{finding.get('window')} {finding.get('detector')}: "
                    f"{finding.get('detail')}"
                )
    changed = diff.get("changed_findings", [])
    if changed:
        lines.append(f"changed findings: {len(changed)}")
        for change in changed:
            before, after = change["from"], change["to"]
            lines.append(
                f"  ~ [{before.get('severity')} -> {after.get('severity')}] "
                f"window {after.get('window')} {after.get('detector')}: "
                f"{after.get('detail')}"
            )
    if diff["regressions"]:
        lines.append(
            f"REGRESSION: {len(diff['regressions'])} new or upgraded "
            f"warning/critical finding(s) in the candidate document"
        )
    return "\n".join(lines) + "\n"
