"""Statistical helpers: CDFs, percentiles, summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["cdf", "percentile", "summarize", "Summary"]


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF of ``values`` as sorted ``(value, fraction)`` points."""
    if not len(values):
        return []
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = len(ordered)
    return [(float(v), (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values``."""
    if not len(values):
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} median={self.median:.6g} "
            f"p95={self.p95:.6g} p99={self.p99:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (raises on empty input)."""
    if not len(values):
        raise ValueError("summarize of empty sequence")
    array = np.asarray(values, dtype=np.float64)
    return Summary(
        count=len(array),
        mean=float(array.mean()),
        median=float(np.median(array)),
        p95=float(np.percentile(array, 95)),
        p99=float(np.percentile(array, 99)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )
