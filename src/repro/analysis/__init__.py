"""Result analysis and reporting helpers for the benchmark harness."""

from repro.analysis.stats import cdf, percentile, summarize, Summary
from repro.analysis.series import Series
from repro.analysis.report import render_table, render_series_table, format_si, format_seconds
from repro.analysis.asciiplot import ascii_plot
from repro.analysis.timeline import rate_timeline, detour_timeline

__all__ = [
    "cdf",
    "percentile",
    "summarize",
    "Summary",
    "Series",
    "render_table",
    "render_series_table",
    "format_si",
    "format_seconds",
    "ascii_plot",
    "rate_timeline",
    "detour_timeline",
]
