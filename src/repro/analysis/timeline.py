"""Time-binned rate series from delivery records.

Turns a simulation's :class:`~repro.net.simnet.DeliveryRecord` stream
into rate-over-time curves (delivered/s, dropped/s, detour fraction) —
the view the paper's throughput-over-time plots take, and the tool for
spotting transients around dynamics events (failover dips, cache warm-up
ramps).

The same curves can be built from a :class:`~repro.obs.trace.PacketTracer`
export — :func:`records_from_trace` adapts terminal trace events into
record-shaped objects — so a trace JSONL captured from one run is enough
to reconstruct its timelines offline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.series import Series
from repro.obs.trace import records_like

__all__ = ["rate_timeline", "detour_timeline", "records_from_trace"]


def records_from_trace(events) -> list:
    """Adapt trace events into record objects the timeline builders accept.

    ``events`` is any iterable of :class:`~repro.obs.trace.TraceEvent` (or
    dicts from a trace JSONL); only terminal events (delivered/dropped)
    survive, each exposing ``finished_at``, ``delivered``,
    ``via_authority`` and ``via_controller``.
    """
    return records_like(events)


def rate_timeline(
    records: Sequence,
    bin_width_s: float,
    delivered_only: bool = True,
    label: str = "rate",
) -> Series:
    """Delivered (or all-outcome) packets per second, per time bin.

    Bin edges start at the first record's finish time; each point sits at
    its bin's midpoint.
    """
    if bin_width_s <= 0:
        raise ValueError(f"bin width must be positive, got {bin_width_s}")
    series = Series(label, x_label="time (s)", y_label="packets/s")
    times = [
        r.finished_at
        for r in records
        if (r.delivered or not delivered_only)
    ]
    if not times:
        return series
    start = min(times)
    # Integer binning with a tolerance: a timestamp mathematically on a
    # bin edge but represented a hair below it still lands in the bin the
    # half-open [edge, edge + width) convention assigns it to.
    array = np.asarray(times, dtype=np.float64)
    indices = np.floor((array - start) / bin_width_s + 1e-9).astype(np.int64)
    bins = int(indices.max()) + 1
    counts = np.bincount(indices, minlength=bins)
    for index in range(bins):
        series.append(
            start + (index + 0.5) * bin_width_s, counts[index] / bin_width_s
        )
    return series


def detour_timeline(
    records: Sequence,
    bin_width_s: float,
    label: str = "detour fraction",
) -> Series:
    """Fraction of delivered packets that took the authority detour, per bin.

    A falling curve is the cache warming up; a spike marks a flush or a
    failover event.
    """
    if bin_width_s <= 0:
        raise ValueError(f"bin width must be positive, got {bin_width_s}")
    series = Series(label, x_label="time (s)", y_label="fraction via authority")
    delivered = [r for r in records if r.delivered]
    if not delivered:
        return series
    start = min(r.finished_at for r in delivered)
    buckets = {}
    for record in delivered:
        index = int((record.finished_at - start) / bin_width_s)
        total, detoured = buckets.get(index, (0, 0))
        buckets[index] = (total + 1, detoured + (1 if record.via_authority else 0))
    for index in sorted(buckets):
        total, detoured = buckets[index]
        series.append(start + (index + 0.5) * bin_width_s, detoured / total)
    return series
