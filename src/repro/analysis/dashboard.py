"""ASCII dashboards over a run's metrics document.

``repro report`` reads a saved ``difane-metrics/1`` JSON and renders its
telemetry section as terminal dashboards: a throughput timeline, cache
occupancy levels, per-authority redirect load, and the health findings
table.  Everything here consumes the *document* shapes (plain dicts), so
dashboards work offline from any archived metrics file.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.report import render_table
from repro.analysis.series import Series

__all__ = [
    "counter_timeline",
    "labelled_timelines",
    "sample_timelines",
    "authority_load_series",
    "render_control_plane",
    "render_qos_points",
    "render_report",
]


def _label_of(key: str) -> str:
    """A short display label for a rendered metric key."""
    name, brace, labels = key.partition("{")
    if not brace:
        return name
    # `switch=a1` → `a1`; multi-label keys keep the full label body.
    body = labels.rstrip("}")
    parts = [part.partition("=")[2] for part in body.split(",")]
    return ",".join(parts)


def counter_timeline(
    section: Dict[str, object], name: str, label: Optional[str] = None,
    per_second: bool = True,
) -> Series:
    """Sum of every child of counter ``name``, one point per window.

    With ``per_second`` the window delta is divided by the interval, so
    the series reads as a rate (events/s) regardless of cadence.
    """
    interval = float(section.get("interval_s", 1.0)) or 1.0
    series = Series(
        label=label or name,
        x_label="time (s)",
        y_label=(name + "/s") if per_second else name,
    )
    for window in section.get("windows", []):
        total = sum(
            value for key, value in window["counters"].items()
            if key == name or key.startswith(name + "{")
        )
        series.append(window["start"], total / interval if per_second else total)
    return series


def labelled_timelines(
    section: Dict[str, object], name: str, per_second: bool = False
) -> List[Series]:
    """One window-delta series per labelled child of counter ``name``."""
    interval = float(section.get("interval_s", 1.0)) or 1.0
    by_key: Dict[str, Series] = {}
    for window in section.get("windows", []):
        for key, value in window["counters"].items():
            if key != name and not key.startswith(name + "{"):
                continue
            series = by_key.get(key)
            if series is None:
                series = by_key[key] = Series(
                    label=_label_of(key), x_label="time (s)",
                    y_label=(name + "/s") if per_second else name,
                )
            series.append(
                window["start"], value / interval if per_second else value
            )
    return [by_key[key] for key in sorted(by_key)]


def sample_timelines(section: Dict[str, object], prefix: str) -> List[Series]:
    """One series per sampled level key starting with ``prefix``."""
    by_key: Dict[str, Series] = {}
    for window in section.get("windows", []):
        for key, value in window.get("samples", {}).items():
            if not key.startswith(prefix):
                continue
            series = by_key.get(key)
            if series is None:
                series = by_key[key] = Series(
                    label=_label_of(key), x_label="time (s)", y_label=prefix
                )
            series.append(window["start"], value)
    return [by_key[key] for key in sorted(by_key)]


def authority_load_series(section: Dict[str, object]) -> List[Series]:
    """Per-authority redirect load over time (the balance claim)."""
    return labelled_timelines(section, "difane_redirects_handled_total")


def render_control_plane(section: Dict[str, object]) -> str:
    """Shard membership, lease/migration events and ownership counts.

    Renders the ``difane-control-plane/1`` document section: one row per
    shard (leader mark, liveness, partitions owned now), the migration
    ledger, and the non-heartbeat control-plane events (elections,
    adoptions, shard kills) — the observable story of a C2 run.
    """
    blocks: List[str] = []
    header = (
        f"Control plane: {section.get('n_shards', '?')} shard(s), "
        f"leader {section.get('leader', '?')}, term {section.get('term', 0)}"
    )
    blocks.append(header)
    shards = section.get("shards", [])
    if shards:
        blocks.append(render_table(
            ["shard", "role", "alive", "partitions owned", "count"],
            [
                [
                    shard["name"],
                    "leader" if shard.get("leader") else "follower",
                    "yes" if shard.get("alive") else "no",
                    ",".join(str(pid) for pid in shard.get("partitions", []))
                    or "-",
                    len(shard.get("partitions", [])),
                ]
                for shard in shards
            ],
            title="Per-shard ownership",
        ))
    migrations = section.get("migrations", [])
    if migrations:
        blocks.append(render_table(
            ["partition", "from", "to", "reason", "phase", "start", "done"],
            [
                [
                    m["partition"], m["source"], m["target"], m["reason"],
                    m["phase"], m["started_at"],
                    m["completed_at"] if m["completed_at"] is not None else "-",
                ]
                for m in migrations
            ],
            title=f"Partition migrations ({len(migrations)})",
        ))
    else:
        blocks.append("Partition migrations: none")
    events = [
        event for event in section.get("events", [])
        if event.get("event") != "lease-renewal"
    ]
    if events:
        blocks.append(render_table(
            ["time", "event", "shard", "detail"],
            [
                [e["time"], e["event"], e["shard"], e.get("detail", "")]
                for e in events
            ],
            title=f"Control-plane events ({len(events)}, leases elided)",
        ))
    return "\n\n".join(blocks)


def _class_table(classes: Dict[str, Dict[str, object]], title: str) -> str:
    return render_table(
        [
            "class", "cache hits", "authority hits", "redirects",
            "miss rate", "delivered", "dropped", "shed", "p99 redirect",
        ],
        [
            [
                cls,
                stats["cache_hits"], stats["authority_hits"],
                stats["redirects"],
                "-" if stats["miss_rate"] is None
                else f"{stats['miss_rate']:.4f}",
                stats["delivered"], stats["dropped"], stats["shed"],
                "-" if stats["redirect_p99_s"] is None
                else f"{stats['redirect_p99_s']:g}s",
            ]
            for cls, stats in classes.items()
        ],
        title=title,
    )


def _slo_table(slo: Dict[str, Dict[str, object]], title: str) -> str:
    return render_table(
        [
            "class", "budget", "eligible", "bad", "budget left",
            "burn (short)", "burn (long)", "burns", "exhausted",
        ],
        [
            [
                cls,
                f"{entry['budget']:g}",
                entry["eligible_windows"], entry["bad_windows"],
                f"{entry['budget_remaining']:.1%}",
                f"{entry['max_burn_short']:g}x",
                f"{entry['max_burn_long']:g}x",
                entry["burn_findings"], entry["exhausted_findings"],
            ]
            for cls, entry in slo.items()
        ],
        title=title,
    )


def _findings_table(findings: List[Dict[str, object]], title: str) -> str:
    return render_table(
        ["window", "severity", "detector", "detail"],
        [
            [f["window"], f["severity"], f["detector"], f["detail"]]
            for f in findings
        ],
        title=title,
    )


def render_qos_points(points: Dict[str, object]) -> List[str]:
    """Per-mode SLO dashboards for a QoS sweep's ``notes.points``.

    The E9 sweep runs each protection mode in its own run context, so
    the document's telemetry slot stays empty and the per-class data
    lives under the notes.  Render one dashboard per mode: traffic
    table, error-budget table, and that mode's SLO findings.
    """
    blocks: List[str] = []
    for mode, point in points.items():
        if not isinstance(point, dict):
            continue
        classes = point.get("classes")
        slo = point.get("slo")
        if not classes and not slo:
            continue
        if classes:
            blocks.append(_class_table(classes, f"Per-class traffic [{mode}]"))
        if slo:
            blocks.append(_slo_table(
                slo, f"Per-class SLO error budgets [{mode}]"
            ))
        findings = point.get("slo_findings")
        if findings:
            blocks.append(_findings_table(
                findings, f"SLO findings [{mode}] ({len(findings)})"
            ))
        else:
            blocks.append(f"SLO findings [{mode}]: none")
    return blocks


def render_report(document: Dict[str, object], width: int = 64, height: int = 12) -> str:
    """The full ASCII dashboard for one metrics document."""
    blocks: List[str] = []
    title = document.get("title") or document.get("experiment", "run")
    blocks.append(f"{title}\n{'=' * len(str(title))}")
    blocks.append(
        f"experiment: {document.get('experiment', '?')}   "
        f"schema: {document.get('schema', '?')}"
    )

    section = document.get("telemetry")
    if not section:
        blocks.append(
            "(no telemetry section — re-run with --telemetry to record "
            "time series)"
        )
    else:
        windows = section.get("windows", [])
        if not windows:
            # Explicit empty state: a telemetry section with zero windows
            # means the run ended before the first boundary — distinct
            # from "telemetry was never enabled" above.
            blocks.append(
                "telemetry: enabled but no windows closed (run shorter "
                f"than the {section.get('interval_s')}s interval)"
            )
        else:
            blocks.append(
                f"telemetry: {len(windows)} windows at "
                f"{section.get('interval_s')}s cadence"
            )
        throughput = counter_timeline(
            section, "packets_delivered_total", label="delivered/s"
        )
        injected = counter_timeline(
            section, "packets_injected_total", label="offered/s"
        )
        if len(throughput) or len(injected):
            blocks.append(ascii_plot(
                [injected, throughput],
                width=width, height=height, title="Throughput",
            ))
        load = authority_load_series(section)
        if load:
            blocks.append(ascii_plot(
                load, width=width, height=height,
                title="Authority-switch load (redirects handled per window)",
            ))
        occupancy = sample_timelines(section, "difane_cache_occupancy")
        if occupancy:
            blocks.append(ascii_plot(
                occupancy, width=width, height=height,
                title="Cache occupancy (entries)",
            ))
        classes = section.get("classes")
        if classes:
            blocks.append(_class_table(classes, "Per-class traffic"))
        slo = section.get("slo")
        if slo:
            blocks.append(_slo_table(slo, "Per-class SLO error budgets"))
        findings = section.get("findings")
        if findings:
            blocks.append(_findings_table(
                findings, f"Health findings ({len(findings)})"
            ))
        elif findings is None:
            # Empty state distinct from "evaluated, nothing fired": this
            # document predates (or skipped) health evaluation entirely.
            blocks.append("Health findings: not evaluated for this document")
        else:
            blocks.append("Health findings: none")

    points = (document.get("notes") or {}).get("points")
    if isinstance(points, dict):
        blocks.extend(render_qos_points(points))

    control_plane = document.get("control_plane")
    if control_plane:
        blocks.append(render_control_plane(control_plane))

    trace = document.get("trace")
    if trace:
        blocks.append(render_table(
            ["trace", "count"],
            [[key, trace[key]] for key in sorted(trace)],
            title="Trace accounting",
        ))

    return "\n\n".join(blocks) + "\n"
