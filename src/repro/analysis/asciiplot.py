"""Minimal ASCII line plots for figure series.

The benchmark harness archives numeric tables; the CLI additionally
renders a quick terminal plot so the *shape* of each figure (saturation
knees, crossovers, linear scaling) is visible without leaving the shell.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.series import Series

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    log_x: bool = False,
) -> str:
    """Render series as an ASCII scatter/line chart.

    Each series gets a marker; the legend maps markers to labels.  Axes
    are linearly scaled (optionally log-x for rate sweeps).
    """
    populated = [s for s in series_list if len(s)]
    if not populated:
        return title or "(no data)"

    def x_of(value: float) -> float:
        """Map an x value onto the (optionally log) axis."""
        if log_x:
            return math.log10(value) if value > 0 else 0.0
        return value

    xs = [x_of(x) for s in populated for x in s.x]
    ys = [y for s in populated for y in s.y]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(populated):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(series.x, series.y):
            column = int((x_of(x) - x_low) / x_span * (width - 1))
            row = int((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    y_label = populated[0].y_label
    lines.append(f"{y_high:>12.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_low:>12.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 13 + "└" + "─" * width)
    x_axis_label = populated[0].x_label + (" (log)" if log_x else "")
    left = f"{(10 ** x_low if log_x else x_low):.4g}"
    right = f"{(10 ** x_high if log_x else x_high):.4g}"
    lines.append(" " * 14 + left + " " * max(1, width - len(left) - len(right)) + right)
    lines.append(" " * 14 + f"[{x_axis_label}]  y: {y_label}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(populated)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)
