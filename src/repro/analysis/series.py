"""A labelled (x, y) data series — the unit every figure experiment returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Series"]


@dataclass
class Series:
    """One curve of a figure.

    Attributes
    ----------
    label:
        Legend entry, e.g. ``"DIFANE"`` or ``"cover-set"``.
    x / y:
        Paired coordinates.
    x_label / y_label:
        Axis names for rendering.
    meta:
        Free-form extras (parameters used, notes).
    """

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"
    meta: Dict[str, object] = field(default_factory=dict)

    def append(self, x: float, y: float) -> None:
        """Add one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def points(self) -> List[Tuple[float, float]]:
        """All points as tuples."""
        return list(zip(self.x, self.y))

    def y_at(self, x: float) -> Optional[float]:
        """The y value at an exact x, or ``None``."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        return None

    def __len__(self) -> int:
        return len(self.x)

    def __repr__(self) -> str:
        return f"Series({self.label!r}, {len(self.x)} points)"
