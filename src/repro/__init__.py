"""DIFANE reproduction: scalable flow-based networking, in Python.

This package reproduces *"Scalable Flow-Based Networking with DIFANE"*
(Yu, Rexford, Freedman, Wang — SIGCOMM 2010): distributed rule management
that keeps all packets in the data plane by partitioning the flow space
across authority switches and reactively caching independent wildcard
rules at ingress switches.

Quick start::

    from repro import (TopologyBuilder, FIVE_TUPLE_LAYOUT,
                       routing_policy_for_topology, DifaneNetwork)

    topo = TopologyBuilder.three_tier_campus()
    rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
    net = DifaneNetwork.build(topo, rules, FIVE_TUPLE_LAYOUT,
                              authority_count=2, cache_capacity=128)

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
evaluation.
"""

from repro.flowspace import (
    Action,
    ActionList,
    Drop,
    Encapsulate,
    FieldSpec,
    FIVE_TUPLE_LAYOUT,
    Forward,
    format_ip,
    HeaderLayout,
    HeaderSpace,
    ip_prefix_to_ternary,
    Match,
    OPENFLOW_10_LAYOUT,
    Packet,
    parse_ip,
    Rule,
    RuleTable,
    SendToController,
    SetField,
    Ternary,
    ternary_to_ip_prefix,
    TupleSpaceTable,
    TWO_FIELD_LAYOUT,
)
from repro.flowspace.engine import (
    ENGINE_CHOICES,
    DecisionTreeEngine,
    LinearEngine,
    MatchEngine,
    TupleSpaceEngine,
    create_engine,
    get_default_engine,
    set_default_engine,
)
from repro.flowspace.rule import RuleKind
from repro.net import (
    EventScheduler,
    FailureInjector,
    LinkSpec,
    RoutingTable,
    ServiceStation,
    SimNetwork,
    Topology,
    TopologyBuilder,
    compute_routes,
)
from repro.switch import (
    CacheManager,
    DifanePipeline,
    EvictionPolicy,
    Tcam,
    TcamFullError,
    aggregate_counters,
)
from repro.core import (
    ChurnWorkload,
    DifaneController,
    DifaneNetwork,
    DifaneSwitch,
    Partition,
    PartitionResult,
    assign_partitions,
    build_partition_rules,
    choose_authority_switches,
    generate_cache_rule,
    generate_cache_rules,
    partition_policy,
    prune_shadowed_rules,
    shadow_report,
)
from repro.baselines import (
    NoxController,
    NoxNetwork,
    NoxSwitch,
    ProactiveNetwork,
    simulate_microflow_cache,
    simulate_wildcard_cache,
)
from repro.workloads import (
    campus_policy,
    generate_classbench,
    packet_sequence,
    routing_policy_for_topology,
    Trace,
    vpn_policy,
    ZipfSampler,
)

__version__ = "1.0.0"

__all__ = [
    # flowspace
    "Ternary", "HeaderLayout", "FieldSpec", "Match", "Rule", "RuleKind",
    "RuleTable", "TupleSpaceTable", "Packet", "HeaderSpace", "Action", "ActionList", "Forward",
    "MatchEngine", "LinearEngine", "TupleSpaceEngine", "DecisionTreeEngine",
    "ENGINE_CHOICES", "create_engine", "get_default_engine", "set_default_engine",
    "Drop", "Encapsulate", "SendToController", "SetField",
    "OPENFLOW_10_LAYOUT", "FIVE_TUPLE_LAYOUT", "TWO_FIELD_LAYOUT",
    "parse_ip", "format_ip", "ip_prefix_to_ternary", "ternary_to_ip_prefix",
    # net
    "EventScheduler", "ServiceStation", "LinkSpec", "Topology",
    "TopologyBuilder", "RoutingTable", "compute_routes", "SimNetwork",
    "FailureInjector",
    # switch
    "Tcam", "TcamFullError", "CacheManager", "EvictionPolicy",
    "DifanePipeline", "aggregate_counters",
    # core
    "partition_policy", "Partition", "PartitionResult", "assign_partitions",
    "build_partition_rules", "generate_cache_rule", "generate_cache_rules",
    "DifaneSwitch", "DifaneController", "DifaneNetwork",
    "choose_authority_switches", "prune_shadowed_rules", "shadow_report",
    "ChurnWorkload",
    # baselines
    "NoxController", "NoxSwitch", "NoxNetwork", "ProactiveNetwork",
    "simulate_microflow_cache", "simulate_wildcard_cache",
    # workloads
    "generate_classbench", "campus_policy", "vpn_policy",
    "routing_policy_for_topology", "packet_sequence", "ZipfSampler", "Trace",
]
