"""Deterministic per-point seed derivation for parallel sweeps.

The determinism contract of the sweep runner rests on one rule: a sweep
point's seed is a pure function of ``(root_seed, point_key)`` — never of
worker identity, scheduling order, or how many points run concurrently.
Two runs of the same sweep with different ``--jobs`` therefore feed every
point the same randomness, and their outputs are byte-identical.

Seeds are derived by hashing a canonical encoding of the key material
with SHA-256 (stable across processes and Python versions, unlike
``hash()``, which is salted per process for strings).
"""

from __future__ import annotations

import hashlib
from typing import Union

__all__ = ["derive_seed", "canonical_key"]

#: Key material accepted by :func:`derive_seed`: scalars or (nested)
#: tuples/lists/dicts of scalars.
KeyLike = Union[None, bool, int, float, str, bytes, tuple, list, dict]


def canonical_key(key: KeyLike) -> str:
    """A stable, order-insensitive-for-dicts string encoding of ``key``.

    Lists and tuples encode identically (both are "a sequence of parts");
    dict items are sorted by key so two equal mappings always encode the
    same way.  Floats use ``repr`` (shortest round-trip form), so equal
    floats encode equally on every platform we run on.
    """
    if isinstance(key, (list, tuple)):
        return "(" + ",".join(canonical_key(part) for part in key) + ")"
    if isinstance(key, dict):
        items = sorted((str(name), canonical_key(value)) for name, value in key.items())
        return "{" + ",".join(f"{name}={value}" for name, value in items) + "}"
    if isinstance(key, bytes):
        return "b:" + key.hex()
    if isinstance(key, bool):
        # Before int: True would otherwise collide with 1.
        return f"bool:{key}"
    if isinstance(key, (int, float, str)) or key is None:
        return f"{type(key).__name__}:{key!r}"
    raise TypeError(f"unhashable sweep key component: {key!r} ({type(key).__name__})")


def derive_seed(root_seed: int, point_key: KeyLike, bits: int = 63) -> int:
    """The seed for sweep point ``point_key`` under ``root_seed``.

    Returns a non-negative ``bits``-bit integer (63 by default, so the
    result fits a signed 64-bit int everywhere it might be stored).
    """
    if not 1 <= bits <= 256:
        raise ValueError(f"bits must be in [1, 256], got {bits}")
    payload = f"{int(root_seed)}\x1f{canonical_key(point_key)}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest, "big") >> (256 - bits)
