"""Host provenance: who measured this number?

Benchmark archives under ``benchmarks/results/`` are committed and
compared across machines and PRs; a wall-clock figure is meaningless
without the hardware and runtime that produced it.  Every archive embeds
:func:`host_provenance` so results are comparable (or at least
explainable) across hosts.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional

__all__ = ["host_provenance", "cpu_model"]


def cpu_model() -> str:
    """A human-readable CPU model string (best effort, never raises)."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_provenance(jobs: Optional[int] = None) -> Dict[str, object]:
    """Machine/runtime facts to stamp into a benchmark archive."""
    provenance: Dict[str, object] = {
        "cpu_model": cpu_model(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": "%s %s" % (
            platform.python_implementation(),
            sys.version.split()[0],
        ),
    }
    if jobs is not None:
        provenance["jobs"] = jobs
    return provenance
