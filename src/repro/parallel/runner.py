"""The deterministic process-pool sweep runner.

:class:`SweepRunner` fans a sweep's points out over a
``concurrent.futures.ProcessPoolExecutor`` and reassembles results in
point order.  The determinism contract — ``jobs=N`` output byte-identical
to ``jobs=1`` — holds because:

* **inputs** — every point's parameters (seeds included) are fixed
  before fan-out; nothing depends on worker identity or completion
  order (use :func:`repro.parallel.seeds.derive_seed` for replicate
  seeds);
* **execution** — each point runs in a fresh observability context
  inside its worker, so points cannot observe each other in either
  mode;
* **outputs** — results are reassembled in submission (= point) order,
  and per-point metric registries are folded into the caller's registry
  through the merge algebra (counters add, histograms add bucket-wise:
  associative and commutative, so the fold equals serial accumulation —
  the simulator emits no gauges, whose max-merge would not).

The pool propagates the process-wide knobs every worker needs — the
default match engine, the artifact-cache directory, and the caller's
observability configuration — through a worker initializer, because a
``spawn``-start pool (macOS/Windows) inherits none of them.

Packet tracing is the one surface the pool does not transport (events
live in a ring buffer whose interleaving is scheduling-dependent), so a
run with tracing enabled degrades to in-process execution rather than
silently losing trace events.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.parallel.seeds import derive_seed

__all__ = ["SweepRunner", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, 0/negative → all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- worker side (module-level: must be picklable by reference) -------------

_WORKER_OBS: Dict[str, Any] = {
    "metrics_enabled": True,
    "profile": False,
    "telemetry_interval_s": None,
}


def _init_worker(
    engine_name: str,
    cache_dir: Optional[str],
    metrics_enabled: bool,
    profile: bool,
    telemetry_interval_s: Optional[float] = None,
    columnar: bool = False,
    sketch: bool = False,
) -> None:
    """Propagate process-wide knobs into a freshly started worker."""
    from repro.flowspace.batch import set_columnar
    from repro.flowspace.engine import set_default_engine
    from repro.obs.sketch import set_sketch_mode
    from repro.parallel.cache import configure_artifact_cache

    set_default_engine(engine_name)
    configure_artifact_cache(cache_dir)
    set_columnar(columnar)
    set_sketch_mode(sketch)
    _WORKER_OBS["metrics_enabled"] = metrics_enabled
    _WORKER_OBS["profile"] = profile
    _WORKER_OBS["telemetry_interval_s"] = telemetry_interval_s


def _execute_point(fn: Callable[..., Any], params: Dict[str, Any]):
    """Run one sweep point in an isolated run context; ship metrics back."""
    from repro.obs import fresh_run_context

    context = fresh_run_context(
        metrics_enabled=_WORKER_OBS["metrics_enabled"],
        profile=_WORKER_OBS["profile"],
        telemetry=_WORKER_OBS["telemetry_interval_s"],
    )
    value = fn(**params)
    registry = context.metrics if context.metrics.enabled else None
    # Telemetry windows ship as a plain dict: index → deltas/samples.
    # The parent folds them window-wise (sum/max), which is associative
    # and commutative — jobs=N telemetry equals the serial series.
    telemetry = (
        context.telemetry.dump_windows() if context.telemetry.enabled else None
    )
    return value, registry, telemetry


class SweepRunner:
    """Run per-point functions across a sweep, serially or in a pool.

    ``fn`` must be a module-level callable (workers resolve it by
    qualified name) and every parameter value picklable.  With
    ``jobs <= 1`` points run in the caller's process *and* observability
    context — the exact historical serial code path; with ``jobs > 1``
    they run in worker processes and their registries are merged back.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)

    # -- execution ---------------------------------------------------------
    def map(
        self,
        fn: Callable[..., Any],
        param_sets: Sequence[Dict[str, Any]],
    ) -> List[Any]:
        """``[fn(**params) for params in param_sets]``, possibly in parallel.

        Results come back in ``param_sets`` order regardless of worker
        scheduling.
        """
        from repro.obs import context as obs_context

        param_sets = list(param_sets)
        jobs = min(self.jobs, len(param_sets)) if param_sets else 1
        if jobs <= 1 or obs_context.current_tracer().enabled:
            return [fn(**params) for params in param_sets]

        from repro.flowspace.batch import columnar_enabled
        from repro.flowspace.engine import get_default_engine
        from repro.obs.sketch import sketch_enabled
        from repro.parallel.cache import artifact_cache

        parent = obs_context.current()
        cache_dir = artifact_cache().cache_dir
        init_args = (
            get_default_engine(),
            str(cache_dir) if cache_dir is not None else None,
            parent.metrics.enabled,
            parent.profiler.enabled,
            parent.telemetry.interval_s if parent.telemetry.enabled else None,
            columnar_enabled(),
            sketch_enabled(),
        )
        try:
            executor = ProcessPoolExecutor(
                max_workers=jobs, initializer=_init_worker, initargs=init_args
            )
        except (OSError, PermissionError, ValueError):
            # No subprocess support on this host: degrade to serial.
            return [fn(**params) for params in param_sets]
        with executor:
            futures = [
                executor.submit(_execute_point, fn, params)
                for params in param_sets
            ]
            # Ordered reassembly: gather in submission order, then fold
            # registries in that same order (the merge is commutative, so
            # this is belt-and-braces, not load-bearing).
            outcomes = [future.result() for future in futures]
        values: List[Any] = []
        for value, registry, telemetry in outcomes:
            values.append(value)
            if registry is not None and parent.metrics.enabled:
                parent.metrics.merge_from(registry)
            if telemetry is not None and parent.telemetry.enabled:
                parent.telemetry.merge_dump(telemetry)
        return values

    def map_seeded(
        self,
        fn: Callable[..., Any],
        keys: Sequence[Any],
        base_params: Optional[Dict[str, Any]] = None,
        root_seed: int = 0,
        seed_param: str = "seed",
    ) -> List[Any]:
        """Replicate sweep: one point per key, seeded by ``(root_seed, key)``.

        Per-point seeds come from :func:`derive_seed`, so they depend
        only on the key — never on worker count or scheduling order.
        """
        base = dict(base_params or {})
        param_sets = [
            {**base, seed_param: derive_seed(root_seed, key)} for key in keys
        ]
        return self.map(fn, param_sets)
