"""Content-addressed workload artifact cache.

Sweeps rebuild identical inputs at every point: the same ClassBench
ruleset, the same flow-header draw, the same Zipf packet sequence, the
same flow-space partition.  The cache memoizes those artifacts by a
stable hash of their *generating parameters* (content addressing: equal
parameters ⇒ equal artifact, because every builder is deterministic), in
two tiers:

* **memory** — a per-process dict; a hit returns the very same objects,
  so serial sweeps restructured as per-point builds stay byte-identical
  to the historical build-once-reuse code;
* **disk** (optional) — pickles under ``--cache-dir`` (the CLI defaults
  it to ``~/.cache/repro``), shared across processes and warm reruns.
  Writes are atomic (temp file + rename), so concurrent sweep workers
  can share a directory safely.

Hit/miss traffic is surfaced through the observability registry as
``artifact_cache_events_total{kind=...,outcome=memory|disk|build}``.
Those counters describe the harness, not the simulated system, and their
values legitimately differ between ``--jobs 1`` and ``--jobs N`` (each
worker process misses once) — so the canonical metrics document excludes
them, exactly like wall-clock ``profile_*`` histograms.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.parallel.seeds import canonical_key

__all__ = [
    "ArtifactCache",
    "artifact_cache",
    "configure_artifact_cache",
    "classbench_ruleset",
    "flow_headers",
    "zipf_packet_sequence",
    "policy_partitions",
]

#: Default disk location when caching is enabled without an explicit dir.
DEFAULT_CACHE_DIR = "~/.cache/repro"


class ArtifactCache:
    """Two-tier (memory, optional disk) content-addressed artifact store."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir: Optional[Path] = (
            Path(os.path.expanduser(cache_dir)) if cache_dir else None
        )
        self._memo: Dict[str, Any] = {}

    # -- keying ------------------------------------------------------------
    @staticmethod
    def key_for(kind: str, params: Dict[str, Any]) -> str:
        """The content address of ``(kind, params)``: a SHA-256 hex digest."""
        payload = f"{kind}\x1f{canonical_key(params)}".encode()
        return hashlib.sha256(payload).hexdigest()

    # -- the one entry point ----------------------------------------------
    def get(
        self,
        kind: str,
        params: Dict[str, Any],
        build: Callable[[], Any],
        disk: bool = True,
    ) -> Any:
        """The artifact for ``(kind, params)``, building it on first use.

        ``disk=False`` restricts the artifact to the in-process tier —
        used for artifacts holding object identity other components rely
        on (partition results reference the policy's live ``Rule``
        objects; an unpickled copy would break identity-based matching).
        """
        key = self.key_for(kind, params)
        if key in self._memo:
            self._count(kind, "memory")
            return self._memo[key]
        if disk and self.cache_dir is not None:
            artifact = self._disk_read(kind, key)
            if artifact is not None:
                self._count(kind, "disk")
                self._memo[key] = artifact
                return artifact
        artifact = build()
        self._count(kind, "build")
        self._memo[key] = artifact
        if disk and self.cache_dir is not None:
            self._disk_write(kind, key, artifact)
        return artifact

    # -- disk tier ---------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.cache_dir / kind / f"{key}.pkl"

    def _disk_read(self, kind: str, key: str) -> Optional[Any]:
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def _disk_write(self, kind: str, key: str, artifact: Any) -> None:
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # A read-only or full cache dir degrades to memory-only.
            pass

    # -- accounting --------------------------------------------------------
    def _count(self, kind: str, outcome: str) -> None:
        from repro.obs import context as _obs_context

        _obs_context.current_registry().counter(
            "artifact_cache_events_total", kind=kind, outcome=outcome
        ).inc()


# ---------------------------------------------------------------------------
# Process-wide default instance (the CLI's --cache-dir configures it; the
# sweep runner's worker initializer re-configures it inside each worker).
# ---------------------------------------------------------------------------

_cache = ArtifactCache()


def artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache."""
    return _cache


def configure_artifact_cache(cache_dir: Optional[str]) -> ArtifactCache:
    """Install a fresh process-wide cache rooted at ``cache_dir``.

    ``None`` means memory-only.  Returns the new cache.
    """
    global _cache
    _cache = ArtifactCache(cache_dir)
    return _cache


# ---------------------------------------------------------------------------
# Cached builders for the workload artifacts every sweep rebuilds.
# ---------------------------------------------------------------------------


def _layout_key(layout) -> List:
    return [[field.name, field.width] for field in layout.fields]


def classbench_ruleset(
    profile: str, count: int, seed: int, layout, **kwargs
) -> List:
    """A (cached) ClassBench classifier; see ``generate_classbench``.

    Returns a fresh list each call (callers may slice or extend it); the
    ``Rule`` objects inside are shared on memory hits, which is exactly
    the historical build-once-reuse behaviour.
    """
    from repro.workloads.classbench import generate_classbench

    params = {"profile": profile, "count": count, "seed": seed,
              "layout": _layout_key(layout), **kwargs}
    rules = _cache.get(
        "classbench",
        params,
        lambda: generate_classbench(
            profile=profile, count=count, seed=seed, layout=layout, **kwargs
        ),
    )
    return list(rules)


def flow_headers(
    policy_params: Dict[str, Any], layout, count: int, seed: int, **kwargs
) -> List[int]:
    """Cached ``flow_headers_for_policy`` over a cached ClassBench policy.

    ``policy_params`` are the exact keyword arguments of
    :func:`classbench_ruleset` — the headers' content address includes
    the policy's, so the pair is consistent by construction.
    """
    from repro.workloads.traffic import flow_headers_for_policy

    params = {"policy": dict(policy_params), "layout": _layout_key(layout),
              "count": count, "seed": seed, **kwargs}
    headers = _cache.get(
        "flow-headers",
        params,
        lambda: flow_headers_for_policy(
            classbench_ruleset(layout=layout, **policy_params),
            count, seed=seed, **kwargs,
        ),
    )
    return list(headers)


def zipf_packet_sequence(
    policy_params: Dict[str, Any],
    layout,
    n_flows: int,
    flows_seed: int,
    n_packets: int,
    alpha: float,
    seed: int,
) -> List[int]:
    """Cached Zipf packet sequence over cached flow headers."""
    from repro.workloads.traffic import packet_sequence

    params = {"policy": dict(policy_params), "layout": _layout_key(layout),
              "n_flows": n_flows, "flows_seed": flows_seed,
              "n_packets": n_packets, "alpha": alpha, "seed": seed}
    sequence = _cache.get(
        "zipf-sequence",
        params,
        lambda: packet_sequence(
            flow_headers(policy_params, layout, n_flows, flows_seed),
            n_packets, alpha=alpha, seed=seed,
        ),
    )
    return list(sequence)


def policy_partitions(policy_params: Dict[str, Any], layout, num_partitions: int):
    """Cached flow-space partition of a cached ClassBench policy.

    Memory-tier only: a ``PartitionResult`` references the policy's live
    ``Rule`` objects, and downstream matching relies on that identity —
    an unpickled disk copy would silently break it.
    """
    from repro.core.partition import partition_policy

    params = {"policy": dict(policy_params), "layout": _layout_key(layout),
              "num_partitions": num_partitions}
    return _cache.get(
        "partitions",
        params,
        lambda: partition_policy(
            classbench_ruleset(layout=layout, **policy_params),
            layout, num_partitions=num_partitions,
        ),
        disk=False,
    )
