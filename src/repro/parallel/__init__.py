"""Parallel execution substrate: deterministic sweeps + artifact cache.

Every experiment in this reproduction is an embarrassingly parallel
sweep over parameter points and seeds.  This package makes those sweeps
saturate the host without losing determinism:

* :mod:`repro.parallel.seeds` — per-point seed derivation from
  ``(root_seed, point_key)`` via SHA-256, never worker-order-dependent;
* :mod:`repro.parallel.runner` — :class:`SweepRunner`, a process-pool
  fan-out with ordered result reassembly and per-worker metrics merged
  through the registry's associative merge algebra, so ``jobs=N`` output
  is byte-identical to ``jobs=1``;
* :mod:`repro.parallel.cache` — :class:`ArtifactCache`, content-addressed
  memoization of built ClassBench rulesets, flow-space partitions and
  generated traces (in-process, optionally on disk);
* :mod:`repro.parallel.provenance` — host provenance recorded into every
  benchmark archive so results are comparable across machines.
"""

from repro.parallel.cache import (
    ArtifactCache,
    artifact_cache,
    classbench_ruleset,
    configure_artifact_cache,
    flow_headers,
    policy_partitions,
    zipf_packet_sequence,
)
from repro.parallel.provenance import host_provenance
from repro.parallel.runner import SweepRunner, resolve_jobs
from repro.parallel.seeds import derive_seed

__all__ = [
    "ArtifactCache",
    "SweepRunner",
    "artifact_cache",
    "classbench_ruleset",
    "configure_artifact_cache",
    "derive_seed",
    "flow_headers",
    "host_provenance",
    "policy_partitions",
    "resolve_jobs",
    "zipf_packet_sequence",
]
