"""DIFANE's three-stage switch pipeline.

Paper §2: every DIFANE switch evaluates, in order,

1. **cache rules** — reactively installed, cover the hot traffic;
2. **authority rules** — present only on authority switches, cover that
   switch's flow-space partition;
3. **partition rules** — present on every ingress switch, low priority,
   map each partition to its (primary) authority switch with an
   encapsulate action.

In hardware all three share one TCAM with disjoint priority bands; we keep
them in three :class:`~repro.switch.tcam.Tcam` regions so experiments can
budget and count each independently, and the lookup tries them in order —
which is exactly equivalent to the banded-priority arrangement because
stage ordering dominates priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule, RuleKind
from repro.switch.tcam import Tcam

__all__ = ["PipelineStage", "LookupResult", "DifanePipeline"]


class PipelineStage(Enum):
    """Which stage of the pipeline matched (or MISS)."""

    CACHE = "cache"
    AUTHORITY = "authority"
    PARTITION = "partition"
    MISS = "miss"


@dataclass
class LookupResult:
    """The outcome of a pipeline lookup."""

    rule: Optional[Rule]
    stage: PipelineStage

    @property
    def is_miss(self) -> bool:
        """True when nothing in any stage matched."""
        return self.rule is None


class DifanePipeline:
    """Three banded TCAM regions evaluated in stage order.

    Parameters
    ----------
    layout:
        Header layout for every stage.
    cache_capacity:
        Entry budget for the cache region (the knob the cache-miss
        experiments sweep).  ``None`` = unbounded.
    authority_capacity:
        Entry budget for authority rules (the partitioning experiments
        measure how much is needed).  ``None`` = unbounded.
    partition_capacity:
        Entry budget for partition rules — small by design (one per
        partition; the paper's point is that this is tiny).
    """

    def __init__(
        self,
        layout: HeaderLayout,
        cache_capacity: Optional[int] = None,
        authority_capacity: Optional[int] = None,
        partition_capacity: Optional[int] = None,
    ):
        self.layout = layout
        self.cache = Tcam(layout, cache_capacity)
        self.authority = Tcam(layout, authority_capacity)
        self.partition = Tcam(layout, partition_capacity)
        self.misses = 0

    def lookup(self, packet: Packet, now: Optional[float] = None) -> LookupResult:
        """Match ``packet`` through the stages in DIFANE order."""
        rule = self.cache.lookup(packet, now)
        if rule is not None:
            return LookupResult(rule, PipelineStage.CACHE)
        rule = self.authority.lookup(packet, now)
        if rule is not None:
            return LookupResult(rule, PipelineStage.AUTHORITY)
        rule = self.partition.lookup(packet, now)
        if rule is not None:
            return LookupResult(rule, PipelineStage.PARTITION)
        self.misses += 1
        return LookupResult(None, PipelineStage.MISS)

    def install(self, rule: Rule, now: Optional[float] = None, **kwargs) -> Rule:
        """Install ``rule`` into the region its :class:`RuleKind` selects."""
        region = self._region_for(rule.kind)
        return region.install(rule, now=now, **kwargs)

    def _region_for(self, kind: RuleKind) -> Tcam:
        if kind is RuleKind.CACHE:
            return self.cache
        if kind is RuleKind.AUTHORITY:
            return self.authority
        if kind is RuleKind.PARTITION:
            return self.partition
        raise ValueError(f"rule kind {kind} does not belong in a DIFANE pipeline")

    def total_entries(self) -> int:
        """TCAM entries across all three regions (per-switch footprint)."""
        return len(self.cache) + len(self.authority) + len(self.partition)

    def __repr__(self) -> str:
        return (
            f"<DifanePipeline cache={len(self.cache)} "
            f"authority={len(self.authority)} partition={len(self.partition)}>"
        )
