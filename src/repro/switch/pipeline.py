"""DIFANE's three-stage switch pipeline.

Paper §2: every DIFANE switch evaluates, in order,

1. **cache rules** — reactively installed, cover the hot traffic;
2. **authority rules** — present only on authority switches, cover that
   switch's flow-space partition;
3. **partition rules** — present on every ingress switch, low priority,
   map each partition to its (primary) authority switch with an
   encapsulate action.

In hardware all three share one TCAM with disjoint priority bands; we keep
them in three :class:`~repro.switch.tcam.Tcam` regions so experiments can
budget and count each independently, and the lookup tries them in order —
which is exactly equivalent to the banded-priority arrangement because
stage ordering dominates priority.
"""

from __future__ import annotations

import time as _time
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.flowspace.engine import EngineSpec
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule, RuleKind
from repro.switch.tcam import Tcam

__all__ = ["PipelineStage", "LookupResult", "DifanePipeline"]


class PipelineStage(Enum):
    """Which stage of the pipeline matched (or MISS)."""

    CACHE = "cache"
    AUTHORITY = "authority"
    PARTITION = "partition"
    MISS = "miss"


class LookupResult:
    """The outcome of a pipeline lookup.

    One of these is built per packet on the scalar hot path, so it is a
    ``__slots__`` class rather than a dataclass (no per-instance dict).
    """

    __slots__ = ("rule", "stage")

    def __init__(self, rule: Optional[Rule], stage: PipelineStage):
        self.rule = rule
        self.stage = stage

    @property
    def is_miss(self) -> bool:
        """True when nothing in any stage matched."""
        return self.rule is None

    def __repr__(self) -> str:
        return f"LookupResult(rule={self.rule!r}, stage={self.stage!r})"


class DifanePipeline:
    """Three banded TCAM regions evaluated in stage order.

    Parameters
    ----------
    layout:
        Header layout for every stage.
    cache_capacity:
        Entry budget for the cache region (the knob the cache-miss
        experiments sweep).  ``None`` = unbounded.
    authority_capacity:
        Entry budget for authority rules (the partitioning experiments
        measure how much is needed).  ``None`` = unbounded.
    partition_capacity:
        Entry budget for partition rules — small by design (one per
        partition; the paper's point is that this is tiny).
    engine:
        Lookup backend shared by all three regions (see
        :mod:`repro.flowspace.engine`); ``None`` uses the process default.
    """

    def __init__(
        self,
        layout: HeaderLayout,
        cache_capacity: Optional[int] = None,
        authority_capacity: Optional[int] = None,
        partition_capacity: Optional[int] = None,
        engine: EngineSpec = None,
    ):
        self.layout = layout
        self.cache = Tcam(layout, cache_capacity, engine=engine)
        self.authority = Tcam(layout, authority_capacity, engine=engine)
        self.partition = Tcam(layout, partition_capacity, engine=engine)
        self.misses = 0
        # Observability: bound at attach time (the network, and hence
        # the run's registry, is unknown at construction).  Until then
        # the stage counters are absent and lookups cost nothing extra.
        self._m_stage: Optional[dict] = None
        self._profiler = None

    def bind_observability(self, metrics, profiler=None) -> None:
        """Register per-stage lookup counters (and optional wall-time
        profiling of the engine lookup) into ``metrics``."""
        self._m_stage = {
            stage: metrics.counter("pipeline_lookups_total", stage=stage.value)
            for stage in PipelineStage
        }
        self._profiler = profiler

    def lookup(self, packet: Packet, now: Optional[float] = None) -> LookupResult:
        """Match ``packet`` through the stages in DIFANE order."""
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            started = _time.perf_counter()
            result = self._lookup(packet, now)
            profiler.observe("pipeline-lookup", _time.perf_counter() - started)
            return result
        return self._lookup(packet, now)

    def _lookup(self, packet: Packet, now: Optional[float]) -> LookupResult:
        stages = self._m_stage
        rule = self.cache.lookup(packet, now)
        if rule is not None:
            if stages is not None:
                stages[PipelineStage.CACHE].inc()
            return LookupResult(rule, PipelineStage.CACHE)
        rule = self.authority.lookup(packet, now)
        if rule is not None:
            if stages is not None:
                stages[PipelineStage.AUTHORITY].inc()
            return LookupResult(rule, PipelineStage.AUTHORITY)
        rule = self.partition.lookup(packet, now)
        if rule is not None:
            if stages is not None:
                stages[PipelineStage.PARTITION].inc()
            return LookupResult(rule, PipelineStage.PARTITION)
        self.misses += 1
        if stages is not None:
            stages[PipelineStage.MISS].inc()
        return LookupResult(None, PipelineStage.MISS)

    def lookup_batch(
        self, packets: Sequence[Packet], now: Optional[float] = None
    ) -> List[LookupResult]:
        """Batch :meth:`lookup`: classify a burst stage-by-stage.

        Each stage's engine is dispatched once for the whole burst (the
        point of :meth:`MatchEngine.batch_lookup`); packets that miss a
        stage flow to the next one, preserving per-packet results and all
        hit/miss counters exactly as sequential :meth:`lookup` calls would.
        """
        results: List[Optional[LookupResult]] = [None] * len(packets)
        pending = list(range(len(packets)))
        stages = self._m_stage
        for tcam, stage in (
            (self.cache, PipelineStage.CACHE),
            (self.authority, PipelineStage.AUTHORITY),
            (self.partition, PipelineStage.PARTITION),
        ):
            if not pending:
                break
            subset = [packets[i] for i in pending]
            winners = tcam.lookup_batch(subset, now)
            still_pending = []
            for index, winner in zip(pending, winners):
                if winner is not None:
                    results[index] = LookupResult(winner, stage)
                    if stages is not None:
                        stages[stage].inc()
                else:
                    still_pending.append(index)
            pending = still_pending
        for index in pending:
            self.misses += 1
            results[index] = LookupResult(None, PipelineStage.MISS)
        if stages is not None and pending:
            stages[PipelineStage.MISS].inc(len(pending))
        return results

    def classify_batch(
        self, batch, now: Optional[float] = None
    ) -> List[Tuple[PipelineStage, Optional[Rule], np.ndarray]]:
        """Columnar :meth:`lookup_batch`: classify a whole batch per stage.

        Returns ``(stage, rule, indices)`` groups — ``indices`` are
        positions within ``batch`` (ascending within each group), ``rule``
        is ``None`` only for the trailing MISS group.  Stage counters,
        ``misses`` and per-rule hit statistics land exactly as per-packet
        :meth:`lookup` calls would; only the grouping (and therefore the
        downstream action-execution order within one same-instant batch)
        differs, which the metrics document cannot observe.
        """
        stages = self._m_stage
        groups: List[Tuple[PipelineStage, Optional[Rule], np.ndarray]] = []
        pending = np.arange(len(batch))
        sub = batch
        for tcam, stage in (
            (self.cache, PipelineStage.CACHE),
            (self.authority, PipelineStage.AUTHORITY),
            (self.partition, PipelineStage.PARTITION),
        ):
            if not pending.size:
                break
            winners, rules = tcam.match_batch(sub, now)
            matched = winners >= 0
            hit_count = int(matched.sum())
            if hit_count:
                if stages is not None:
                    stages[stage].inc(hit_count)
                hit_indices = pending[matched]
                hit_winners = winners[matched]
                for index in np.unique(hit_winners).tolist():
                    groups.append(
                        (stage, rules[index], hit_indices[hit_winners == index])
                    )
                pending = pending[~matched]
                if pending.size:
                    sub = batch.select(pending)
        if pending.size:
            self.misses += int(pending.size)
            if stages is not None:
                stages[PipelineStage.MISS].inc(int(pending.size))
            groups.append((PipelineStage.MISS, None, pending))
        return groups

    def install(self, rule: Rule, now: Optional[float] = None, **kwargs) -> Rule:
        """Install ``rule`` into the region its :class:`RuleKind` selects."""
        region = self._region_for(rule.kind)
        return region.install(rule, now=now, **kwargs)

    def _region_for(self, kind: RuleKind) -> Tcam:
        if kind is RuleKind.CACHE:
            return self.cache
        if kind is RuleKind.AUTHORITY:
            return self.authority
        if kind is RuleKind.PARTITION:
            return self.partition
        raise ValueError(f"rule kind {kind} does not belong in a DIFANE pipeline")

    def total_entries(self) -> int:
        """TCAM entries across all three regions (per-switch footprint)."""
        return len(self.cache) + len(self.authority) + len(self.partition)

    def __repr__(self) -> str:
        return (
            f"<DifanePipeline cache={len(self.cache)} "
            f"authority={len(self.authority)} partition={len(self.partition)}>"
        )
