"""Switch substrate: TCAM, caches, the DIFANE pipeline, data-plane switches.

* :mod:`repro.switch.tcam` — a capacity-bounded ternary match table.
* :mod:`repro.switch.cache` — eviction policies (LRU, timeouts) for the
  reactively-installed cache rules at ingress switches.
* :mod:`repro.switch.pipeline` — DIFANE's three-stage lookup (cache →
  authority → partition).
* :mod:`repro.switch.switch` — the base data-plane switch with a bounded
  packet-processing budget; concrete behaviours live in
  :mod:`repro.core` (DIFANE) and :mod:`repro.baselines` (NOX).
* :mod:`repro.switch.counters` — fold per-fragment counters back onto the
  operator's policy rules.
"""

from repro.switch.tcam import Tcam, TcamFullError
from repro.switch.cache import CacheManager, EvictionPolicy
from repro.switch.pipeline import DifanePipeline, LookupResult, PipelineStage
from repro.switch.switch import DataPlaneSwitch
from repro.switch.counters import aggregate_counters

__all__ = [
    "Tcam",
    "TcamFullError",
    "CacheManager",
    "EvictionPolicy",
    "DifanePipeline",
    "LookupResult",
    "PipelineStage",
    "DataPlaneSwitch",
    "aggregate_counters",
]
