"""Cache-rule management at ingress switches.

DIFANE ingress switches hold reactively-installed wildcard **cache rules**
in a bounded TCAM region.  The paper keeps cache maintenance simple — the
partition rules below the cache guarantee correctness whatever the cache
contents, so eviction is purely a performance knob.  We implement the
policies the evaluation exercises:

* **LRU** — evict the least recently hit cache rule (the paper's default);
* **FIFO** — evict the oldest install (ablation);
* **RANDOM** — evict uniformly at random (ablation baseline);
* **COST** — flow-driven cost-aware eviction (FDRC-style): the victim is
  the entry with the lowest predicted re-fetch cost, a GreedyDual-style
  score combining a deterministic EWMA of the entry's hit rate, the
  headerspace coverage of the cached fragment, and the measured redirect
  penalty to the owning authority switch;
* idle / hard **timeouts** — the mechanism host-mobility handling relies
  on (§4 of the paper): stale cache rules age out.

The manager's bookkeeping is index-backed: an exact occupancy counter, a
``(match, actions)``-keyed duplicate map, and a lazy-stale min-heap keyed
per policy replace the per-install linear scans of the original
implementation.  :class:`ScanCacheManager` keeps those scans alive as the
equivalence oracle for property tests.  The indexes stay exact even when
callers mutate the TCAM directly (``evict_if``/``clear``) because they are
maintained from the TCAM's observer hooks, not from the manager's own
call sites.
"""

from __future__ import annotations

import heapq
import math
import random
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.flowspace.rule import Rule, RuleKind
from repro.switch.tcam import Tcam

__all__ = ["EvictionPolicy", "CacheManager", "ScanCacheManager"]

#: EWMA step for the manager-level re-fetch penalty estimate (used for
#: entries installed without a per-rule penalty stamp).
_PENALTY_ALPHA = 0.25


class EvictionPolicy(Enum):
    """Which cache rule to sacrifice when the cache region is full."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    COST = "cost"


class _Entry:
    """Per-cached-rule index record.

    ``order_key`` mirrors the rule table's ``(-priority, insertion seq)``
    iteration order so heap ties resolve exactly like the scan oracle's
    first-minimal ``min()``.  COST state (EWMA ``rate``, cached ``score``,
    headerspace ``coverage``) lives here so both the indexed manager and
    the scan oracle read identical numbers.
    """

    __slots__ = ("rule", "order_key", "alive", "rate", "last_obs", "score",
                 "coverage")

    def __init__(self, rule: Rule, order_key: Tuple[int, int]):
        self.rule = rule
        self.order_key = order_key
        self.alive = True
        self.rate = 0.0
        self.last_obs: Optional[float] = None
        self.score = 0.0
        self.coverage = 0.0


class CacheManager:
    """Bounded cache region of an ingress switch's TCAM.

    Parameters
    ----------
    tcam:
        The TCAM holding the cache rules (cache rules only — DIFANE stores
        partition rules in a separate, tiny region; see
        :class:`repro.switch.pipeline.DifanePipeline`).
    capacity:
        Maximum number of cache rules.
    policy:
        Eviction policy; LRU matches the paper.
    default_idle_timeout / default_hard_timeout:
        Timeouts stamped onto installed cache rules (seconds; ``None``
        disables).
    cost_tau:
        COST policy: EWMA time constant (seconds) of the per-entry hit
        rate; hits decay by ``exp(-dt/tau)``.
    cost_base_penalty:
        COST policy: the re-fetch penalty (seconds) that normalizes the
        score to 1.0 per expected hit when no measured penalty exists.
    cost_coverage_weight:
        COST policy: weight of the fragment's headerspace coverage term
        (a fully wildcarded fragment scores ``1 + weight`` times an
        exact-match one at equal rate and penalty).
    class_weights:
        QoS: per-flow-class multipliers on the COST score (see
        :mod:`repro.obs.qos`).  Empty/None leaves scoring untouched.
    reserved:
        QoS: per-flow-class reserved entry counts.  While a class holds
        at most its reservation, its entries are never selected as
        victims for *other* classes' installs (residency protection).
    """

    def __init__(
        self,
        tcam: Tcam,
        capacity: int,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        default_idle_timeout: Optional[float] = None,
        default_hard_timeout: Optional[float] = None,
        seed: int = 0,
        cost_tau: float = 1.0,
        cost_base_penalty: float = 1e-3,
        cost_coverage_weight: float = 1.0,
        class_weights: Optional[Dict[str, float]] = None,
        reserved: Optional[Dict[str, int]] = None,
    ):
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self.tcam = tcam
        self.capacity = capacity
        self.policy = policy
        self.default_idle_timeout = default_idle_timeout
        self.default_hard_timeout = default_hard_timeout
        self._rng = random.Random(seed)
        self.inserted = 0
        #: Churn attribution split: capacity/policy evictions vs timeout
        #: expirations vs policy-change invalidations.  The legacy
        #: ``evicted`` total is the :attr:`evicted` property (their sum).
        self.evicted_capacity = 0
        self.expired = 0
        self.invalidated = 0
        self.cost_tau = float(cost_tau)
        self.cost_base_penalty = float(cost_base_penalty)
        self.cost_coverage_weight = float(cost_coverage_weight)
        #: Running estimate of the redirect penalty, fed by the
        #: ``refetch_penalty_s`` stamps on installed rules.
        self.refetch_penalty_ewma: Optional[float] = None
        # GreedyDual inflation clock: raised to the victim's score on every
        # capacity eviction, so long-resident entries age without rescans.
        self._cost_clock = 0.0
        # -- QoS residency protection (empty = zero-overhead legacy path) --
        self._class_weights: Dict[str, float] = {}
        self._reserved: Dict[str, int] = {}
        self._class_occupancy: Dict[str, int] = {}
        # -- indexes (maintained from the TCAM's observer hooks) --
        self._entries: Dict[int, _Entry] = {}
        self._by_key: Dict[tuple, Rule] = {}
        self._occupancy = 0
        self._heap: List[tuple] = []
        self._push_seq = 0
        self._install_seq = 0
        for rule in tcam.rules(RuleKind.CACHE):
            self._note_install(rule)
        tcam.add_install_hook(self._note_install)
        tcam.add_evict_hook(self._note_evict)
        if policy is EvictionPolicy.COST:
            tcam.add_hit_hook(self._note_hit)
        if class_weights:
            self.set_class_weights(class_weights)
        if reserved:
            self.set_reservations(reserved)

    # -- installs ---------------------------------------------------------------
    def cache_rules(self) -> List[Rule]:
        """Cache rules currently installed."""
        return self.tcam.rules(RuleKind.CACHE)

    def occupancy(self) -> int:
        """Number of cache rules installed."""
        return self._occupancy

    @property
    def evicted(self) -> int:
        """Total cache rules removed — the golden-compatible aggregate."""
        return self.evicted_capacity + self.expired + self.invalidated

    def eviction_breakdown(self) -> Dict[str, int]:
        """The churn split: capacity evictions / expirations / invalidations."""
        return {
            "evicted": self.evicted_capacity,
            "expired": self.expired,
            "invalidated": self.invalidated,
        }

    # -- QoS protection knobs ---------------------------------------------------
    def set_class_weights(self, weights: Optional[Dict[str, float]]) -> None:
        """Install per-class COST score multipliers (QoS residency bias).

        Rescores live entries so the heap reflects the new weights
        immediately; non-COST policies just store them (inert).
        """
        self._class_weights = {
            name: float(value) for name, value in (weights or {}).items()
        }
        if self.policy is EvictionPolicy.COST:
            for entry in self._entries.values():
                self._rescore(entry)

    def set_reservations(self, reserved: Optional[Dict[str, int]]) -> None:
        """Install per-class reserved entry counts (residency protection).

        Rebuilds the per-class occupancy index from the live entries, so
        reservations configured after warm-up still count what's already
        resident.
        """
        self._reserved = {
            name: int(value)
            for name, value in (reserved or {}).items()
            if int(value) > 0
        }
        self._class_occupancy = {}
        if self._reserved:
            for entry in self._entries.values():
                name = entry.rule.flow_class
                if name is not None:
                    self._class_occupancy[name] = (
                        self._class_occupancy.get(name, 0) + 1
                    )

    def _shielded(self, rule: Rule, installing_class: Optional[str]) -> bool:
        """True when ``rule`` sits inside its class's reservation and the
        install pressuring it comes from a *different* class."""
        name = rule.flow_class
        if name is None or name == installing_class:
            return False
        reserve = self._reserved.get(name, 0)
        return 0 < self._class_occupancy.get(name, 0) <= reserve

    def install(self, rule: Rule, now: float) -> Optional[Rule]:
        """Install a cache rule, evicting per policy if needed.

        Returns the installed rule, or ``None`` when ``capacity`` is zero
        (caching disabled).  Duplicate installs (same match & actions
        already present) refresh the existing rule instead of consuming a
        new entry — the common case when several packets of one flow miss
        back-to-back before the install completes.
        """
        if self.capacity == 0:
            return None
        if rule.kind is not RuleKind.CACHE:
            raise ValueError(f"expected a cache rule, got {rule.kind}")
        existing = self._find_duplicate(rule)
        if existing is not None:
            existing.last_hit_at = now
            if self.policy is EvictionPolicy.COST:
                entry = self._entries.get(id(existing))
                if entry is not None:
                    self._observe(entry, 1, now)
            return existing
        while self.occupancy() >= self.capacity:
            victim = self._select_victim(now, installing_class=rule.flow_class)
            if victim is None:
                return None
            self._evict_victim(victim)
        if rule.idle_timeout is None:
            rule.idle_timeout = self.default_idle_timeout
        if rule.hard_timeout is None:
            rule.hard_timeout = self.default_hard_timeout
        self._note_penalty(rule)
        self.tcam.install(rule, now=now)
        self.inserted += 1
        return rule

    def set_capacity(self, capacity: int, now: float = 0.0) -> List[Rule]:
        """Retarget the cache budget, evicting down per policy if shrinking.

        This is the controller's budget-partitioning hook: per-switch
        budgets computed from offered load land here.  Returns the rules
        evicted to fit the new budget (counted as capacity evictions).
        """
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        evicted: List[Rule] = []
        while self.occupancy() > self.capacity:
            victim = self._select_victim(now)
            if victim is None and self._reserved:
                # A shrink must land whatever the reservations say; the
                # protection only arbitrates *between* classes at equal
                # total budget.
                victim = self._select_victim(now, ignore_protection=True)
            if victim is None:
                break
            self._evict_victim(victim)
            evicted.append(victim)
        return evicted

    def _evict_victim(self, victim: Rule) -> None:
        if self.policy is EvictionPolicy.COST:
            entry = self._entries.get(id(victim))
            if entry is not None:
                self._cost_clock = max(self._cost_clock, entry.score)
        self.tcam.evict(victim)
        self.evicted_capacity += 1

    def _find_duplicate(self, rule: Rule) -> Optional[Rule]:
        return self._by_key.get((rule.match, rule.actions))

    def _select_victim(
        self,
        now: Optional[float] = None,
        installing_class: Optional[str] = None,
        ignore_protection: bool = False,
    ) -> Optional[Rule]:
        guard = bool(self._reserved) and not ignore_protection
        if self.policy is EvictionPolicy.RANDOM:
            candidates = self.cache_rules()
            if guard:
                candidates = [
                    rule for rule in candidates
                    if not self._shielded(rule, installing_class)
                ]
            if not candidates:
                return None
            return self._rng.choice(candidates)
        if self._occupancy == 0:
            return None
        heap = self._heap
        cost = self.policy is EvictionPolicy.COST
        # Shielded entries popped during the search are parked here and
        # re-pushed afterwards: re-pushing a *current* key immediately
        # would pop the same tuple again forever.
        deferred: List[tuple] = []
        victim: Optional[Rule] = None
        while heap:
            key, order_key, _seq, entry = heapq.heappop(heap)
            if not entry.alive:
                continue
            current = entry.score if cost else self._sort_key(entry)
            if key != current:
                # Stale tuple.  LRU/FIFO keys move without a push (hits
                # mutate last_hit_at directly), so requeue at the current
                # key; COST pushes on every score change, so a fresh tuple
                # already exists and the stale one just drops.
                if not cost:
                    self._push(entry, current)
                continue
            if guard and self._shielded(entry.rule, installing_class):
                deferred.append((current, entry))
                continue
            # Keep the heap covering every alive entry even if the caller
            # decides not to evict the returned victim.
            self._push(entry, current)
            victim = entry.rule
            break
        for key, entry in deferred:
            self._push(entry, key)
        return victim

    # -- index maintenance (TCAM observer hooks) --------------------------------
    def _note_install(self, rule: Rule) -> None:
        if rule.kind is not RuleKind.CACHE:
            return
        order_key = (-rule.priority, self._install_seq)
        self._install_seq += 1
        entry = _Entry(rule, order_key)
        self._entries[id(rule)] = entry
        self._by_key[(rule.match, rule.actions)] = rule
        self._occupancy += 1
        if self._reserved:
            cls = rule.flow_class
            if cls is not None:
                self._class_occupancy[cls] = self._class_occupancy.get(cls, 0) + 1
        if self.policy is EvictionPolicy.COST:
            ternary = rule.match.ternary
            if ternary.width:
                entry.coverage = ternary.wildcard_bits() / ternary.width
            entry.rate = 1.0 / self.cost_tau
            entry.last_obs = rule.installed_at
            self._rescore(entry)
        elif self.policy is not EvictionPolicy.RANDOM:
            self._push(entry, self._sort_key(entry))

    def _note_evict(self, rule: Rule) -> None:
        entry = self._entries.pop(id(rule), None)
        if entry is None:
            return
        entry.alive = False
        key = (rule.match, rule.actions)
        if self._by_key.get(key) is rule:
            del self._by_key[key]
        self._occupancy -= 1
        if self._reserved:
            cls = rule.flow_class
            if cls is not None:
                remaining = self._class_occupancy.get(cls, 0) - 1
                if remaining > 0:
                    self._class_occupancy[cls] = remaining
                else:
                    self._class_occupancy.pop(cls, None)

    def _note_hit(self, rule: Rule, count: int, now: Optional[float]) -> None:
        entry = self._entries.get(id(rule))
        if entry is not None:
            self._observe(entry, count, now)

    def _note_penalty(self, rule: Rule) -> None:
        penalty = rule.refetch_penalty_s
        if penalty is None:
            return
        if self.refetch_penalty_ewma is None:
            self.refetch_penalty_ewma = float(penalty)
        else:
            self.refetch_penalty_ewma += _PENALTY_ALPHA * (
                penalty - self.refetch_penalty_ewma
            )

    # -- COST scoring -----------------------------------------------------------
    def _observe(self, entry: _Entry, count: int, now: Optional[float]) -> None:
        if now is not None:
            if entry.last_obs is not None and now > entry.last_obs:
                entry.rate *= math.exp((entry.last_obs - now) / self.cost_tau)
            if entry.last_obs is None or now > entry.last_obs:
                entry.last_obs = now
        entry.rate += count / self.cost_tau
        self._rescore(entry)

    def _rescore(self, entry: _Entry) -> None:
        entry.score = self._cost_clock + self._value(entry)
        self._push(entry, entry.score)

    def _value(self, entry: _Entry) -> float:
        penalty = entry.rule.refetch_penalty_s
        if penalty is None:
            penalty = self.refetch_penalty_ewma
        if penalty is None or penalty <= 0.0:
            penalty = self.cost_base_penalty
        value = (
            (entry.rate * self.cost_tau)
            * (penalty / self.cost_base_penalty)
            * (1.0 + self.cost_coverage_weight * entry.coverage)
        )
        if self._class_weights:
            value *= self._class_weights.get(entry.rule.flow_class, 1.0)
        return value

    # -- heap -------------------------------------------------------------------
    def _sort_key(self, entry: _Entry) -> float:
        if self.policy is EvictionPolicy.FIFO:
            return _install_time(entry.rule)
        return _last_activity(entry.rule)

    def _push(self, entry: _Entry, key: float) -> None:
        heapq.heappush(self._heap, (key, entry.order_key, self._push_seq, entry))
        self._push_seq += 1
        if len(self._heap) > max(64, 4 * self._occupancy):
            self._compact()

    def _compact(self) -> None:
        cost = self.policy is EvictionPolicy.COST
        heap = []
        seq = 0
        for entry in self._entries.values():
            key = entry.score if cost else self._sort_key(entry)
            heap.append((key, entry.order_key, seq, entry))
            seq += 1
        heapq.heapify(heap)
        self._heap = heap
        self._push_seq = seq

    # -- maintenance ----------------------------------------------------------------
    def expire(self, now: float) -> List[Rule]:
        """Evict cache rules whose timeouts have elapsed."""
        expired = self.tcam.evict_if(
            lambda rule: rule.kind is RuleKind.CACHE and rule.is_expired(now)
        )
        self.expired += len(expired)
        return expired

    def invalidate_origin(self, policy_rule: Rule) -> List[Rule]:
        """Evict every cache rule derived from ``policy_rule``.

        This is the policy-change path: when the controller updates a rule,
        authority switches flush the cache entries it spawned.  Matching is
        by identity with a stable-id fallback so rules that crossed a
        serialization or shard-migration boundary (same ``rule_id`` but a
        different object) still invalidate.
        """
        flushed = self.tcam.evict_if(
            lambda rule: rule.kind is RuleKind.CACHE
            and _derives_from(rule, policy_rule)
        )
        self.invalidated += len(flushed)
        return flushed

    def flush(self) -> List[Rule]:
        """Evict all cache rules (e.g. on ingress switch reset)."""
        flushed = self.tcam.evict_if(lambda rule: rule.kind is RuleKind.CACHE)
        self.invalidated += len(flushed)
        return flushed


class ScanCacheManager(CacheManager):
    """Reference oracle: the pre-index linear scans over shared state.

    Overrides only the three scan points (occupancy, duplicate detection,
    victim selection) with the original O(n) implementations; every piece
    of state maintenance — counters, COST scores, penalty EWMA — is
    inherited, so property tests can drive an indexed manager and a scan
    manager through identical operation sequences and require the same
    victims, survivors, and counters byte-for-byte.
    """

    def occupancy(self) -> int:
        return len(self.cache_rules())

    def _find_duplicate(self, rule: Rule) -> Optional[Rule]:
        for existing in self.cache_rules():
            if existing.match == rule.match and existing.actions == rule.actions:
                return existing
        return None

    def _select_victim(
        self,
        now: Optional[float] = None,
        installing_class: Optional[str] = None,
        ignore_protection: bool = False,
    ) -> Optional[Rule]:
        candidates = self.cache_rules()
        if self._reserved and not ignore_protection:
            candidates = [
                rule for rule in candidates
                if not self._shielded(rule, installing_class)
            ]
        if not candidates:
            return None
        if self.policy is EvictionPolicy.LRU:
            return min(candidates, key=_last_activity)
        if self.policy is EvictionPolicy.FIFO:
            return min(candidates, key=_install_time)
        if self.policy is EvictionPolicy.COST:
            entries = self._entries
            return min(candidates, key=lambda rule: entries[id(rule)].score)
        return self._rng.choice(candidates)


def _derives_from(rule: Rule, policy_rule: Rule) -> bool:
    root = rule.root_origin()
    if root is policy_rule:
        return True
    return (
        root.rule_id == policy_rule.rule_id
        and root.kind is policy_rule.kind
        and root.priority == policy_rule.priority
        and root.match == policy_rule.match
    )


def _last_activity(rule: Rule) -> float:
    if rule.last_hit_at is not None:
        return rule.last_hit_at
    if rule.installed_at is not None:
        return rule.installed_at
    return float("-inf")


def _install_time(rule: Rule) -> float:
    return rule.installed_at if rule.installed_at is not None else float("-inf")
