"""Cache-rule management at ingress switches.

DIFANE ingress switches hold reactively-installed wildcard **cache rules**
in a bounded TCAM region.  The paper keeps cache maintenance simple — the
partition rules below the cache guarantee correctness whatever the cache
contents, so eviction is purely a performance knob.  We implement the
policies the evaluation exercises:

* **LRU** — evict the least recently hit cache rule (the paper's default);
* **FIFO** — evict the oldest install (ablation);
* **RANDOM** — evict uniformly at random (ablation baseline);
* idle / hard **timeouts** — the mechanism host-mobility handling relies
  on (§4 of the paper): stale cache rules age out.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import List, Optional

from repro.flowspace.rule import Rule, RuleKind
from repro.switch.tcam import Tcam

__all__ = ["EvictionPolicy", "CacheManager"]


class EvictionPolicy(Enum):
    """Which cache rule to sacrifice when the cache region is full."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class CacheManager:
    """Bounded cache region of an ingress switch's TCAM.

    Parameters
    ----------
    tcam:
        The TCAM holding the cache rules (cache rules only — DIFANE stores
        partition rules in a separate, tiny region; see
        :class:`repro.switch.pipeline.DifanePipeline`).
    capacity:
        Maximum number of cache rules.
    policy:
        Eviction policy; LRU matches the paper.
    default_idle_timeout / default_hard_timeout:
        Timeouts stamped onto installed cache rules (seconds; ``None``
        disables).
    """

    def __init__(
        self,
        tcam: Tcam,
        capacity: int,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        default_idle_timeout: Optional[float] = None,
        default_hard_timeout: Optional[float] = None,
        seed: int = 0,
    ):
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self.tcam = tcam
        self.capacity = capacity
        self.policy = policy
        self.default_idle_timeout = default_idle_timeout
        self.default_hard_timeout = default_hard_timeout
        self._rng = random.Random(seed)
        self.inserted = 0
        self.evicted = 0

    # -- installs ---------------------------------------------------------------
    def cache_rules(self) -> List[Rule]:
        """Cache rules currently installed."""
        return self.tcam.rules(RuleKind.CACHE)

    def occupancy(self) -> int:
        """Number of cache rules installed."""
        return len(self.cache_rules())

    def install(self, rule: Rule, now: float) -> Optional[Rule]:
        """Install a cache rule, evicting per policy if needed.

        Returns the installed rule, or ``None`` when ``capacity`` is zero
        (caching disabled).  Duplicate installs (same match & actions
        already present) refresh the existing rule instead of consuming a
        new entry — the common case when several packets of one flow miss
        back-to-back before the install completes.
        """
        if self.capacity == 0:
            return None
        if rule.kind is not RuleKind.CACHE:
            raise ValueError(f"expected a cache rule, got {rule.kind}")
        existing = self._find_duplicate(rule)
        if existing is not None:
            existing.last_hit_at = now
            return existing
        while self.occupancy() >= self.capacity:
            victim = self._select_victim()
            if victim is None:
                return None
            self.tcam.evict(victim)
            self.evicted += 1
        if rule.idle_timeout is None:
            rule.idle_timeout = self.default_idle_timeout
        if rule.hard_timeout is None:
            rule.hard_timeout = self.default_hard_timeout
        self.tcam.install(rule, now=now)
        self.inserted += 1
        return rule

    def _find_duplicate(self, rule: Rule) -> Optional[Rule]:
        for existing in self.cache_rules():
            if existing.match == rule.match and existing.actions == rule.actions:
                return existing
        return None

    def _select_victim(self) -> Optional[Rule]:
        candidates = self.cache_rules()
        if not candidates:
            return None
        if self.policy is EvictionPolicy.LRU:
            return min(candidates, key=_last_activity)
        if self.policy is EvictionPolicy.FIFO:
            return min(candidates, key=_install_time)
        return self._rng.choice(candidates)

    # -- maintenance ----------------------------------------------------------------
    def expire(self, now: float) -> List[Rule]:
        """Evict cache rules whose timeouts have elapsed."""
        expired = self.tcam.evict_if(
            lambda rule: rule.kind is RuleKind.CACHE and rule.is_expired(now)
        )
        self.evicted += len(expired)
        return expired

    def invalidate_origin(self, policy_rule: Rule) -> List[Rule]:
        """Evict every cache rule derived from ``policy_rule``.

        This is the policy-change path: when the controller updates a rule,
        authority switches flush the cache entries it spawned.
        """
        flushed = self.tcam.evict_if(
            lambda rule: rule.kind is RuleKind.CACHE
            and rule.root_origin() is policy_rule
        )
        self.evicted += len(flushed)
        return flushed

    def flush(self) -> List[Rule]:
        """Evict all cache rules (e.g. on ingress switch reset)."""
        flushed = self.tcam.evict_if(lambda rule: rule.kind is RuleKind.CACHE)
        self.evicted += len(flushed)
        return flushed


def _last_activity(rule: Rule) -> float:
    if rule.last_hit_at is not None:
        return rule.last_hit_at
    if rule.installed_at is not None:
        return rule.installed_at
    return float("-inf")


def _install_time(rule: Rule) -> float:
    return rule.installed_at if rule.installed_at is not None else float("-inf")
