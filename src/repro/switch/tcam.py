"""A capacity-bounded TCAM.

Wraps a :class:`~repro.flowspace.table.RuleTable` with the constraint that
motivates the whole paper: hardware match tables hold only thousands to a
few tens of thousands of entries.  ``install`` refuses (or reports the
need to evict) when full; occupancy and high-water marks feed the
partitioning experiments, which measure exactly how many TCAM entries each
authority switch needs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.flowspace.engine import EngineSpec
from repro.flowspace.fields import HeaderLayout
from repro.flowspace.packet import Packet
from repro.flowspace.rule import Rule, RuleKind
from repro.flowspace.table import RuleTable
from repro.flowspace.vectormatch import VectorMatcher

__all__ = ["Tcam", "TcamFullError"]

#: Above this many rules the compiled vector scan (O(rules) numpy passes)
#: loses to the engine's per-packet batch lookup; the columnar path then
#: packs header words and dispatches the engine once for the batch.
VECTOR_RULE_LIMIT = 512


class TcamFullError(Exception):
    """Raised by :meth:`Tcam.install` when no space exists and eviction is off."""


class Tcam:
    """A priority match table with a hard entry budget.

    Parameters
    ----------
    layout:
        Header layout of the rules stored.
    capacity:
        Maximum number of entries; ``None`` means unbounded (used to model
        software tables, which trade capacity for lookup speed).
    engine:
        Lookup backend for the backing table (see
        :mod:`repro.flowspace.engine`); ``None`` uses the process default.
    """

    def __init__(
        self,
        layout: HeaderLayout,
        capacity: Optional[int] = None,
        engine: EngineSpec = None,
    ):
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.layout = layout
        self.capacity = capacity
        self.table = RuleTable(layout, engine=engine)
        self.high_water = 0
        self.installs = 0
        self.evictions = 0
        self.rejected = 0
        self.lookups = 0
        self.hits = 0
        # Compiled vector matcher, rebuilt lazily when the table mutates.
        self._matcher: Optional[VectorMatcher] = None
        self._matcher_version = -1
        # Observer hooks: every mutation and hit is visible to subscribers
        # (the indexed CacheManager keeps its occupancy counter, duplicate
        # map and eviction heap exact even when callers mutate the table
        # directly via evict_if/clear, bypassing the manager).
        self._install_hooks: List[Callable[[Rule], None]] = []
        self._evict_hooks: List[Callable[[Rule], None]] = []
        self._hit_hooks: List[Callable[[Rule, int, Optional[float]], None]] = []

    # -- observers ------------------------------------------------------------
    def add_install_hook(self, hook: Callable[[Rule], None]) -> None:
        """Call ``hook(rule)`` after every install."""
        self._install_hooks.append(hook)

    def add_evict_hook(self, hook: Callable[[Rule], None]) -> None:
        """Call ``hook(rule)`` after every removal (evict/evict_if/clear)."""
        self._evict_hooks.append(hook)

    def add_hit_hook(
        self, hook: Callable[[Rule, int, Optional[float]], None]
    ) -> None:
        """Call ``hook(rule, count, now)`` when a rule wins lookups."""
        self._hit_hooks.append(hook)

    # -- capacity -------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Entries currently installed."""
        return len(self.table)

    @property
    def free_space(self) -> int:
        """Remaining entries; a large sentinel when unbounded."""
        if self.capacity is None:
            return 1 << 62
        return self.capacity - self.occupancy

    def is_full(self) -> bool:
        """True when another install would exceed capacity."""
        return self.free_space <= 0

    # -- mutation ----------------------------------------------------------------
    def install(
        self,
        rule: Rule,
        now: Optional[float] = None,
        make_room: Optional[Callable[[], Optional[Rule]]] = None,
    ) -> Rule:
        """Install ``rule``, optionally evicting via ``make_room`` when full.

        ``make_room`` is called repeatedly while the table is full; it must
        return a rule to evict or ``None`` to give up (raising
        :class:`TcamFullError`).
        """
        while self.is_full():
            victim = make_room() if make_room is not None else None
            if victim is None:
                self.rejected += 1
                raise TcamFullError(
                    f"TCAM full ({self.capacity} entries) and no eviction candidate"
                )
            self.evict(victim)
        rule.installed_at = now
        self.table.add(rule)
        self.installs += 1
        self.high_water = max(self.high_water, self.occupancy)
        for hook in self._install_hooks:
            hook(rule)
        return rule

    def evict(self, rule: Rule) -> bool:
        """Remove ``rule``; returns whether it was present."""
        removed = self.table.remove(rule)
        if removed:
            self.evictions += 1
            for hook in self._evict_hooks:
                hook(rule)
        return removed

    def evict_if(self, predicate: Callable[[Rule], bool]) -> List[Rule]:
        """Remove and return all rules matching ``predicate``."""
        removed = self.table.remove_if(predicate)
        self.evictions += len(removed)
        for rule in removed:
            for hook in self._evict_hooks:
                hook(rule)
        return removed

    def evict_expired(self, now: float) -> List[Rule]:
        """Remove rules whose idle/hard timeout has elapsed."""
        return self.evict_if(lambda rule: rule.is_expired(now))

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        dropped = list(self.table.rules) if self._evict_hooks else []
        self.evictions += len(self.table)
        self.table.clear()
        for rule in dropped:
            for hook in self._evict_hooks:
                hook(rule)

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, packet: Packet, now: Optional[float] = None) -> Optional[Rule]:
        """Highest-priority matching rule, updating hit statistics."""
        self.lookups += 1
        winner = self.table.lookup(packet)
        if winner is not None:
            self.hits += 1
            winner.record_hit(packet, now)
            if self._hit_hooks:
                for hook in self._hit_hooks:
                    hook(winner, 1, now)
        return winner

    def lookup_batch(
        self, packets: Sequence[Packet], now: Optional[float] = None
    ) -> List[Optional[Rule]]:
        """Batch :meth:`lookup`: one engine dispatch for a packet burst."""
        winners = self.table.batch_lookup(packet.header_bits for packet in packets)
        self.lookups += len(packets)
        for packet, winner in zip(packets, winners):
            if winner is not None:
                self.hits += 1
                winner.record_hit(packet, now)
                if self._hit_hooks:
                    for hook in self._hit_hooks:
                        hook(winner, 1, now)
        return winners

    def match_batch(
        self, batch, now: Optional[float] = None
    ) -> Tuple[np.ndarray, List[Rule]]:
        """Columnar batch lookup with aggregated hit accounting.

        Returns ``(winner_indices, rules)`` where ``winner_indices[i]`` is
        the index into ``rules`` (the table's lookup order) of packet
        ``i``'s winner, or ``-1`` on a miss.  Statistics — table
        lookups/hits and per-rule packet/byte counters — end up exactly as
        ``len(batch)`` sequential :meth:`lookup` calls would leave them:
        counts and byte totals are aggregated per winning rule and applied
        once.

        Small tables over vectorizable layouts classify via the compiled
        :class:`VectorMatcher`; everything else falls back to the engine's
        ``batch_lookup`` over packed header words (identical winners).
        """
        rules = list(self.table.rules)
        count = len(batch)
        self.lookups += count
        if (
            batch.fields is not None
            and len(rules) <= VECTOR_RULE_LIMIT
        ):
            matcher = self._matcher
            if matcher is None or self._matcher_version != self.table.version:
                matcher = VectorMatcher(self.layout, rules)
                self._matcher = matcher
                self._matcher_version = self.table.version
            winners = matcher.match(batch.fields)
        else:
            winners = np.full(count, -1, dtype=np.int64)
            index_of = {id(rule): i for i, rule in enumerate(rules)}
            for i, winner in enumerate(
                self.table.batch_lookup(batch.header_bits_list())
            ):
                if winner is not None:
                    winners[i] = index_of[id(winner)]
        matched = winners >= 0
        hit_count = int(matched.sum())
        if hit_count:
            self.hits += hit_count
            sizes = batch.size_bytes
            for index in np.unique(winners[matched]).tolist():
                selected = winners == index
                rule = rules[index]
                count = int(selected.sum())
                rule.packet_count += count
                rule.byte_count += int(sizes[selected].sum())
                if now is not None:
                    rule.last_hit_at = now
                if self._hit_hooks:
                    for hook in self._hit_hooks:
                        hook(rule, count, now)
        return winners, rules

    def peek(self, packet: Packet) -> Optional[Rule]:
        """Lookup without touching any counters (analysis only)."""
        return self.table.lookup(packet)

    # -- views -----------------------------------------------------------------------
    def rules(self, kind: Optional[RuleKind] = None) -> List[Rule]:
        """Installed rules, optionally filtered by :class:`RuleKind`."""
        if kind is None:
            return list(self.table.rules)
        return [rule for rule in self.table if rule.kind is kind]

    def __len__(self) -> int:
        return self.occupancy

    def __iter__(self):
        return iter(self.table)

    def __repr__(self) -> str:
        cap = "∞" if self.capacity is None else str(self.capacity)
        return f"<Tcam {self.occupancy}/{cap} hw={self.high_water}>"
