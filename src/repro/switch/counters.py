"""Counter aggregation across derived rules.

DIFANE splits, clips and caches the operator's policy rules; the operator
still expects per-policy-rule statistics (the transparency requirement).
Every derived rule carries an ``origin`` chain back to its policy rule, so
aggregating is a fold over :meth:`Rule.root_origin`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.flowspace.rule import Rule

__all__ = ["CounterSnapshot", "aggregate_counters"]


@dataclass
class CounterSnapshot:
    """Aggregated statistics for one policy rule."""

    packets: int = 0
    bytes: int = 0
    fragments: int = 0

    def absorb(self, rule: Rule) -> None:
        """Fold one derived (or original) rule's counters in."""
        self.packets += rule.packet_count
        self.bytes += rule.byte_count
        self.fragments += 1


def aggregate_counters(rules: Iterable[Rule]) -> Dict[Rule, CounterSnapshot]:
    """Fold counters of ``rules`` back onto their root policy rules.

    The returned mapping is keyed by policy-rule object identity (the
    actual :class:`Rule` the operator installed).  Rules with no origin
    chain aggregate onto themselves, so mixing policy and derived rules in
    one pass is fine.
    """
    totals: Dict[Rule, CounterSnapshot] = {}
    for rule in rules:
        root = rule.root_origin()
        snapshot = totals.get(root)
        if snapshot is None:
            snapshot = CounterSnapshot()
            totals[root] = snapshot
        snapshot.absorb(rule)
    return totals
