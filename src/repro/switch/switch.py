"""The base data-plane switch.

:class:`DataPlaneSwitch` provides everything a concrete behaviour (DIFANE
ingress/authority in :mod:`repro.core`, NOX microflow switch in
:mod:`repro.baselines`) needs:

* an optional **packet-processing budget**: a
  :class:`~repro.net.events.ServiceStation` bounding how many packets per
  second the switch's slow path can handle, with bounded queueing and loss
  — the mechanism behind every throughput figure;
* **action execution** — resolving symbolic ``Forward(destination)``
  actions through the network's routing table, applying ``SetField``
  rewrites, honouring ``Drop``;
* counter plumbing.

Subclasses implement :meth:`process` (called once per packet, in capacity
order).
"""

from __future__ import annotations

from typing import Optional

from repro.flowspace.action import ActionList, Drop, Encapsulate, Forward, SendToController, SetField
from repro.flowspace.packet import Packet
from repro.net.events import ServiceStation
from repro.obs.registry import NULL_METRIC

__all__ = ["DataPlaneSwitch"]


class DataPlaneSwitch:
    """Base class for switch behaviours registered with a SimNetwork.

    Parameters
    ----------
    name:
        The topology node this behaviour drives.
    processing_rate:
        Packets per second the switch can *process through its lookup
        path*; ``None`` models a fast path that is never the bottleneck
        (used when an experiment isolates some other component).
    queue_limit:
        Packets that may wait for processing before tail drop.
    """

    def __init__(
        self,
        name: str,
        processing_rate: Optional[float] = None,
        queue_limit: int = 256,
        forwarding_delay_s: float = 0.0,
    ):
        self.name = name
        self.processing_rate = processing_rate
        self.queue_limit = queue_limit
        #: Fixed per-packet pipeline latency (lookup + crossbar), applied
        #: before processing; models the paper's kernel-switch hop cost.
        self.forwarding_delay_s = forwarding_delay_s
        self.network = None
        #: Liveness flag maintained by the failure injector; a dead switch
        #: keeps its state (rules survive a reboot) but stops emitting
        #: heartbeats until restored.
        self.alive = True
        self._station: Optional[ServiceStation] = None
        self.packets_seen = 0
        self.packets_dropped_overload = 0
        # Null until attach() binds real registry children — keeps
        # directly-driven switches (no network) working in tests.
        self._m_seen = NULL_METRIC
        self._m_queue_drops = NULL_METRIC

    # -- SimNetwork protocol ------------------------------------------------------
    def attach(self, network) -> None:
        """Called by ``SimNetwork.register_node``; wires the capacity queue."""
        self.network = network
        # Bind per-switch metric children into the network's registry
        # (the hot path then pays one += per packet, nothing more).
        self._m_seen = network.metrics.counter(
            "switch_packets_seen_total", switch=self.name
        )
        self._m_queue_drops = network.metrics.counter(
            "switch_queue_drops_total", switch=self.name
        )
        pipeline = getattr(self, "pipeline", None)
        if pipeline is not None:
            pipeline.bind_observability(network.metrics, network.profiler)
        if self.processing_rate is not None:
            self._station = ServiceStation(
                network.scheduler,
                rate=self.processing_rate,
                on_complete=self._process_now,
                queue_limit=self.queue_limit,
                on_drop=self._overloaded,
                name=f"{self.name}.lookup",
                metrics=network.metrics,
            )

    def handle_packet(self, network, packet: Packet) -> None:
        """Entry point from the network; respects the processing budget."""
        self.packets_seen += 1
        self._m_seen.inc()
        if self.forwarding_delay_s > 0:
            network.scheduler.schedule(self.forwarding_delay_s, self._enqueue, packet)
        else:
            self._enqueue(packet)

    def handle_burst(self, network, packets) -> None:
        """Entry point for a same-instant packet burst.

        When the switch has no per-packet budget or delay to model, the
        whole burst goes through :meth:`process_batch` — one classify
        dispatch instead of one per packet.  A switch with a processing
        budget degrades to per-packet handling, since the budget is
        defined packet-by-packet.
        """
        if self._station is not None or self.forwarding_delay_s > 0:
            for packet in packets:
                self.handle_packet(network, packet)
            return
        self.packets_seen += len(packets)
        self._m_seen.inc(len(packets))
        self.process_batch(list(packets))

    def handle_batch(self, network, batch) -> None:
        """Entry point for a columnar same-instant batch.

        Mirrors :meth:`handle_burst`: a switch with a per-packet budget or
        forwarding delay degrades to the scalar path (both are defined
        packet-by-packet); otherwise the batch flows whole into
        :meth:`process_packet_batch`.
        """
        if self._station is not None or self.forwarding_delay_s > 0:
            for packet in batch.packets():
                self.handle_packet(network, packet)
            return
        count = len(batch)
        self.packets_seen += count
        self._m_seen.inc(count)
        self.process_packet_batch(batch)

    def _enqueue(self, packet: Packet) -> None:
        if self._station is None:
            self._process_now(packet)
        else:
            self._station.submit(packet)

    def _process_now(self, packet: Packet) -> None:
        self.process(packet)

    def _overloaded(self, packet: Packet) -> None:
        self.packets_dropped_overload += 1
        self._m_queue_drops.inc()
        self.network.record_drop(packet, self.name, "switch overloaded")

    # -- behaviour hook --------------------------------------------------------------
    def process(self, packet: Packet) -> None:
        """Classify and act on one packet.  Subclasses must override."""
        raise NotImplementedError

    def process_batch(self, packets) -> None:
        """Classify and act on a same-instant burst.

        The default is the per-packet loop; switches whose classifier
        supports batched lookup (:meth:`MatchEngine.batch_lookup`)
        override this to classify the burst in one engine dispatch.
        """
        for packet in packets:
            self.process(packet)

    def process_packet_batch(self, batch) -> None:
        """Classify and act on a columnar batch.

        The default materializes the scalar view and runs the burst path;
        :class:`~repro.core.authority.DifaneSwitch` overrides this with
        fully vectorized classification.
        """
        self.process_batch(batch.packets())

    # -- action execution ---------------------------------------------------------------
    def execute(self, packet: Packet, actions: ActionList) -> None:
        """Apply an action list to ``packet`` at this switch.

        ``Forward`` targets are destinations (hosts or switches); the
        packet moves one hop toward the target through the routing table.
        ``Encapsulate`` tunnels toward an authority switch.  Non-terminal
        actions (``SetField``) apply in order before the terminal one.
        """
        network = self.network
        for action in actions:
            if isinstance(action, SetField):
                self._apply_rewrite(packet, action)
            elif isinstance(action, Drop):
                network.record_drop(packet, self.name, "policy drop")
                return
            elif isinstance(action, Forward):
                network.forward_toward(self.name, action.port, packet)
                return
            elif isinstance(action, Encapsulate):
                packet.encapsulate(action.destination)
                network.forward_toward(self.name, action.destination, packet)
                return
            elif isinstance(action, SendToController):
                # Only meaningful for the NOX baseline, which overrides this.
                network.record_drop(packet, self.name, "punt without controller")
                return
        # An action list with no terminal action means implicit drop.
        network.record_drop(packet, self.name, "no terminal action")

    def _apply_rewrite(self, packet: Packet, action: SetField) -> None:
        spec = packet.layout.field(action.field_name)
        offset = packet.layout.offset(action.field_name)
        field_mask = ((1 << spec.width) - 1) << offset
        packet.header_bits = (packet.header_bits & ~field_mask) | (
            (action.value << offset) & field_mask
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} seen={self.packets_seen}>"
