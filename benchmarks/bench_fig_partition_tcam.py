"""E5: TCAM entries per authority switch vs number of partitions.

Paper claim: per-switch authority TCAM usage falls ≈N/k as partitions are
added, so modest-TCAM switches can host large policies collectively.
"""

from conftest import run_once

from repro.analysis.report import render_series_table, render_table
from repro.experiments.partitioning import default_policies, run_partition_tcam


def test_fig_partition_tcam_usage(benchmark, archive):
    policies = default_policies(scale=2)
    result = run_once(
        benchmark,
        run_partition_tcam,
        partition_counts=[1, 2, 4, 8, 16, 32, 64],
        policies=policies,
    )
    text = render_series_table(result.series, title=result.title)
    text += "\n\n" + render_table(result.table_headers, result.table_rows)
    archive(result.name, text)

    for series in result.series:
        # Max per-partition footprint must fall dramatically with k.
        assert series.y[-1] < series.y[0] / 4
