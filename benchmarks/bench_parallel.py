"""Parallel sweep runner and artifact cache: speed without drift.

Two claims are gated here:

* fanning a sweep's points over worker processes cuts wall-clock time
  (≥2.5x at 4 workers **on a ≥4-core host**; on smaller hosts the run
  still archives the honest measured number) while the rendered table
  and the canonical metrics document stay byte-identical to the serial
  run;
* warming the on-disk workload artifact cache turns a ClassBench
  10K-rule build into a load that is ≥5x faster than generating.

The archived JSON carries the host provenance, so every number can be
read against the hardware that produced it.
"""

import json
import os
import time

from repro.analysis.report import render_series_table
from repro.experiments.common import metrics_document
from repro.experiments.scaling import run_scaling
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.parallel import configure_artifact_cache, zipf_packet_sequence

#: Worker count for the speedup measurement (the acceptance point).
WORKERS = 4
#: Required speedup at WORKERS workers — gated only on hosts that have
#: at least that many cores to give.
MIN_SPEEDUP = 2.5

SWEEP_KWARGS = dict(
    authority_counts=[1, 2, 3, 4],
    flows_per_point=1200,
    scale=0.01,
)


def _timed_sweep(jobs):
    """Run the E3 sweep under a fresh context; return (seconds, text, doc)."""
    context = fresh_run_context()
    started = time.perf_counter()
    result = run_scaling(jobs=jobs, **SWEEP_KWARGS)
    elapsed = time.perf_counter() - started
    table = render_series_table(result.series, title=result.title)
    document = json.dumps(metrics_document(result, context=context), sort_keys=True)
    return elapsed, table, document


def test_parallel_sweep_speedup(archive):
    previous = obs_context.current()
    try:
        serial_s, serial_table, serial_doc = _timed_sweep(jobs=1)
        parallel_s, parallel_table, parallel_doc = _timed_sweep(jobs=WORKERS)
    finally:
        obs_context.install(previous)

    # Determinism is unconditional: the parallel run must be
    # indistinguishable from the serial one, byte for byte.
    assert parallel_table == serial_table
    assert parallel_doc == serial_doc

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    lines = [
        f"parallel sweep: E3 x{len(SWEEP_KWARGS['authority_counts'])} points",
        f"  host cores          : {cores}",
        f"  workers             : {WORKERS}",
        f"  serial wall-clock   : {serial_s:.2f}s",
        f"  parallel wall-clock : {parallel_s:.2f}s",
        f"  speedup             : {speedup:.2f}x",
        "  output identical    : yes (table and metrics document)",
    ]
    archive("perf-parallel-sweep", "\n".join(lines))

    # The throughput gate only binds where the cores exist to meet it.
    if cores >= WORKERS:
        assert speedup >= MIN_SPEEDUP


def test_artifact_cache_warm_speedup(archive, tmp_path):
    """Cold chain build vs warm disk hit for the E7-style workload.

    A cold build generates the 10K-rule ClassBench policy, draws flow
    headers across it (sampling by flow-space share walks the whole
    classifier per draw — the dominant cost) and lays down the Zipf
    sequence.  The cached artifact is a plain integer list, so the warm
    path is a single disk load that skips the policy build entirely.
    """
    policy_params = dict(profile="acl", count=10_000, seed=11)
    workload = dict(n_flows=4000, flows_seed=5, n_packets=40_000,
                    alpha=1.0, seed=6)

    def build_chain():
        return zipf_packet_sequence(policy_params, FIVE_TUPLE_LAYOUT, **workload)

    try:
        configure_artifact_cache(str(tmp_path))
        started = time.perf_counter()
        cold_sequence = build_chain()
        cold_s = time.perf_counter() - started

        # A fresh cache over the same directory: the memory tier is
        # empty (as in a new process), so this measures the disk hits.
        configure_artifact_cache(str(tmp_path))
        started = time.perf_counter()
        warm_sequence = build_chain()
        warm_s = time.perf_counter() - started
    finally:
        configure_artifact_cache(None)

    assert warm_sequence == cold_sequence

    reduction = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"artifact cache: ClassBench acl x{policy_params['count']} rules, "
        f"{workload['n_flows']} flows, {workload['n_packets']} packets",
        f"  cold build (generate chain) : {cold_s * 1e3:.1f} ms",
        f"  warm run (disk hits)        : {warm_s * 1e3:.1f} ms",
        f"  build-time reduction        : {reduction:.1f}x",
    ]
    archive("perf-artifact-cache", "\n".join(lines))

    assert reduction >= 5.0
