"""A6: the failover transient — replication makes authority death lossless.

Paper §4.3 claim made quantitative: with replicated partitions and
backup-carrying partition rules, an authority switch crash under load
loses zero packets (ingress switches fail over in the data plane), while
an unreplicated design drops every redirect until the controller repairs
the partition mapping.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.failover import run_failover_transient


def test_fig_failover_transient(benchmark, archive):
    result = run_once(benchmark, run_failover_transient)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    assert result.notes["replicated_drops"] == 0
    assert result.notes["repair_drops"] > 0
