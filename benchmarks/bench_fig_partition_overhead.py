"""E6: rule-splitting overhead vs number of partitions.

Paper claim: the duplication caused by rules straddling partition
boundaries grows slowly (sub-linearly) with the partition count.
"""

from conftest import run_once

from repro.analysis.report import render_series_table
from repro.experiments.partitioning import default_policies, run_partition_overhead


def test_fig_partition_split_overhead(benchmark, archive):
    policies = default_policies(scale=2)
    result = run_once(
        benchmark,
        run_partition_overhead,
        partition_counts=[1, 2, 4, 8, 16, 32, 64],
        policies=policies,
    )
    archive(result.name, render_series_table(result.series, title=result.title))

    for series in result.series:
        assert series.y[0] == 1.0  # one partition: no duplication
        # Sub-linear: 64 partitions cost far less than 64x entries.
        assert series.y[-1] < 8.0
        # Monotone non-decreasing in k.
        assert all(a <= b + 1e-9 for a, b in zip(series.y, series.y[1:]))
