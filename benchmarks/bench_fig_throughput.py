"""E2: flow-setup throughput — one authority switch vs the NOX controller.

Paper claim: DIFANE sustains ≈800K single-packet flows/s through one
authority switch while a NOX-style controller saturates around 50K/s.
"""

import pytest
from conftest import run_once

from repro.analysis.report import render_series_table
from repro.experiments.throughput import run_throughput


def test_fig_throughput_difane_vs_nox(benchmark, archive):
    result = run_once(
        benchmark,
        run_throughput,
        rates=[25e3, 50e3, 100e3, 200e3, 400e3, 800e3, 1.2e6],
        flows_per_point=1500,
        scale=0.01,
    )
    archive(result.name, render_series_table(result.series, title=result.title))

    difane = result.series_by_label("DIFANE")
    nox = result.series_by_label("NOX")
    # The paper's shape: NOX flat at its controller capacity, DIFANE an
    # order of magnitude above.
    assert nox.y[-1] == pytest.approx(50e3, rel=0.3)
    assert difane.y[-1] == pytest.approx(800e3, rel=0.3)
    assert difane.y[-1] > 10 * nox.y[-1]
