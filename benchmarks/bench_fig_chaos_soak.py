"""C1: chaos soak — robustness targets under composed faults.

One seeded soak run: lossy links, switch kills (one authority among
them), link flaps, loss bursts and a control-plane brownout, under
steady traffic.  The assertions are the chaos layer's contract: zero
partition-invariant violations after every reconvergence, zero
unattributed drops, zero unaccounted packets, and the authority kill
detected by heartbeats alone.

Archives both the human-readable table and a JSON summary
(``C1-chaos-soak.json``) for trend tracking.
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.analysis.report import render_table
from repro.experiments.chaos import run_chaos_soak


def test_fig_chaos_soak(benchmark, archive):
    result = run_once(benchmark, run_chaos_soak)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    summary = {k: v for k, v in result.notes.items() if not k.startswith("_")}
    (RESULTS_DIR / f"{result.name}.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )

    assert result.notes["invariant_violations"] == 0
    assert result.notes["unattributed_drops"] == 0
    assert result.notes["unaccounted_packets"] == 0
    assert result.notes["detections"] >= 1
    assert result.notes["detection_latencies_s"], "authority kill went undetected"
