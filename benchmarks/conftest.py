"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, times the
run via pytest-benchmark (one round — these are experiments, not
microbenchmarks), prints the rows/series, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference a stable copy.

Every archived JSON embeds the host's provenance (CPU model, core
count, interpreter, worker count), because wall-clock numbers — and the
speedups the parallel benchmarks gate on — are meaningless without the
hardware they were measured on.

Parallelism knobs: ``--repro-jobs N`` (or the ``REPRO_JOBS`` env var)
fans experiment sweeps out over N worker processes; ``--repro-cache-dir``
points the workload artifact cache at a disk directory shared across
runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.obs import context as obs_context
from repro.obs import fresh_run_context
from repro.parallel import configure_artifact_cache, host_provenance

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs", type=int,
        default=int(os.environ.get("REPRO_JOBS", "1")),
        help="worker processes for experiment sweeps (0 = all cores); "
             "archived output is identical whatever the value",
    )
    parser.addoption(
        "--repro-cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="directory for the on-disk workload artifact cache "
             "(unset = in-memory only)",
    )


@pytest.fixture
def jobs(request):
    """Worker-process count for sweeps (from --repro-jobs / REPRO_JOBS)."""
    return request.config.getoption("--repro-jobs")


@pytest.fixture(autouse=True)
def _artifact_cache_dir(request):
    """Point the process-wide artifact cache at --repro-cache-dir."""
    cache_dir = request.config.getoption("--repro-cache-dir")
    if cache_dir:
        configure_artifact_cache(cache_dir)


@pytest.fixture
def archive(request):
    """Return a writer: archive(name, text) prints and persists the text.

    The fixture installs a fresh observability context before the bench
    body runs, so every network the bench builds reports into one
    registry; the writer persists that registry as ``<name>-metrics.json``
    next to the text archive, stamped with the host's provenance.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    previous = obs_context.current()
    context = fresh_run_context()
    provenance = host_provenance(jobs=request.config.getoption("--repro-jobs"))

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        context.metrics.write_json(
            RESULTS_DIR / f"{name}-metrics.json", name=name, host=provenance
        )

    yield write
    obs_context.install(previous)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
