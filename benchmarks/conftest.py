"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, times the
run via pytest-benchmark (one round — these are experiments, not
microbenchmarks), prints the rows/series, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference a stable copy.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Return a writer: archive(name, text) prints and persists the text."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
