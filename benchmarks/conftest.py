"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, times the
run via pytest-benchmark (one round — these are experiments, not
microbenchmarks), prints the rows/series, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference a stable copy.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs import context as obs_context
from repro.obs import fresh_run_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Return a writer: archive(name, text) prints and persists the text.

    The fixture installs a fresh observability context before the bench
    body runs, so every network the bench builds reports into one
    registry; the writer persists that registry as ``<name>-metrics.json``
    next to the text archive.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    previous = obs_context.current()
    context = fresh_run_context()

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        context.metrics.write_json(
            RESULTS_DIR / f"{name}-metrics.json", name=name
        )

    yield write
    obs_context.install(previous)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
