"""E7: cache miss rate vs cache size — wildcard fragments vs microflows.

Paper claim: caching independent wildcard rules reaches a given miss rate
with far fewer TCAM entries than caching exact-match microflows.  The
cost-aware (GDSF-scored) wildcard series rides along: at small caches it
must not miss more than plain LRU on the same fragment stream.
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.analysis.report import render_table
from repro.experiments.caching import run_cache_miss
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.workloads.classbench import generate_classbench


def test_fig_cache_miss_rate(benchmark, archive, jobs):
    policy = generate_classbench("acl", count=2000, seed=3, layout=FIVE_TUPLE_LAYOUT)
    result = run_once(
        benchmark,
        run_cache_miss,
        policy=policy,
        cache_sizes=[20, 40, 100, 200, 400, 1000],
        n_flows=4000,
        n_packets=40_000,
        zipf_alpha=1.0,
        jobs=jobs,
    )
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )

    wildcard = result.series_by_label("DIFANE wildcard cache")
    cost = result.series_by_label("cost-aware wildcard cache")
    microflow = result.series_by_label("microflow cache")
    (RESULTS_DIR / "fig-cache-miss.json").write_text(json.dumps({
        "cache_sizes": wildcard.x,
        "wildcard_miss": wildcard.y,
        "cost_miss": cost.y,
        "microflow_miss": microflow.y,
    }, indent=2) + "\n")

    for w, m in zip(wildcard.y, microflow.y):
        assert w <= m
    # At 10% of the policy in cache, the wildcard miss rate is small.
    assert wildcard.y[-2] < 0.15
    # Cost-aware eviction never loses to LRU on this trace, and wins
    # outright while the cache is scarce (measured: 0.527 vs 0.631 at 20
    # entries, converging by 1000).
    for c, w in zip(cost.y, wildcard.y):
        assert c <= w + 1e-9
    assert cost.y[0] < wildcard.y[0]
