"""E7: cache miss rate vs cache size — wildcard fragments vs microflows.

Paper claim: caching independent wildcard rules reaches a given miss rate
with far fewer TCAM entries than caching exact-match microflows.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.caching import run_cache_miss
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.workloads.classbench import generate_classbench


def test_fig_cache_miss_rate(benchmark, archive, jobs):
    policy = generate_classbench("acl", count=2000, seed=3, layout=FIVE_TUPLE_LAYOUT)
    result = run_once(
        benchmark,
        run_cache_miss,
        policy=policy,
        cache_sizes=[20, 40, 100, 200, 400, 1000],
        n_flows=4000,
        n_packets=40_000,
        zipf_alpha=1.0,
        jobs=jobs,
    )
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )

    wildcard = result.series_by_label("DIFANE wildcard cache")
    microflow = result.series_by_label("microflow cache")
    for w, m in zip(wildcard.y, microflow.y):
        assert w <= m
    # At 10% of the policy in cache, the wildcard miss rate is small.
    assert wildcard.y[-2] < 0.15
