"""Extended ablations: eviction policy, fragment prefetch, traffic skew,
and partition granularity (DESIGN.md's committed design-choice studies)."""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.ablations import (
    run_eviction_ablation,
    run_partition_granularity,
    run_prefetch_ablation,
    run_zipf_sensitivity,
)


def test_ablation_eviction_policy(benchmark, archive, jobs):
    result = run_once(benchmark, run_eviction_ablation, flows=400, jobs=jobs)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    rates = {row[0]: float(row[1]) for row in result.table_rows}
    # All policies function; none collapses.
    assert all(rate > 0.1 for rate in rates.values())


def test_ablation_prefetch(benchmark, archive, jobs):
    result = run_once(benchmark, run_prefetch_ablation, flows=400, jobs=jobs)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    redirects = result.series_by_label("redirects")
    installs = result.series_by_label("cache installs")
    # Prefetching trades install volume for redirects.
    assert redirects.y[-1] < redirects.y[0]
    assert installs.y[-1] > installs.y[0]


def test_ablation_zipf_sensitivity(benchmark, archive, jobs):
    result = run_once(benchmark, run_zipf_sensitivity, jobs=jobs)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    wildcard = result.series_by_label("DIFANE wildcard cache")
    microflow = result.series_by_label("microflow cache")
    # The wildcard advantage holds at every skew, and both improve with it.
    for w, m in zip(wildcard.y, microflow.y):
        assert w < m
    assert wildcard.y[-1] < wildcard.y[0]


def test_ablation_partition_granularity(benchmark, archive):
    result = run_once(benchmark, run_partition_granularity)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    overhead = result.series_by_label("duplication factor")
    # Finer granularity costs monotone split overhead.
    assert all(a <= b + 1e-9 for a, b in zip(overhead.y, overhead.y[1:]))
