"""E9: per-event management cost of network dynamics (paper §4).

Paper claims made measurable: policy updates touch only overlapping
partitions; host mobility flushes only the stale cache entries; link
failures move **zero** rules; authority failover re-points partition
rules to backups — all while the policy's semantics stay exact.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.dynamics import run_dynamics


def test_table_dynamics_costs(benchmark, archive):
    result = run_once(benchmark, run_dynamics, churn_steps=60, warm_flows=200)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )

    assert result.notes["mismatches"] == 0
    rows = {row[0]: row for row in result.table_rows}
    # Link failure: zero control messages, zero cache flushes.
    assert rows["link failure"][3] == "0"
    assert rows["link failure"][4] == "0"
    # Inserts touch only a few partitions on average.
    assert float(rows["rule insert"][2]) < 6.0
