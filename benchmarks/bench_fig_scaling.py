"""E3: flow-setup throughput scales with the number of authority switches.

Paper claim: aggregate DIFANE setup capacity grows ≈linearly in k while
NOX stays pinned at one controller's rate.
"""

from conftest import run_once

from repro.analysis.report import render_series_table
from repro.experiments.scaling import run_scaling


def test_fig_scaling_with_authority_switches(benchmark, archive, jobs):
    result = run_once(
        benchmark,
        run_scaling,
        authority_counts=[1, 2, 3, 4],
        flows_per_point=1200,
        scale=0.01,
        jobs=jobs,
    )
    archive(result.name, render_series_table(result.series, title=result.title))

    difane = result.series_by_label("DIFANE")
    nox = result.series_by_label("NOX")
    # Near-linear growth: 4 switches give at least 3x one switch.
    assert difane.y[-1] > 3.0 * difane.y[0]
    # NOX is flat within noise.
    assert max(nox.y) < 1.3 * min(nox.y)
