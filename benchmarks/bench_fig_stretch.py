"""E8: path stretch of cache-miss packets under authority placements.

Paper claim: the first-packet detour through an authority switch costs
modest stretch, and informed placement (centrality) reduces it.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.stretch import run_stretch


def test_fig_stretch_by_placement(benchmark, archive):
    result = run_once(
        benchmark,
        run_stretch,
        strategies=["random", "degree", "central", "spread"],
        authority_count=4,
        switch_count=32,
        flows=800,
    )
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )

    rows = {row[0]: (float(row[1]), float(row[2])) for row in result.table_rows}
    # Central placement beats (or ties) random on mean stretch.
    assert rows["central"][1] <= rows["random"][1] * 1.1
    # Stretch is modest in every strategy.
    for median, mean in rows.values():
        assert median < 3.0
