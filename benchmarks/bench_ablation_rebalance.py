"""Ablation: load-based repartitioning under skewed traffic (paper §4).

The initial assignment balances TCAM entries; a traffic hotspot then
concentrates redirects on one authority switch.  ``rebalance()`` re-packs
partitions on *measured* load.  This bench quantifies the imbalance
before/after and the control-message cost of the move.
"""

import random

from conftest import run_once

from repro.analysis.report import render_table
from repro.core.controller import DifaneNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology
from repro.workloads.zipf import ZipfSampler

LAYOUT = FIVE_TUPLE_LAYOUT


def _run_rebalance_study():
    topo = TopologyBuilder.star(6, hosts_per_leaf=2)
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    dn = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_switches=["s0", "s1", "s2"],
        partitions_per_authority=8,
        cache_capacity=0,
        redirect_rate=None,
    )
    # Zipf-hot destinations: a few hosts draw most of the traffic.
    rng = random.Random(71)
    hosts = sorted(host_ips)
    sampler = ZipfSampler(len(hosts), alpha=1.1, seed=72)
    for index in range(3000):
        dst = hosts[sampler.sample()]
        src = rng.choice(hosts)
        if src == dst:
            continue
        packet = Packet.from_fields(
            LAYOUT, nw_src=rng.getrandbits(32), nw_dst=host_ips[dst],
            nw_proto=6, tp_src=rng.randint(1024, 65535), tp_dst=80,
        )
        dn.send(src, packet)
    dn.run()

    controller = dn.controller
    before = controller.load_imbalance()
    messages_before = controller.control_messages
    moved = controller.rebalance()
    cost = controller.control_messages - messages_before
    after = controller.load_imbalance()
    return {
        "imbalance_before": before,
        "imbalance_after": after,
        "partitions_moved": moved,
        "control_messages": cost,
    }


def test_ablation_rebalance(benchmark, archive):
    stats = run_once(benchmark, _run_rebalance_study)
    text = render_table(
        ["metric", "value"],
        [
            ["load imbalance before", f"{stats['imbalance_before']:.3f}"],
            ["load imbalance after", f"{stats['imbalance_after']:.3f}"],
            ["partitions moved", stats["partitions_moved"]],
            ["control messages", stats["control_messages"]],
        ],
        title="Load-based repartitioning under Zipf-skewed traffic",
    )
    archive("A5-rebalance", text)
    assert stats["imbalance_after"] <= stats["imbalance_before"]
