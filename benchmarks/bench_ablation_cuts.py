"""E10 (ablation): split-aware cut selection vs naive balance-only cuts.

DESIGN.md calls out the partitioner's cut heuristic as the load-bearing
design choice; this ablation quantifies it on a ClassBench ACL.
"""

from conftest import run_once

from repro.analysis.report import render_table, render_series_table
from repro.experiments.partitioning import run_cut_ablation
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.workloads.classbench import generate_classbench


def test_ablation_cut_strategies(benchmark, archive):
    policy = generate_classbench("acl", count=2000, seed=13, layout=FIVE_TUPLE_LAYOUT)
    result = run_once(
        benchmark,
        run_cut_ablation,
        partition_counts=[2, 4, 8, 16, 32, 64],
        policy=policy,
    )
    text = render_series_table(result.series, title=result.title)
    text += "\n\n" + render_table(result.table_headers, result.table_rows)
    archive(result.name, text)

    aware = result.series_by_label("split-aware")
    naive = result.series_by_label("occupancy")
    for a, n in zip(aware.y, naive.y):
        assert a <= n
    # At high partition counts the gap should be substantial.
    assert aware.y[-1] < naive.y[-1]
