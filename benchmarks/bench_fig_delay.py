"""E4: first-packet delay — DIFANE's data-plane detour vs NOX's controller RTT.

Paper claim: ≈0.4 ms first-packet delay for DIFANE vs ≈10 ms for NOX;
subsequent packets identical.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.delay import run_delay


def test_fig_first_packet_delay(benchmark, archive, jobs):
    result = run_once(benchmark, run_delay, flows=300, jobs=jobs)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    difane_first = result.notes["difane_first_median_ms"]
    nox_first = result.notes["nox_first_median_ms"]
    assert difane_first < 1.0
    assert nox_first > 5.0
    assert nox_first / difane_first > 10.0
