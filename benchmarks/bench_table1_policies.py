"""E1 (Table 1): characteristics of the evaluated policies."""

from conftest import run_once

from repro.analysis.report import render_table
from repro.experiments.partitioning import default_policies
from repro.experiments.policies import run_policy_table


def test_table1_policy_characteristics(benchmark, archive):
    policies = default_policies(scale=2)
    result = run_once(benchmark, run_policy_table, policies)
    archive(
        result.name,
        render_table(result.table_headers, result.table_rows, title=result.title),
    )
    assert len(result.table_rows) == len(policies)
