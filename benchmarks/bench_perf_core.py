"""Performance microbenchmarks of the core data structures & algorithms.

Unlike the figure benches (single-shot experiments), these are real
microbenchmarks: pytest-benchmark runs them repeatedly and reports
statistically meaningful timings.  They guard the hot paths:

* ternary set operations (the inner loop of everything),
* rule-table lookup on a ClassBench classifier,
* per-miss cache-rule generation (the authority switch's critical path),
* the full partitioner on a 10K-rule policy,
* the three match-engine backends head to head at 1K and 10K rules
  (archived as both text and machine-readable JSON).
"""

import json
import random
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.core import generate_cache_rule, partition_policy
from repro.flowspace import ENGINE_CHOICES, RuleTable, Ternary, create_engine
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT
from repro.workloads.classbench import generate_classbench

LAYOUT = FIVE_TUPLE_LAYOUT


@pytest.fixture(scope="module")
def classifier():
    return generate_classbench("acl", count=2000, seed=17, layout=LAYOUT)


@pytest.fixture(scope="module")
def lookup_table(classifier):
    return RuleTable(LAYOUT, classifier)


def _random_ternary(rng, width):
    mask = rng.getrandbits(width)
    return Ternary(rng.getrandbits(width) & mask, mask, width)


def test_perf_ternary_intersection(benchmark):
    rng = random.Random(0)
    width = LAYOUT.width
    pairs = [
        (_random_ternary(rng, width), _random_ternary(rng, width))
        for _ in range(256)
    ]

    def run():
        total = 0
        for a, b in pairs:
            if a.intersects(b):
                total += 1
        return total

    benchmark(run)


def test_perf_ternary_subtract(benchmark):
    rng = random.Random(1)
    width = LAYOUT.width
    pairs = []
    while len(pairs) < 64:
        a = _random_ternary(rng, width)
        b = _random_ternary(rng, width)
        if a.intersects(b):
            pairs.append((a, b))

    benchmark(lambda: [a.subtract(b) for a, b in pairs])


def test_perf_table_lookup(benchmark, classifier, lookup_table):
    rng = random.Random(2)
    probes = [rule.match.ternary.sample(rng) for rule in classifier[:512]]

    def run():
        hits = 0
        for bits in probes:
            if lookup_table.lookup_bits(bits) is not None:
                hits += 1
        return hits

    result = benchmark(run)
    assert result == len(probes)  # the classifier has a catch-all


def test_perf_cache_rule_generation(benchmark, classifier, lookup_table):
    """Per-miss cost at an authority switch (win-fragment walk)."""
    rng = random.Random(3)
    ordered = list(lookup_table.rules)
    cases = []
    while len(cases) < 64:
        bits = rng.getrandbits(LAYOUT.width)
        winner = lookup_table.lookup_bits(bits)
        if winner is not None:
            cases.append((winner, bits))

    def run():
        produced = 0
        for winner, bits in cases:
            if generate_cache_rule(ordered, winner, bits) is not None:
                produced += 1
        return produced

    result = benchmark(run)
    assert result == len(cases)


def test_perf_tuple_space_vs_linear(benchmark, classifier, lookup_table):
    """Tuple-space search vs linear scan on the same probes.

    The benchmark times the tuple-space lookups; the assertion verifies
    winner-for-winner equivalence with the linear table on the side.
    """
    from repro.flowspace.tuplespace import TupleSpaceTable

    tss = TupleSpaceTable(LAYOUT, classifier)
    rng = random.Random(4)
    probes = [rule.match.ternary.sample(rng) for rule in classifier[:512]]

    def run():
        winners = 0
        for bits in probes:
            if tss.lookup_bits(bits) is not None:
                winners += 1
        return winners

    result = benchmark(run)
    assert result == len(probes)
    for bits in probes[:64]:
        assert tss.lookup_bits(bits) is lookup_table.lookup_bits(bits)


def test_perf_engine_comparison(benchmark, archive):
    """Lookup throughput of every match engine at 1K and 10K rules.

    The engine layer's reason to exist: on large classifiers the
    tuple-space and decision-tree backends must beat the linear oracle by
    a wide margin (the gate below requires ≥3× at 10K rules) while
    returning the identical winners.  Results are archived as text and as
    ``perf-engines.json`` for machine consumption.
    """

    def compare():
        report = []
        for count in (1_000, 10_000):
            rules = generate_classbench("acl", count=count, seed=19, layout=LAYOUT)
            rng = random.Random(2)
            probes = [r.match.ternary.sample(rng) for r in rules[:512]]
            probes += [rng.getrandbits(LAYOUT.width) for _ in range(512)]
            row = {"rules": count, "probes": len(probes), "engines": {}}
            for name in ENGINE_CHOICES:
                engine = create_engine(name, LAYOUT)
                started = time.perf_counter()
                engine.add_all(rules)
                engine.lookup_bits(probes[0])  # dtree builds lazily: force it
                build_s = time.perf_counter() - started
                # One-at-a-time adds on a second instance: the install
                # path a live switch takes (and the path whose per-insert
                # re-sorting used to blow up tuple-space construction).
                incremental = create_engine(name, LAYOUT)
                started = time.perf_counter()
                for rule in rules:
                    incremental.add(rule)
                incremental.lookup_bits(probes[0])
                incremental_s = time.perf_counter() - started
                started = time.perf_counter()
                winners = [engine.lookup_bits(bits) for bits in probes]
                lookup_s = time.perf_counter() - started
                row["engines"][name] = {
                    "build_s": round(build_s, 4),
                    "incremental_build_s": round(incremental_s, 4),
                    "lookups_per_s": round(len(probes) / lookup_s, 1),
                    "us_per_lookup": round(lookup_s * 1e6 / len(probes), 2),
                    "winners": winners,
                }
            reference = row["engines"]["linear"]["winners"]
            for name, stats in row["engines"].items():
                assert stats.pop("winners") == reference, name
                stats["speedup_vs_linear"] = round(
                    stats["lookups_per_s"]
                    / row["engines"]["linear"]["lookups_per_s"],
                    2,
                )
            report.append(row)
        return report

    report = run_once(benchmark, compare)

    lines = ["Match-engine lookup comparison (ClassBench ACL, 1024 probes)", ""]
    lines.append(f"{'rules':>7} {'engine':<12} {'build s':>8} {'incr s':>8} "
                 f"{'lookups/s':>12} {'us/lookup':>10} {'vs linear':>10}")
    for row in report:
        for name, stats in row["engines"].items():
            lines.append(
                f"{row['rules']:>7} {name:<12} {stats['build_s']:>8.3f} "
                f"{stats['incremental_build_s']:>8.3f} "
                f"{stats['lookups_per_s']:>12.0f} {stats['us_per_lookup']:>10.2f} "
                f"{stats['speedup_vs_linear']:>9.2f}x"
            )
    archive("perf-engines", "\n".join(lines))
    (RESULTS_DIR / "perf-engines.json").write_text(json.dumps(report, indent=2) + "\n")

    at_10k = next(row for row in report if row["rules"] == 10_000)
    best = max(
        at_10k["engines"][name]["speedup_vs_linear"]
        for name in ("tuplespace", "dtree")
    )
    assert best >= 3.0, f"best alternative engine only {best}x at 10K rules"


def test_perf_obs_overhead(benchmark, archive):
    """Price the observability layer on a full simulation hot path.

    Runs one identical DIFANE workload three ways — registry disabled,
    registry enabled (the default every experiment now runs with), and
    registry + packet tracing — and archives the relative cost.  The
    design target is <5% for metrics-on with tracing disabled (bound
    children: one ``+=`` per event); the hard gate is set generously at
    15% to stay robust to shared-machine timing noise while the archived
    number records what was actually measured.
    """
    from repro.core.controller import DifaneNetwork
    from repro.flowspace.packet import Packet
    from repro.net.topology import TopologyBuilder
    from repro.obs import context as obs_context
    from repro.obs import fresh_run_context
    from repro.workloads.policies import routing_policy_for_topology

    def run_workload() -> int:
        topo = TopologyBuilder.star(4, hosts_per_leaf=1)
        rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
        dn = DifaneNetwork.build(
            topo, rules, LAYOUT, authority_switches=["hub"], cache_capacity=256,
        )
        count = 4_000
        for index in range(count):
            flow = index % 64  # mostly cache hits: the steady-state hot path
            packet = Packet.from_fields(
                LAYOUT,
                flow_id=flow,
                nw_src=0x0A000000 | flow,
                nw_dst=host_ips["h2"],
                nw_proto=6,
                tp_src=1024 + flow,
                tp_dst=80,
            )
            dn.send_at(index * 1e-5, "h0", packet)
        dn.run()
        return len(dn.network.delivered())

    def timed(repeats: int = 3, **context_kwargs) -> float:
        best = float("inf")
        for _ in range(repeats):
            fresh_run_context(**context_kwargs)
            started = time.perf_counter()
            delivered = run_workload()
            best = min(best, time.perf_counter() - started)
            assert delivered > 0
        return best

    def compare():
        previous = obs_context.current()
        try:
            baseline = timed(metrics_enabled=False)
            metrics_on = timed(metrics_enabled=True)
            telemetry_on = timed(metrics_enabled=True, telemetry=True)
            traced = timed(metrics_enabled=True, trace=True)
        finally:
            obs_context.install(previous)
        return {
            "workload": "star-4 DIFANE, 4000 packets, 64 hot flows",
            "baseline_s": round(baseline, 4),
            "metrics_s": round(metrics_on, 4),
            "telemetry_s": round(telemetry_on, 4),
            "trace_s": round(traced, 4),
            "metrics_overhead": round(metrics_on / baseline - 1.0, 4),
            # Telemetry sampling is priced against metrics-on (its
            # precondition): the marginal cost of window bookkeeping in
            # the scheduler loop at the default cadence.
            "telemetry_overhead": round(telemetry_on / metrics_on - 1.0, 4),
            "trace_overhead": round(traced / baseline - 1.0, 4),
        }

    report = run_once(benchmark, compare)

    lines = [
        "Observability overhead on the simulation hot path",
        "",
        f"workload: {report['workload']}",
        f"{'configuration':<24} {'seconds':>8} {'overhead':>9}",
        f"{'obs disabled':<24} {report['baseline_s']:>8.3f} {'—':>9}",
        f"{'metrics on':<24} {report['metrics_s']:>8.3f} "
        f"{report['metrics_overhead']:>8.1%}",
        f"{'metrics + telemetry':<24} {report['telemetry_s']:>8.3f} "
        f"{report['telemetry_overhead']:>8.1%}",
        f"{'metrics + trace':<24} {report['trace_s']:>8.3f} "
        f"{report['trace_overhead']:>8.1%}",
        "",
        "telemetry overhead is relative to metrics-on; others to disabled",
    ]
    archive("obs-overhead", "\n".join(lines))
    (RESULTS_DIR / "obs-overhead.json").write_text(json.dumps(report, indent=2) + "\n")

    assert report["metrics_overhead"] < 0.15, (
        f"metrics-on overhead {report['metrics_overhead']:.1%} exceeds the gate"
    )
    assert report["telemetry_overhead"] < 0.05, (
        f"telemetry sampling overhead {report['telemetry_overhead']:.1%} "
        "exceeds the 5% gate at the default cadence"
    )


def test_perf_cache_ops(benchmark, archive):
    """Indexed cache bookkeeping vs the linear-scan oracle at 4K entries.

    The :class:`CacheManager` index refactor replaces three per-install
    scans (occupancy, duplicate detection, victim selection) with an
    occupancy counter, a ``(match, actions)`` map, and a lazy-stale heap.
    Both managers are pre-filled to a 4096-entry capacity (untimed), then
    driven through an identical mixed workload — evicting installs and
    duplicate refreshes — and must finish with byte-identical survivors
    and counters.  The gate: the indexed manager clears 10x the scan
    manager's rate (measured ~70x on this workload).
    """
    from repro.switch import Tcam
    from repro.switch.cache import CacheManager, EvictionPolicy, ScanCacheManager

    capacity = 4_096
    churn = 512

    def make_rule(i):
        from repro.flowspace import Forward, Match, Rule
        from repro.flowspace.rule import RuleKind

        return Rule(
            Match.build(LAYOUT, nw_src=Ternary.exact(i, 32)), 5, Forward("x"),
            kind=RuleKind.CACHE,
        )

    def drive(cls):
        m = cls(Tcam(LAYOUT), capacity=capacity, policy=EvictionPolicy.LRU)
        for i in range(capacity):
            m.install(make_rule(i), now=float(i))
        ops = []
        for i in range(churn):
            ops.append(make_rule(capacity + i))          # evicting install
            ops.append(make_rule(capacity // 2 + i))     # duplicate refresh
        started = time.perf_counter()
        clock = float(capacity)
        for rule in ops:
            clock += 1.0
            m.install(rule, now=clock)
        elapsed = time.perf_counter() - started
        return m, len(ops), elapsed

    def compare():
        indexed, n_ops, indexed_s = drive(CacheManager)
        scan, _, scan_s = drive(ScanCacheManager)
        assert [
            (str(r.match), r.installed_at, r.last_hit_at)
            for r in indexed.cache_rules()
        ] == [
            (str(r.match), r.installed_at, r.last_hit_at)
            for r in scan.cache_rules()
        ]
        assert indexed.occupancy() == scan.occupancy() == capacity
        assert (indexed.inserted, indexed.evicted) == (scan.inserted, scan.evicted)
        return {
            "capacity": capacity,
            "timed_ops": n_ops,
            "indexed_s": round(indexed_s, 4),
            "scan_s": round(scan_s, 4),
            "indexed_ops_per_s": round(n_ops / indexed_s, 1),
            "scan_ops_per_s": round(n_ops / scan_s, 1),
            "speedup": round(scan_s / indexed_s, 2),
        }

    report = run_once(benchmark, compare)

    lines = [
        "Cache-manager install bookkeeping: indexed vs linear-scan oracle",
        "",
        f"capacity {report['capacity']}, {report['timed_ops']} mixed ops "
        "(evicting installs + duplicate refreshes)",
        f"{'manager':<12} {'seconds':>9} {'ops/s':>12}",
        f"{'indexed':<12} {report['indexed_s']:>9.4f} "
        f"{report['indexed_ops_per_s']:>12,.0f}",
        f"{'scan':<12} {report['scan_s']:>9.4f} "
        f"{report['scan_ops_per_s']:>12,.0f}",
        "",
        f"speedup: {report['speedup']}x",
    ]
    archive("perf-cache-ops", "\n".join(lines))
    (RESULTS_DIR / "perf-cache-ops.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    assert report["speedup"] >= 10.0, (
        f"indexed cache ops only {report['speedup']}x over the scan oracle"
    )


def test_perf_partitioner_10k(benchmark):
    """Partition a 10K-rule classifier into 64 leaves (controller path)."""
    policy = generate_classbench("acl", count=10_000, seed=19, layout=LAYOUT)

    result = benchmark.pedantic(
        lambda: partition_policy(policy, LAYOUT, num_partitions=64),
        rounds=1,
        iterations=1,
    )
    assert len(result.partitions) == 64
    assert result.duplication_factor < 8.0


def test_perf_columnar_throughput(benchmark, archive):
    """Injected-packet throughput: columnar batch path vs the scalar oracle.

    One A6-shaped burst workload (star fabric, Zipf host-pair flows, no
    redirect-rate cap) runs end to end under every scalar match engine and
    under the columnar batch path, and the injected-packets/s rates are
    archived as text and as ``perf-columnar.json``.  The gate is the
    columnar refactor's reason to exist: the batch path must clear 5× the
    scalar linear-engine rate (measured speedups land north of 15×; the
    gate is set low to be robust to shared-machine noise).
    """
    from repro.core.controller import DifaneNetwork
    from repro.flowspace.batch import set_columnar
    from repro.flowspace.engine import get_default_engine, set_default_engine
    from repro.net.topology import TopologyBuilder
    from repro.obs import context as obs_context
    from repro.obs import fresh_run_context
    from repro.workloads.batches import host_pair_batches
    from repro.workloads.policies import routing_policy_for_topology

    bursts, burst_size = 40, 2_000

    def run_workload(columnar: bool, engine: str) -> float:
        """One full simulation; returns injected packets per second."""
        set_columnar(columnar)
        set_default_engine(engine)
        fresh_run_context()
        topo = TopologyBuilder.star(leaf_count=4, hosts_per_leaf=2)
        rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
        facade = DifaneNetwork.build(
            topo, rules, LAYOUT, authority_count=2, cache_capacity=256,
            redirect_rate=None,
        )
        schedule = host_pair_batches(
            topo, host_ips, LAYOUT, bursts=bursts, burst_size=burst_size,
            hot_flows=32, alpha=1.0, seed=7,
        )
        total = sum(len(tb) for tb in schedule)
        started = time.perf_counter()
        for tb in schedule:
            facade.send_batch_at(tb.time, tb.switch, tb.batch)
        facade.run()
        return total / (time.perf_counter() - started)

    previous_engine = get_default_engine()
    previous_context = obs_context.current()

    def compare():
        rows = []
        for label, columnar, engine in (
            ("scalar/linear", False, "linear"),
            ("scalar/tuplespace", False, "tuplespace"),
            ("scalar/dtree", False, "dtree"),
            ("columnar", True, "linear"),
        ):
            rate = max(run_workload(columnar, engine) for _ in range(2))
            rows.append({
                "configuration": label,
                "columnar": columnar,
                "engine": engine,
                "injected_packets_per_s": round(rate, 1),
            })
        baseline = rows[0]["injected_packets_per_s"]
        for row in rows:
            row["speedup_vs_scalar_linear"] = round(
                row["injected_packets_per_s"] / baseline, 2
            )
        return rows

    try:
        rows = run_once(benchmark, compare)
    finally:
        set_columnar(False)
        set_default_engine(previous_engine)
        obs_context.install(previous_context)

    report = {
        "workload": (
            f"star-4 DIFANE, {bursts} bursts x {burst_size} packets, "
            "32 hot flows, cache_capacity=256, redirect_rate=None"
        ),
        "rows": rows,
    }
    lines = [
        "Injected-packet throughput: columnar batch path vs scalar oracle",
        "",
        f"workload: {report['workload']}",
        f"{'configuration':<20} {'pkts/s':>12} {'vs scalar/linear':>17}",
    ]
    for row in rows:
        lines.append(
            f"{row['configuration']:<20} {row['injected_packets_per_s']:>12,.0f} "
            f"{row['speedup_vs_scalar_linear']:>16.2f}x"
        )
    archive("perf-columnar", "\n".join(lines))
    (RESULTS_DIR / "perf-columnar.json").write_text(json.dumps(report, indent=2) + "\n")

    columnar_speedup = rows[-1]["speedup_vs_scalar_linear"]
    assert columnar_speedup >= 5.0, (
        f"columnar path only {columnar_speedup}x over scalar/linear"
    )


def test_perf_slots_structs(benchmark):
    """Construction cost of the per-packet hot structs after __slots__.

    ``DeliveryRecord`` and ``TimedPacket`` are built once per packet on
    the scalar path; __slots__ drops the per-instance ``__dict__``.  The
    benchmark times the real classes and prints the delta against
    dict-based doppelgangers built in place.
    """
    from repro.net.simnet import DeliveryRecord
    from repro.flowspace.packet import Packet
    from repro.workloads.traffic import TimedPacket

    class DictRecord:  # the pre-refactor shape: attributes in a __dict__
        def __init__(self, packet_id, flow_id, created_at, finished_at,
                     delivered, hops, via_authority, via_controller,
                     ingress_switch, endpoint, drop_reason=None):
            self.packet_id = packet_id
            self.flow_id = flow_id
            self.created_at = created_at
            self.finished_at = finished_at
            self.delivered = delivered
            self.hops = hops
            self.via_authority = via_authority
            self.via_controller = via_controller
            self.ingress_switch = ingress_switch
            self.endpoint = endpoint
            self.drop_reason = drop_reason

    count = 2_000

    def build(cls):
        return [
            cls(i, i % 64, 0.0, 1e-3, True, 3, False, False, "e1", "h2")
            for i in range(count)
        ]

    # The hot structs must stay dict-free (the point of __slots__).
    sample = build(DeliveryRecord)[0]
    assert not hasattr(sample, "__dict__")
    packet = Packet.from_fields(LAYOUT, flow_id=0, nw_proto=6)
    assert not hasattr(packet, "__dict__")
    assert not hasattr(TimedPacket(0.0, "h1", packet), "__dict__")

    records = benchmark(lambda: build(DeliveryRecord))
    assert len(records) == count

    def best_of(cls, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            build(cls)
            best = min(best, time.perf_counter() - started)
        return best

    slots_s = best_of(DeliveryRecord)
    dict_s = best_of(DictRecord)
    print(
        f"\nDeliveryRecord x{count}: __slots__ {slots_s * 1e3:.2f} ms, "
        f"__dict__ {dict_s * 1e3:.2f} ms "
        f"({dict_s / slots_s:.2f}x slower with __dict__)"
    )
