"""M1: million-host streaming soak — peak-RSS gate.

The entire point of the streaming workload + sketch observability stack
is that a soak's memory footprint is a function of the *topology and
sketch parameters*, not of hosts x epochs x burst size.  This benchmark
makes that claim falsifiable: it runs the full-scale M1 soak (10^6
virtual hosts by default) in a child interpreter, has the child report
its own ``ru_maxrss``, and fails if the peak exceeds ``RSS_BUDGET_MB``.

The child process matters: measuring the parent would fold in pytest,
hypothesis and every previously-imported module, and ``ru_maxrss`` is a
high-water mark — it never comes back down, so only a fresh interpreter
gives an honest number for the soak itself.

Scale is env-tunable (``REPRO_M1_HOSTS``, ``REPRO_M1_EPOCHS``,
``REPRO_M1_BURST``) so CI can trade soak length against runtime without
editing the gate.
"""

import json
import os
import pathlib
import subprocess
import sys

from conftest import RESULTS_DIR, run_once

from repro.analysis.report import render_table

#: The acceptance budget: a million-host soak must fit in this much RAM.
#: Measured headroom is ~7x (the full-scale run peaks near 70 MB).
RSS_BUDGET_MB = 500.0

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

# Runs in a fresh interpreter; receives the soak config as argv[1] JSON
# and prints one JSON line.  ru_maxrss is kilobytes on Linux, bytes on
# darwin.
_CHILD = r"""
import json, resource, sys

from repro.experiments.streaming import run_streaming_soak
from repro.obs import fresh_run_context
from repro.obs.sketch import set_sketch_mode

config = json.loads(sys.argv[1])
set_sketch_mode(True)
context = fresh_run_context(telemetry=True)
result = run_streaming_soak(stream=True, sketch=True, **config)
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
peak_mb = peak / (1024 * 1024) if sys.platform == "darwin" else peak / 1024
print(json.dumps({
    "peak_rss_mb": round(peak_mb, 1),
    "telemetry_windows": len(context.telemetry),
    "notes": {
        key: value
        for key, value in result.notes.items()
        if not key.startswith("_")
    },
}))
"""


def _soak_config():
    return {
        "hosts": int(os.environ.get("REPRO_M1_HOSTS", 1_000_000)),
        "epochs": int(os.environ.get("REPRO_M1_EPOCHS", 600)),
        "burst_size": int(os.environ.get("REPRO_M1_BURST", 512)),
    }


def _run_soak_child(config):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(config)],
        capture_output=True, text=True, env=env, check=False,
    )
    assert proc.returncode == 0, f"soak child failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_bench_memory_bounded_soak(benchmark, archive):
    config = _soak_config()
    report = run_once(benchmark, _run_soak_child, config)
    notes = report["notes"]
    sketch = notes["sketch_summary"]

    rows = [
        ["virtual hosts", notes["hosts"]],
        ["epochs", notes["epochs"]],
        ["offered packets", notes["offered"]],
        ["delivered", notes["delivered"]],
        ["dropped", notes["dropped"]],
        ["peak RSS (MB)", report["peak_rss_mb"]],
        ["RSS budget (MB)", RSS_BUDGET_MB],
        ["telemetry windows", report["telemetry_windows"]],
        ["delay p99 (sketch, s)", sketch["delay_p99_s"]],
        ["sketch rank-error bound", sketch["delay_rank_error_bound"]],
        ["sketch relative bound", round(sketch["delay_relative_error_bound"], 4)],
        ["sketch retained items", sketch["retained_items"]],
    ]
    archive(
        "M1-memory-bound",
        render_table(
            ["metric", "value"], rows,
            title="M1 million-host soak: peak RSS vs budget",
        ),
    )
    (RESULTS_DIR / "M1-memory-bound.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )

    assert report["peak_rss_mb"] <= RSS_BUDGET_MB, (
        f"peak RSS {report['peak_rss_mb']} MB blew the "
        f"{RSS_BUDGET_MB} MB budget"
    )
    # The full observability document was emitted, not traded away.
    assert report["telemetry_windows"] > 0
    assert notes["delivered"] > 0
    assert notes["unaccounted_packets"] == 0
    assert notes["invariant_violations"] == 0
    # The sketch stayed bounded while the error budget stayed honest.
    assert sketch["retained_items"] > 0
    assert sketch["delay_relative_error_bound"] < 0.10
