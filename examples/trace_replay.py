#!/usr/bin/env python
"""Scenario: record a traffic trace, persist it, and replay it twice.

The paper evaluates cache behaviour by replaying a multi-day traffic
trace.  This example shows the equivalent workflow with the library's
:class:`~repro.workloads.trace.Trace`:

1. synthesize a Zipf-popular flow mix over a ClassBench ACL;
2. save it as a compressed ``.npz`` (reusable across runs);
3. replay the same trace through the wildcard-fragment and microflow
   cache simulators at several cache sizes;
4. replay its head through a live DIFANE network and compare the
   event-driven cache hit rate with the trace-driven prediction.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import DifaneNetwork, FIVE_TUPLE_LAYOUT, Trace, TopologyBuilder
from repro.analysis.report import render_table
from repro.baselines import simulate_microflow_cache, simulate_wildcard_cache
from repro.flowspace import Packet
from repro.workloads.classbench import generate_classbench
from repro.workloads.traffic import flow_headers_for_policy, packet_sequence

LAYOUT = FIVE_TUPLE_LAYOUT


def main():
    policy = generate_classbench("acl", count=500, seed=21, layout=LAYOUT)
    flows = flow_headers_for_policy(policy, 800, seed=22)
    headers = packet_sequence(flows, 8000, alpha=1.1, seed=23)
    trace = Trace.from_headers(headers, rate=10_000.0, layout_width=LAYOUT.width)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campus_trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        print(f"trace: {len(loaded)} packets over {loaded.duration():.2f}s, "
              f"saved {path.stat().st_size / 1024:.0f} KiB\n")

        rows = []
        for size in (10, 50, 200):
            wildcard = simulate_wildcard_cache(
                policy, LAYOUT, loaded.header_sequence(), size
            )
            microflow = simulate_microflow_cache(
                policy, LAYOUT, loaded.header_sequence(), size
            )
            rows.append([size, f"{wildcard.miss_rate:.2%}", f"{microflow.miss_rate:.2%}"])
        print(render_table(
            ["cache size", "wildcard miss", "microflow miss"],
            rows,
            title="Trace-driven cache replay",
        ))

        # Replay the head of the trace through a real DIFANE network whose
        # policy is the same ACL (single ingress; authority on the hub).
        topo = TopologyBuilder.star(2, hosts_per_leaf=1)
        dn = DifaneNetwork.build(
            topo, policy, LAYOUT,
            authority_switches=["hub"], cache_capacity=200,
        )

        def send(time, packet):
            dn.network.scheduler.schedule_at(
                time, dn.network.inject_from_host, "h0", packet
            )

        replayed = loaded.replay(LAYOUT, send, limit=2000)
        dn.run()
        ingress = dn.switch("s0")
        total = ingress.cache_hits + ingress.redirects_out
        live_miss = ingress.redirects_out / total if total else 0.0
        print(f"\nlive replay of first {replayed} packets: "
              f"event-driven miss rate {live_miss:.2%} at 200 cache entries")
        print("(trace-driven and event-driven rates agree up to warm-up and "
              "eviction-timing effects)")


if __name__ == "__main__":
    main()
