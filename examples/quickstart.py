#!/usr/bin/env python
"""Quickstart: a complete DIFANE deployment in ~40 lines.

Builds a small campus topology, synthesizes a routing policy for its
hosts, deploys DIFANE with two authority switches, pushes some traffic
through, and prints what happened: where rules live, which packets
detoured through an authority switch, and the ingress cache hit rate.

Run:  python examples/quickstart.py
"""

from repro import (
    DifaneNetwork,
    FIVE_TUPLE_LAYOUT,
    TopologyBuilder,
    routing_policy_for_topology,
)
from repro.workloads.traffic import host_pair_packets


def main():
    # 1. A three-tier campus: 2 core, 2 distribution, 4 access switches.
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=2,
        access_per_distribution=2, hosts_per_access=2,
    )
    print(f"topology: {topo}")

    # 2. A policy: one routing rule per host plus a default deny.
    rules, host_ips = routing_policy_for_topology(topo, FIVE_TUPLE_LAYOUT)
    print(f"policy: {len(rules)} rules")

    # 3. Deploy DIFANE: the controller partitions the flow space over two
    #    authority switches and installs partition rules everywhere.
    net = DifaneNetwork.build(
        topo, rules, FIVE_TUPLE_LAYOUT,
        authority_count=2, cache_capacity=64,
    )
    print(f"authority switches: {net.controller.authority_switches}")
    print(f"partitions: {len(net.controller.partitions())}")

    # 4. Traffic: 100 flows of 3 packets between random host pairs.
    for timed in host_pair_packets(
        topo, host_ips, FIVE_TUPLE_LAYOUT,
        count=100, rate=2000.0, seed=1, flow_packets=3,
    ):
        net.send_at(timed.time, timed.source_host, timed.packet)
    net.run()

    # 5. What happened?
    delivered = net.network.delivered()
    detoured = sum(1 for r in delivered if r.via_authority)
    print(f"\ndelivered {len(delivered)} packets "
          f"({detoured} took the authority-switch detour)")
    print(f"ingress cache hit rate: {net.cache_hit_rate():.1%}")
    print(f"packets punted to the controller: "
          f"{sum(1 for r in delivered if r.via_controller)}  <- always 0 in DIFANE")

    print("\nper-switch TCAM entries (cache / authority / partition):")
    for name, entry in sorted(net.tcam_report().items()):
        print(f"  {name:8s} {entry['cache']:4d} / {entry['authority']:4d} "
              f"/ {entry['partition']:4d}")


if __name__ == "__main__":
    main()
