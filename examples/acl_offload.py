#!/usr/bin/env python
"""Scenario: offloading a large ACL that does not fit in one TCAM.

The paper's motivating workload: an operator has a classifier far larger
than any one switch's TCAM.  Proactively installing it everywhere needs
``len(policy)`` entries per switch; DIFANE partitions it over k authority
switches so each holds ≈ 1/k of the policy, ingress switches hold only a
tiny partition table plus a hot-traffic cache, and *every* packet still
gets classified entirely in the data plane.

This example partitions a 2,000-entry ClassBench-style ACL over 1..16
authority switches, prints the per-switch TCAM budget each configuration
needs, then replays Zipf traffic through a deployed 4-authority network
to show the resulting cache behaviour.

Run:  python examples/acl_offload.py
"""

from repro import FIVE_TUPLE_LAYOUT, partition_policy
from repro.analysis.report import render_table
from repro.baselines import simulate_microflow_cache, simulate_wildcard_cache
from repro.workloads.classbench import generate_classbench
from repro.workloads.traffic import flow_headers_for_policy, packet_sequence

LAYOUT = FIVE_TUPLE_LAYOUT


def partition_budget_table(policy):
    rows = []
    for k in (1, 2, 4, 8, 16):
        result = partition_policy(policy, LAYOUT, num_partitions=k)
        rows.append([
            k,
            result.max_partition_entries,
            result.total_entries,
            f"{result.duplication_factor:.3f}",
            k,  # one partition rule per partition at every ingress
        ])
    print(render_table(
        ["authority switches", "TCAM/switch (max)", "total entries",
         "split factor", "ingress partition entries"],
        rows,
        title="Partitioning a 2,000-entry ACL across authority switches",
    ))


def cache_comparison(policy):
    flows = flow_headers_for_policy(policy, 1000, seed=7)
    sequence = packet_sequence(flows, 10_000, alpha=1.0, seed=8)
    rows = []
    for size in (20, 100, 400):
        wildcard = simulate_wildcard_cache(policy, LAYOUT, sequence, size)
        microflow = simulate_microflow_cache(policy, LAYOUT, sequence, size)
        rows.append([
            size,
            f"{wildcard.miss_rate:.2%}",
            f"{microflow.miss_rate:.2%}",
        ])
    print()
    print(render_table(
        ["ingress cache entries", "DIFANE wildcard miss", "microflow miss"],
        rows,
        title="Ingress cache behaviour under Zipf traffic (10K packets)",
    ))


def main():
    policy = generate_classbench("acl", count=2000, seed=42, layout=LAYOUT)
    print(f"generated {len(policy)} ACL entries "
          f"(proactive baseline: {len(policy)} TCAM entries on EVERY switch)\n")
    partition_budget_table(policy)
    cache_comparison(policy)
    print("\nTakeaway: 8 authority switches bring the per-switch budget under")
    print("~1/4 of the policy while ingress switches hold only the partition")
    print("table plus a few hundred hot cache entries.")


if __name__ == "__main__":
    main()
