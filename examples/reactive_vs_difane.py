#!/usr/bin/env python
"""Scenario: head-to-head — DIFANE vs a NOX-style reactive controller.

Runs the identical topology, policy and single-packet-flow workload
through both architectures and prints the two numbers the paper leads
with: sustainable flow-setup throughput and first-packet delay.

Run:  python examples/reactive_vs_difane.py
"""

from repro.analysis.report import format_si, render_table
from repro.experiments.delay import run_delay
from repro.experiments.throughput import run_throughput


def main():
    print("measuring flow-setup throughput (scaled event simulation)...")
    throughput = run_throughput(
        rates=[25e3, 100e3, 400e3, 1.2e6], flows_per_point=800, scale=0.01
    )
    difane = throughput.series_by_label("DIFANE")
    nox = throughput.series_by_label("NOX")
    rows = [
        [format_si(x, "fps"), format_si(d, "fps"), format_si(n, "fps")]
        for x, d, n in zip(difane.x, difane.y, nox.y)
    ]
    print(render_table(
        ["offered load", "DIFANE goodput", "NOX goodput"], rows,
        title="Single-packet flow setups (one authority switch vs one controller)",
    ))

    print("\nmeasuring first-packet delay on a campus topology...")
    delay = run_delay(flows=150)
    print(render_table(delay.table_headers, delay.table_rows,
                       title="Packet delay (milliseconds)"))

    d_first = delay.notes["difane_first_median_ms"]
    n_first = delay.notes["nox_first_median_ms"]
    print(f"\nsummary: DIFANE peaks at {format_si(max(difane.y), ' flows/s')} vs "
          f"NOX {format_si(max(nox.y), ' flows/s')} "
          f"({max(difane.y) / max(nox.y):.0f}x), and the first packet of a "
          f"flow waits {d_first:.2f} ms instead of {n_first:.1f} ms "
          f"({n_first / d_first:.0f}x) because the miss path stays in the "
          f"data plane.")


if __name__ == "__main__":
    main()
