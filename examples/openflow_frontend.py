#!/usr/bin/env python
"""Scenario: managing DIFANE through plain OpenFlow, as one big switch.

The operator's controller does not know DIFANE exists: it sends FlowMod /
StatsRequest / Barrier messages to what looks like a single switch, and
DIFANE partitions, distributes, caches and aggregates underneath.  This
example drives that frontend:

1. deploy DIFANE and pass some traffic;
2. read per-rule counters through a StatsRequest — they match what one
   giant switch would report;
3. hot-install a block rule via FlowMod ADD and watch it take effect;
4. flip it to a redirect with FlowMod MODIFY;
5. remove it with FlowMod DELETE, barrier-fenced.

Run:  python examples/openflow_frontend.py
"""

from repro import (
    DifaneNetwork,
    Drop,
    FIVE_TUPLE_LAYOUT,
    Match,
    Packet,
    Rule,
    Ternary,
    TopologyBuilder,
    routing_policy_for_topology,
)
from repro.analysis.report import render_table
from repro.core.frontend import DifaneFrontend, VIRTUAL_SWITCH
from repro.flowspace import Forward
from repro.openflow.messages import (
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    StatsRequest,
)

LAYOUT = FIVE_TUPLE_LAYOUT


def send_flow(dn, host_ips, src, dst, tp_dst, sport):
    packet = Packet.from_fields(
        LAYOUT, nw_src=host_ips[src], nw_dst=host_ips[dst],
        nw_proto=6, tp_src=sport, tp_dst=tp_dst,
    )
    dn.send(src, packet)
    dn.run()
    return dn.network.deliveries[-1]


def main():
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=2, access_per_distribution=2,
        hosts_per_access=2,
    )
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT)
    dn = DifaneNetwork.build(topo, rules, LAYOUT, authority_count=2,
                             cache_capacity=128)
    frontend = DifaneFrontend(dn.controller)
    hosts = sorted(host_ips)
    web_server = hosts[-1]

    # 1. Traffic, then 2. stats through the virtual switch.
    for sport in range(4000, 4006):
        send_flow(dn, host_ips, hosts[0], web_server, 80, sport)
    reply = frontend.handle_message(StatsRequest(switch=VIRTUAL_SWITCH))
    busy = [(r, p, b) for r, p, b in reply.entries if p > 0]
    print(render_table(
        ["rule", "packets", "bytes"],
        [[str(rule.match)[:48], packets, size] for rule, packets, size in busy],
        title="StatsReply from the virtual DIFANE switch",
    ))

    # 3. Hot-install a block for web traffic to that server.
    block = Rule(
        Match.build(LAYOUT,
                    nw_dst=Ternary.exact(host_ips[web_server], 32),
                    nw_proto=Ternary.exact(6, 8),
                    tp_dst=Ternary.exact(80, 16)),
        priority=900_000,
        actions=Drop(),
    )
    frontend.handle_message(
        FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.ADD, rule=block)
    )
    record = send_flow(dn, host_ips, hosts[1], web_server, 80, 4100)
    print(f"\nafter FlowMod ADD (block):    delivered={record.delivered} "
          f"({record.drop_reason or record.endpoint})")

    # 4. MODIFY the same match into a redirect to a honeypot host.
    honeypot = hosts[1]
    redirect = Rule(block.match, block.priority, Forward(honeypot))
    frontend.handle_message(
        FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.MODIFY, rule=redirect)
    )
    record = send_flow(dn, host_ips, hosts[2], web_server, 80, 4200)
    print(f"after FlowMod MODIFY (redir): delivered={record.delivered} "
          f"-> {record.endpoint}")

    # 5. DELETE, fenced by a barrier.
    frontend.handle_message(
        FlowMod(switch=VIRTUAL_SWITCH, command=FlowModCommand.DELETE,
                match=block.match)
    )
    barrier = BarrierRequest(switch=VIRTUAL_SWITCH)
    ack = frontend.handle_message(barrier)
    record = send_flow(dn, host_ips, hosts[3], web_server, 80, 4300)
    print(f"after FlowMod DELETE + barrier(xid={ack.request_xid}): "
          f"delivered={record.delivered} -> {record.endpoint}")

    print(f"\nfrontend handled: {frontend.flow_mods_handled} FlowMods, "
          f"{frontend.stats_requests_handled} StatsRequests, "
          f"{frontend.barriers_handled} Barriers, {frontend.errors} errors")


if __name__ == "__main__":
    main()
