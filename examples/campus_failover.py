#!/usr/bin/env python
"""Scenario: network dynamics on a live DIFANE campus (paper §4).

Runs a replicated DIFANE deployment through the full dynamics gauntlet
while traffic keeps flowing:

1. warm traffic populates the ingress caches;
2. the operator inserts an emergency block rule (policy change);
3. a host roams to a different access switch (mobility);
4. a core link dies (topology change — zero rules move);
5. an authority switch fails and its partitions fail over to backups.

After every event the script verifies traffic still flows and reports the
management cost the controller paid.

Run:  python examples/campus_failover.py
"""

from repro import (
    DifaneNetwork,
    Drop,
    FIVE_TUPLE_LAYOUT,
    Match,
    Rule,
    Ternary,
    TopologyBuilder,
    routing_policy_for_topology,
)
from repro.workloads.traffic import host_pair_packets

LAYOUT = FIVE_TUPLE_LAYOUT


def pump_traffic(net, topo, host_ips, seed, flows=120):
    """Send a burst of flows; return (delivered, dropped) counts."""
    before = len(net.network.deliveries)
    start = net.network.scheduler.now
    for timed in host_pair_packets(
        topo, host_ips, LAYOUT, count=flows, rate=5000.0,
        seed=seed, flow_packets=2,
    ):
        net.send_at(start + timed.time, timed.source_host, timed.packet)
    net.run()
    new = net.network.deliveries[before:]
    return (sum(1 for r in new if r.delivered),
            sum(1 for r in new if not r.delivered))


def main():
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=3,
        access_per_distribution=3, hosts_per_access=2,
    )
    rules, host_ips = routing_policy_for_topology(topo, LAYOUT, acl_rules=10)
    net = DifaneNetwork.build(
        topo, rules, LAYOUT,
        authority_count=3, replication=2, cache_capacity=256,
    )
    controller = net.controller
    print(f"deployed: {len(controller.partitions())} partitions over "
          f"{controller.authority_switches} (replication=2)\n")

    delivered, dropped = pump_traffic(net, topo, host_ips, seed=1)
    print(f"[warmup]            delivered={delivered} dropped={dropped} "
          f"cache-hit={net.cache_hit_rate():.1%}")

    # --- policy change: block SSH to one host -----------------------------
    victim = topo.hosts()[3]
    block = Rule(
        Match.build(LAYOUT,
                    nw_dst=Ternary.exact(host_ips[victim], 32),
                    nw_proto=Ternary.exact(6, 8),
                    tp_dst=Ternary.exact(22, 16)),
        priority=1_000_000,
        actions=Drop(),
    )
    messages = controller.control_messages
    affected = controller.insert_rule(block)
    print(f"[policy change]     blocked ssh->{victim}: "
          f"{affected} partitions touched, "
          f"{controller.control_messages - messages} control messages")
    delivered, dropped = pump_traffic(net, topo, host_ips, seed=2)
    print(f"                    traffic after change: delivered={delivered} "
          f"dropped={dropped}")

    # --- host mobility ------------------------------------------------------
    mover = topo.hosts()[0]
    new_home = next(s for s in topo.edge_switches()
                    if s != topo.host_attachment(mover))
    flushed = controller.handle_host_move(mover, new_home)
    print(f"[host mobility]     {mover} -> {new_home}: "
          f"{flushed} stale cache entries flushed")
    delivered, dropped = pump_traffic(net, topo, host_ips, seed=3)
    print(f"                    traffic after move: delivered={delivered} "
          f"dropped={dropped}")

    # --- link failure ---------------------------------------------------------
    messages = controller.control_messages
    controller.handle_link_failure("core0", "core1")
    print(f"[link failure]      core0-core1 down: "
          f"{controller.control_messages - messages} control messages, "
          f"0 rules moved (routing reconverged)")
    delivered, dropped = pump_traffic(net, topo, host_ips, seed=4)
    print(f"                    traffic after failure: delivered={delivered} "
          f"dropped={dropped}")

    # --- authority failover ------------------------------------------------------
    failed = controller.authority_switches[0]
    messages = controller.control_messages
    repointed = controller.handle_authority_failure(failed)
    print(f"[authority failure] {failed} died: {repointed} partitions failed "
          f"over to backups ({controller.control_messages - messages} messages)")
    delivered, dropped = pump_traffic(net, topo, host_ips, seed=5)
    print(f"                    traffic after failover: delivered={delivered} "
          f"dropped={dropped}")

    print(f"\ntotal management cost: {controller.control_messages} control "
          f"messages, {controller.cache_entries_flushed} cache flushes")
    print("no packet ever waited on the controller.")


if __name__ == "__main__":
    main()
