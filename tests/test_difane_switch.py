"""Behavioural tests for the DIFANE switch (ingress / transit / authority)."""

import pytest

from repro.core import DifaneNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet
from repro.net import TopologyBuilder
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def build(authority=("s1",), cache_capacity=64, **kwargs):
    """hsrc—s0—s1—s2—hdst line with s1 the authority by default."""
    topo = TopologyBuilder.linear(3, hosts_per_switch=1)
    rules, host_ips = routing_policy_for_topology(topo, L)
    dn = DifaneNetwork.build(
        topo, rules, L,
        authority_switches=list(authority),
        cache_capacity=cache_capacity,
        redirect_rate=None,
        **kwargs,
    )
    return dn, topo, host_ips


def flow_packet(host_ips, dst="h2", sport=2000):
    return Packet.from_fields(
        L, nw_src=0x0A0A0A0A, nw_dst=host_ips[dst], nw_proto=6,
        tp_src=sport, tp_dst=80,
    )


class TestMissPath:
    def test_first_packet_detours_and_delivers(self):
        dn, topo, host_ips = build()
        dn.send("h0", flow_packet(host_ips))
        dn.run()
        delivered = dn.network.delivered()
        assert len(delivered) == 1
        assert delivered[0].via_authority
        assert delivered[0].endpoint == "h2"
        assert dn.switch("s1").redirects_handled == 1

    def test_cache_rule_installed_at_ingress(self):
        dn, topo, host_ips = build()
        dn.send("h0", flow_packet(host_ips))
        dn.run()
        ingress = dn.switch("s0")
        assert ingress.cache_installs_received == 1
        assert len(ingress.pipeline.cache) == 1

    def test_second_packet_hits_cache(self):
        dn, topo, host_ips = build()
        dn.send("h0", flow_packet(host_ips, sport=2000))
        dn.run()
        dn.send("h0", flow_packet(host_ips, sport=2000))
        dn.run()
        ingress = dn.switch("s0")
        assert ingress.cache_hits == 1
        assert dn.switch("s1").redirects_handled == 1  # no second redirect
        second = dn.network.delivered()[1]
        assert not second.via_authority

    def test_wildcard_cache_covers_sibling_flows(self):
        """A different microflow to the same destination hits the cached
        wildcard fragment — the win over microflow caching."""
        dn, topo, host_ips = build()
        dn.send("h0", flow_packet(host_ips, sport=2000))
        dn.run()
        dn.send("h0", flow_packet(host_ips, sport=3417))
        dn.run()
        assert dn.switch("s0").cache_hits == 1
        assert dn.switch("s1").redirects_handled == 1

    def test_no_packets_reach_controller(self):
        dn, topo, host_ips = build()
        for sport in (2000, 2001, 2002):
            dn.send("h0", flow_packet(host_ips, sport=sport))
        dn.run()
        for record in dn.network.deliveries:
            assert not record.via_controller


class TestLocalAuthority:
    def test_ingress_that_owns_partition_handles_locally(self):
        """When the ingress switch is the authority, no redirect happens."""
        dn, topo, host_ips = build(authority=("s0",))
        dn.send("h0", flow_packet(host_ips))
        dn.run()
        record = dn.network.delivered()[0]
        assert not record.via_authority
        assert dn.switch("s0").authority_hits == 1
        assert dn.switch("s0").redirects_out == 0


class TestDropSemantics:
    def test_policy_drop_at_authority(self):
        dn, topo, host_ips = build()
        # nw_dst that matches no host rule falls to the default drop.
        packet = Packet.from_fields(L, nw_dst=0x01020304, nw_proto=6)
        dn.send("h0", packet)
        dn.run()
        dropped = dn.network.dropped()
        assert len(dropped) == 1
        assert dropped[0].drop_reason == "policy drop"

    def test_drop_rule_gets_cached_too(self):
        dn, topo, host_ips = build()
        packet = Packet.from_fields(L, nw_dst=0x01020304, nw_proto=6)
        dn.send("h0", packet)
        dn.run()
        packet2 = Packet.from_fields(L, nw_dst=0x01020304, nw_proto=6)
        dn.send("h0", packet2)
        dn.run()
        # The second drop is served by the ingress cache.
        assert dn.switch("s0").cache_hits == 1
        assert dn.switch("s1").redirects_handled == 1


class TestCapacityAndStats:
    def test_cache_capacity_zero_redirects_forever(self):
        dn, topo, host_ips = build(cache_capacity=0)
        for sport in range(2000, 2005):
            dn.send("h0", flow_packet(host_ips, sport=sport))
        dn.run()
        assert dn.switch("s1").redirects_handled == 5
        assert dn.cache_hit_rate() == 0.0

    def test_tcam_report(self):
        dn, topo, host_ips = build()
        report = dn.tcam_report()
        assert set(report) == {"s0", "s1", "s2"}
        # Authority rules only at s1; partition rules everywhere.
        assert report["s1"]["authority"] > 0
        assert report["s0"]["authority"] == 0
        assert all(entry["partition"] >= 1 for entry in report.values())

    def test_redirect_overload_drops(self):
        topo = TopologyBuilder.linear(3, hosts_per_switch=1)
        rules, host_ips = routing_policy_for_topology(topo, L)
        dn = DifaneNetwork.build(
            topo, rules, L, authority_switches=["s1"],
            cache_capacity=0, redirect_rate=100.0,
        )
        dn.network.node("s1").redirect_queue = 2
        # Rebuild the station with the small queue.
        dn.network.node("s1")._redirect_station.queue_limit = 2
        for sport in range(2000, 2050):
            dn.send_at(sport * 1e-6, "h0", flow_packet(host_ips, sport=sport))
        dn.run()
        s1 = dn.switch("s1")
        assert s1.redirects_dropped > 0
        reasons = {r.drop_reason for r in dn.network.dropped()}
        assert "authority overloaded" in reasons

    def test_idle_timeout_expires_cache(self):
        dn, topo, host_ips = build(idle_timeout=0.5)
        dn.send("h0", flow_packet(host_ips))
        dn.run()
        ingress = dn.switch("s0")
        assert len(ingress.pipeline.cache) == 1
        # Advance time and force expiry.
        dn.network.scheduler.schedule(1.0, ingress.tick)
        dn.run()
        assert len(ingress.pipeline.cache) == 0
