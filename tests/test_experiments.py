"""Integration tests: every experiment runs (scaled down) and shows the
paper's qualitative shape."""

import pytest

from repro.experiments.caching import run_cache_miss
from repro.experiments.delay import run_delay
from repro.experiments.dynamics import run_dynamics
from repro.experiments.partitioning import (
    run_cut_ablation,
    run_partition_overhead,
    run_partition_tcam,
)
from repro.experiments.policies import policy_characteristics, run_policy_table
from repro.experiments.scaling import run_scaling
from repro.experiments.stretch import run_stretch
from repro.experiments.throughput import run_throughput
from repro.workloads.classbench import generate_classbench
from repro.flowspace.fields import FIVE_TUPLE_LAYOUT


@pytest.fixture(scope="module")
def tiny_policy():
    return generate_classbench("acl", count=150, seed=0, layout=FIVE_TUPLE_LAYOUT)


class TestE1Policies:
    def test_table_rows(self, tiny_policy):
        result = run_policy_table({"tiny": tiny_policy})
        assert len(result.table_rows) == 1
        name, rules, *_ = result.table_rows[0]
        assert name == "tiny"
        assert rules == 150

    def test_characteristics_fields(self, tiny_policy):
        stats = policy_characteristics(tiny_policy, sample=50)
        assert stats["rules"] == 150
        assert 0 <= stats["deny_fraction"] <= 1
        assert stats["max_overlap_depth"] >= 1


class TestE2Throughput:
    def test_shape(self):
        result = run_throughput(
            rates=[25e3, 200e3, 1.2e6], flows_per_point=400, scale=0.01
        )
        difane = result.series_by_label("DIFANE")
        nox = result.series_by_label("NOX")
        # Below both capacities, both keep up.
        assert difane.y[0] == pytest.approx(25e3, rel=0.15)
        assert nox.y[0] == pytest.approx(25e3, rel=0.15)
        # Above the controller's capacity, NOX saturates near 50K...
        assert nox.y[-1] == pytest.approx(50e3, rel=0.25)
        # ...while DIFANE still scales to the authority switch's capacity.
        assert difane.y[-1] == pytest.approx(800e3, rel=0.25)
        assert difane.y[-1] > 5 * nox.y[-1]


class TestE3Scaling:
    def test_linear_scaling(self):
        result = run_scaling(authority_counts=[1, 2], flows_per_point=500, scale=0.01)
        difane = result.series_by_label("DIFANE")
        nox = result.series_by_label("NOX")
        assert difane.y[1] > 1.6 * difane.y[0]
        # NOX does not benefit from more authority switches.
        assert nox.y[1] == pytest.approx(nox.y[0], rel=0.25)


class TestE4Delay:
    def test_orders_of_magnitude_gap(self):
        result = run_delay(flows=60)
        difane_first = result.notes["difane_first_median_ms"]
        nox_first = result.notes["nox_first_median_ms"]
        assert difane_first < 1.0       # sub-millisecond detour
        assert nox_first > 5.0          # controller RTT dominates
        assert nox_first > 10 * difane_first


class TestE5E6Partitioning:
    def test_tcam_shrinks_with_partitions(self, tiny_policy):
        result = run_partition_tcam(
            partition_counts=[1, 8], policies={"tiny": tiny_policy}
        )
        series = result.series_by_label("tiny")
        assert series.y[0] > series.y[1]

    def test_overhead_grows_mildly(self, tiny_policy):
        result = run_partition_overhead(
            partition_counts=[1, 8], policies={"tiny": tiny_policy}
        )
        series = result.series_by_label("tiny")
        assert series.y[0] == pytest.approx(1.0)
        assert 1.0 <= series.y[1] < 3.0


class TestE7Caching:
    def test_wildcard_dominates_microflow(self, tiny_policy):
        result = run_cache_miss(
            policy=tiny_policy, cache_sizes=[5, 40], n_flows=250, n_packets=2500
        )
        wildcard = result.series_by_label("DIFANE wildcard cache")
        microflow = result.series_by_label("microflow cache")
        for w, m in zip(wildcard.y, microflow.y):
            assert w <= m
        # And miss rate falls with cache size.
        assert wildcard.y[-1] < wildcard.y[0]


class TestE8Stretch:
    def test_strategies_reported(self):
        result = run_stretch(flows=100, switch_count=12)
        labels = {s.label for s in result.series}
        assert labels == {"random", "degree", "central", "spread"}
        # Stretch is always >= 1 by definition.
        for series in result.series:
            assert all(x >= 1.0 for x in series.x)

    def test_central_no_worse_than_random(self):
        result = run_stretch(flows=150, switch_count=12)
        rows = {row[0]: float(row[2]) for row in result.table_rows}  # mean
        assert rows["central"] <= rows["random"] * 1.1


class TestE9Dynamics:
    def test_scenario_completes_consistently(self):
        result = run_dynamics(churn_steps=10, warm_flows=40)
        assert result.notes["mismatches"] == 0
        events = {row[0] for row in result.table_rows}
        assert "link failure" in events
        assert "authority failover" in events
        # The separation claim: link failure costs zero control messages.
        link_row = next(r for r in result.table_rows if r[0] == "link failure")
        assert link_row[3] == "0"


class TestE10Ablation:
    def test_split_aware_never_worse(self, tiny_policy):
        result = run_cut_ablation(partition_counts=[4, 16], policy=tiny_policy)
        aware = result.series_by_label("split-aware")
        naive = result.series_by_label("occupancy")
        for a, n in zip(aware.y, naive.y):
            assert a <= n
