"""Integration: the distributed systems must classify exactly like the policy.

Three architectures — DIFANE, NOX, and the proactive reference — run the
same policy over the same topology and traffic.  Every packet must reach
the same endpoint (or be dropped for the same policy reason) in all three,
and each must agree with the single-table oracle.  This is the paper's
correctness requirement made executable.
"""

import random

import pytest

from repro.baselines import NoxNetwork, ProactiveNetwork
from repro.core import DifaneNetwork
from repro.flowspace import FIVE_TUPLE_LAYOUT, Packet, RuleTable
from repro.flowspace.action import Forward
from repro.net import TopologyBuilder
from repro.workloads.classbench import generate_classbench
from repro.workloads.policies import routing_policy_for_topology

L = FIVE_TUPLE_LAYOUT


def make_world(seed=0, acl_rules=10):
    topo = TopologyBuilder.three_tier_campus(
        core_count=2, distribution_count=2, access_per_distribution=2,
        hosts_per_access=2,
    )
    rules, host_ips = routing_policy_for_topology(topo, L, acl_rules=acl_rules, seed=seed)
    return topo, rules, host_ips


def traffic(host_ips, count, seed):
    """Random host-to-host packets, some hitting ACL denies."""
    rng = random.Random(seed)
    hosts = sorted(host_ips)
    packets = []
    for index in range(count):
        src, dst = rng.sample(hosts, 2)
        packets.append(
            (
                src,
                dict(
                    nw_src=host_ips[src],
                    nw_dst=host_ips[dst],
                    nw_proto=6,
                    tp_src=rng.randint(1024, 65535),
                    tp_dst=rng.choice([80, 22, 445, 443, 3306]),
                ),
            )
        )
    return packets


def run_system(factory, topo, rules, host_ips, packets):
    """Run one architecture; return {packet_index: outcome}."""
    facade = factory(topo, rules)
    for index, (src, fields) in enumerate(packets):
        packet = Packet.from_fields(L, flow_id=index, **fields)
        facade.send_at(index * 1e-4, src, packet)
    facade.run()
    outcomes = {}
    for record in facade.network.deliveries:
        if record.delivered:
            outcomes[record.flow_id] = ("delivered", record.endpoint)
        else:
            outcomes[record.flow_id] = ("dropped", record.drop_reason)
    return outcomes


def oracle_outcomes(rules, packets):
    table = RuleTable(L, rules)
    outcomes = {}
    for index, (src, fields) in enumerate(packets):
        packet = Packet.from_fields(L, **fields)
        winner = table.lookup(packet)
        if winner is None or winner.actions.is_drop:
            outcomes[index] = ("dropped", "policy drop")
        else:
            outcomes[index] = ("delivered", winner.actions.final_forward().port)
    return outcomes


class TestCrossArchitectureAgreement:
    @pytest.fixture(scope="class")
    def world(self):
        topo, rules, host_ips = make_world(seed=1)
        packets = traffic(host_ips, 120, seed=2)
        expected = oracle_outcomes(rules, packets)

        def difane(topo, rules):
            return DifaneNetwork.build(
                topo, rules, L, authority_count=2, cache_capacity=128,
                redirect_rate=None,
            )

        def nox(topo, rules):
            return NoxNetwork.build(topo, rules, L)

        def proactive(topo, rules):
            return ProactiveNetwork.build(topo, rules, L)

        results = {
            "difane": run_system(difane, topo, rules, host_ips, packets),
            "nox": run_system(nox, topo, rules, host_ips, packets),
            "proactive": run_system(proactive, topo, rules, host_ips, packets),
        }
        return expected, results

    @pytest.mark.parametrize("system", ["difane", "nox", "proactive"])
    def test_agrees_with_oracle(self, world, system):
        expected, results = world
        outcomes = results[system]
        assert set(outcomes) == set(expected)
        for index, verdict in expected.items():
            assert outcomes[index] == verdict, (
                f"{system} diverged on packet {index}: "
                f"{outcomes[index]} != {verdict}"
            )

    def test_all_systems_agree_pairwise(self, world):
        _, results = world
        assert results["difane"] == results["nox"] == results["proactive"]


class TestDifaneOracleUnderLoadAndOverlap:
    """Heavier overlap structure: ClassBench ACL mapped onto topology hosts."""

    def test_overlapping_policy_semantics(self):
        topo = TopologyBuilder.linear(4, hosts_per_switch=2)
        routing, host_ips = routing_policy_for_topology(topo, L)
        # Stack overlapping ClassBench-style denies above routing rules.
        acl = generate_classbench("acl", count=60, seed=3, layout=L,
                                  include_default=False)
        for offset, rule in enumerate(acl):
            rule.priority = 100_000 - offset
        rules = acl + routing
        dn = DifaneNetwork.build(
            topo, rules, L, authority_count=3, cache_capacity=64,
            redirect_rate=None, partitions_per_authority=2,
        )
        table = RuleTable(L, rules)
        rng = random.Random(4)
        hosts = sorted(host_ips)

        mismatches = []
        for index in range(150):
            src = rng.choice(hosts)
            # Half the traffic aims at real hosts, half at random space.
            if rng.random() < 0.5:
                dst_ip = host_ips[rng.choice(hosts)]
            else:
                dst_ip = rng.getrandbits(32)
            fields = dict(
                nw_src=rng.getrandbits(32), nw_dst=dst_ip, nw_proto=6,
                tp_src=rng.randint(1, 65535), tp_dst=rng.choice([80, 22, 443]),
            )
            packet = Packet.from_fields(L, flow_id=index, **fields)
            oracle_winner = table.lookup(Packet.from_fields(L, **fields))
            dn.send(src, packet)
            dn.run()
            record = dn.network.deliveries[-1]
            if oracle_winner is None or oracle_winner.actions.is_drop:
                ok = not record.delivered and record.drop_reason == "policy drop"
            else:
                target = oracle_winner.actions.final_forward().port
                if target in host_ips:
                    ok = record.delivered and record.endpoint == target
                else:
                    # Symbolic egress not present in the topology: the
                    # classification must still have picked that action
                    # (drop reason mentions unreachable target).
                    ok = not record.delivered
            if not ok:
                mismatches.append((index, record))
        assert not mismatches, mismatches[:3]

    def test_cache_hits_grow_with_repeats(self):
        topo, rules, host_ips = make_world(seed=5, acl_rules=0)
        dn = DifaneNetwork.build(
            topo, rules, L, authority_count=2, cache_capacity=256,
            redirect_rate=None,
        )
        packets = traffic(host_ips, 40, seed=6)
        # Send the same traffic twice; the second pass should be nearly
        # all cache hits.
        for round_index in range(2):
            for index, (src, fields) in enumerate(packets):
                packet = Packet.from_fields(L, **fields)
                dn.send_at(round_index * 1.0 + index * 1e-4, src, packet)
        dn.run()
        assert dn.cache_hit_rate() > 0.45
